"""Facility cooling-plant component models.

Each component is a small frozen dataclass with textbook physics: the
CDU liquid-to-liquid plate heat exchanger (effectiveness-NTU,
counterflow), a vapor-compression chiller (fraction-of-Carnot COP), an
evaporative cooling tower (approach to ambient wet-bulb, fan power,
evaporation + blowdown water use), and a centrifugal pump with a
quadratic head/flow curve. :mod:`repro.facility.loop` composes them
into the registered closed-loop facility; they carry no state of their
own so the loop's advance step stays the single integration point.

All temperatures are degC, heat rates W, capacity rates W/K, flows
m^3/s unless a name says otherwise. Quantities are *per chip share* —
the loop scales to rack/room aggregates only when emitting results, so
the physics is identical for 1 chip and for 2,250 racks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError

#: Latent heat of vaporization of water near tower conditions, J/kg.
LATENT_HEAT_VAPORIZATION = 2.45e6

#: Standard gravity, m/s^2 (pump head -> pressure).
GRAVITY = 9.80665


@dataclass(frozen=True)
class CduHeatExchanger:
    """Counterflow plate heat exchanger coupling the chip (secondary)
    loop to the facility (primary) water — the CDU's core.

    ``ua`` is the overall conductance UA in W/K. Effectiveness follows
    the standard counterflow e-NTU relation; the ``capacity_ratio = 1``
    limit is handled explicitly.
    """

    ua: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.ua) or self.ua <= 0.0:
            raise ModelError(f"CDU ua must be positive and finite, got {self.ua}")

    def effectiveness(self, c_hot: float, c_cold: float) -> float:
        """Counterflow effectiveness for capacity rates in W/K."""
        c_min = min(c_hot, c_cold)
        c_max = max(c_hot, c_cold)
        if c_min <= 0.0:
            raise ModelError(
                f"heat-exchanger capacity rates must be positive, "
                f"got ({c_hot}, {c_cold}) W/K"
            )
        ntu = self.ua / c_min
        ratio = c_min / c_max
        if ratio > 0.999999:
            return ntu / (1.0 + ntu)
        expo = math.exp(-ntu * (1.0 - ratio))
        return (1.0 - expo) / (1.0 - ratio * expo)

    def max_heat_transfer(
        self, t_hot_in: float, t_cold_in: float, c_hot: float, c_cold: float
    ) -> float:
        """Heat moved hot -> cold with both inlets fixed, W (>= 0).

        This is the exchanger's capacity at the current operating
        point; a control valve can throttle below it but never exceed
        it.
        """
        eps = self.effectiveness(c_hot, c_cold)
        return max(0.0, eps * min(c_hot, c_cold) * (t_hot_in - t_cold_in))


@dataclass(frozen=True)
class Chiller:
    """Vapor-compression chiller as a fraction of the Carnot COP.

    COP = ``carnot_fraction * T_evap / (T_cond - T_evap)`` with the
    evaporator held ``evaporator_approach`` below the chilled-water
    supply and the condenser ``condenser_approach`` above the entering
    condenser water — the usual screening-level model.
    """

    carnot_fraction: float = 0.5
    evaporator_approach: float = 3.0
    condenser_approach: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 < self.carnot_fraction <= 1.0:
            raise ModelError(
                f"chiller carnot_fraction must be in (0, 1], "
                f"got {self.carnot_fraction}"
            )

    def cop(self, t_supply: float, t_condenser_water: float) -> float:
        """COP delivering chilled water at ``t_supply`` degC against
        condenser water entering at ``t_condenser_water`` degC."""
        t_evap = t_supply - self.evaporator_approach + 273.15
        t_cond = t_condenser_water + self.condenser_approach + 273.15
        lift = t_cond - t_evap
        if lift <= 0.0:
            # Condenser water colder than the evaporator: no lift to
            # pump against. The loop switches to free cooling long
            # before this; cap rather than return an infinite COP.
            return 1e6
        return self.carnot_fraction * t_evap / lift

    def power(self, q_evaporator: float, t_supply: float, t_condenser_water: float) -> float:
        """Compressor electrical power for ``q_evaporator`` W, W."""
        if q_evaporator <= 0.0:
            return 0.0
        return q_evaporator / self.cop(t_supply, t_condenser_water)


@dataclass(frozen=True)
class CoolingTower:
    """Evaporative tower rejecting the plant's heat to ambient.

    Supplies water at ``wet_bulb + approach``; draws fan power as a
    fixed fraction of the rejected heat (design kW-per-kW) and
    consumes water by evaporation plus blowdown at the configured
    cycles of concentration.
    """

    approach: float = 4.0
    fan_power_fraction: float = 0.015
    evaporated_fraction: float = 0.8
    cycles_of_concentration: float = 4.0

    def __post_init__(self) -> None:
        if self.cycles_of_concentration <= 1.0:
            raise ModelError(
                "cooling tower cycles_of_concentration must exceed 1 "
                f"(blowdown would be infinite), got {self.cycles_of_concentration}"
            )

    def supply_temperature(self, wet_bulb: float) -> float:
        """Tower water supply temperature for an ambient wet-bulb, degC."""
        return wet_bulb + self.approach

    def fan_power(self, q_reject: float) -> float:
        """Fan electrical power while rejecting ``q_reject`` W, W."""
        return self.fan_power_fraction * max(0.0, q_reject)

    def water_use(self, q_reject: float) -> float:
        """Make-up water rate (evaporation + blowdown), kg/s."""
        evaporation = (
            self.evaporated_fraction * max(0.0, q_reject) / LATENT_HEAT_VAPORIZATION
        )
        blowdown = evaporation / (self.cycles_of_concentration - 1.0)
        return evaporation + blowdown


@dataclass(frozen=True)
class PumpCurve:
    """Centrifugal pump on a quadratic head/flow curve.

    ``head(q) = shutoff_head * (1 - (q / max_flow)^2)`` with the design
    point at ``design_flow``/``design_head``; electrical power is the
    hydraulic power ``rho g q H`` over the wire-to-water efficiency.
    """

    design_flow: float
    design_head: float
    efficiency: float = 0.65

    def __post_init__(self) -> None:
        if self.design_flow <= 0.0 or self.design_head <= 0.0:
            raise ModelError(
                f"pump design point must be positive, got flow="
                f"{self.design_flow} m^3/s head={self.design_head} m"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ModelError(
                f"pump efficiency must be in (0, 1], got {self.efficiency}"
            )

    def head(self, flow: float) -> float:
        """Delivered head at ``flow`` m^3/s, m of water column.

        The curve is anchored so the design point sits at 80% of the
        shutoff head (a typical centrifugal shape); past ``max_flow``
        the pump delivers nothing.
        """
        shutoff = self.design_head / 0.8
        max_flow = self.design_flow / math.sqrt(1.0 - 0.8)
        fraction = min(1.0, (flow / max_flow) ** 2)
        return shutoff * (1.0 - fraction)

    def electrical_power(self, flow: float, density: float = 998.0) -> float:
        """Wire power moving ``flow`` m^3/s of water, W."""
        if flow <= 0.0:
            return 0.0
        hydraulic = density * GRAVITY * flow * self.head(flow)
        return hydraulic / self.efficiency
