"""Temperature-dependent coolant properties for the facility loops.

The chip-level microchannel model (:mod:`repro.microchannel.coolant`)
evaluates water at the fixed 60 degC operating point, which is exact
for the paper's fixed-inlet runs. A facility loop spans a much wider
band — chilled water near 15 degC, hot-water secondary loops up to
90 degC — so its energy balances use these polynomial fits instead of
the single-point constants.

Both fits are quadratics through standard liquid-water property tables
(interpolation error < 0.7% over 10-90 degC); outside the fitted band
the inputs are rejected rather than extrapolated.
"""

from __future__ import annotations

from repro.errors import ModelError

#: Validity band of the property fits, degC.
MIN_TEMPERATURE = 1.0
MAX_TEMPERATURE = 99.0


def _check_range(temperature_c: float, what: str) -> float:
    temperature_c = float(temperature_c)
    if not MIN_TEMPERATURE <= temperature_c <= MAX_TEMPERATURE:
        raise ModelError(
            f"{what} defined for liquid water on "
            f"[{MIN_TEMPERATURE}, {MAX_TEMPERATURE}] degC, "
            f"got {temperature_c} degC"
        )
    return temperature_c


def water_heat_capacity(temperature_c: float) -> float:
    """Specific heat c_p of liquid water, J/(kg*K).

    Quadratic fit through 4181.8 (20 degC), 4178.5 (40 degC), and
    4196.5 (80 degC); reproduces the Table I value 4183 within 0.03%
    at the paper's 60 degC operating point.
    """
    t = _check_range(temperature_c, "water heat capacity")
    return 4193.3 - 0.78 * t + 0.01025 * t * t


def water_density(temperature_c: float) -> float:
    """Density rho of liquid water, kg/m^3.

    Quadratic fit through 998.2 (20 degC), 983.2 (60 degC), and
    965.3 (90 degC).
    """
    t = _check_range(temperature_c, "water density")
    return 1001.90 - 0.12167 * t - 0.0031667 * t * t


def water_volumetric_heat_capacity(temperature_c: float) -> float:
    """rho(T) * c_p(T), J/(m^3*K)."""
    return water_density(temperature_c) * water_heat_capacity(temperature_c)
