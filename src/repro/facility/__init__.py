"""Facility cooling tier: CDU, chiller, cooling tower, closed loop.

The datacenter plant the ROADMAP's first open item asks for. Facility
*loops* are registered components — importing
:mod:`repro.facility.loop` below runs their registrations, the same
at-import idiom workloads and scheduler policies use.
"""

from repro.facility.components import (
    CduHeatExchanger,
    Chiller,
    CoolingTower,
    PumpCurve,
)
from repro.facility.coolant import (
    water_density,
    water_heat_capacity,
    water_volumetric_heat_capacity,
)
from repro.facility.loop import ClosedLoopFacility, FacilityModel, FacilityState

__all__ = [
    "CduHeatExchanger",
    "Chiller",
    "CoolingTower",
    "PumpCurve",
    "water_density",
    "water_heat_capacity",
    "water_volumetric_heat_capacity",
    "ClosedLoopFacility",
    "FacilityModel",
    "FacilityState",
]
