"""The closed facility cooling loop and its registry entries.

This is the tier the ROADMAP calls the *facility model*: the chip's
rejected heat no longer vanishes at the microchannel outlet but flows
through a CDU plate heat exchanger into the facility water loop, then
through either a chiller or a free-cooling economizer bypass to an
evaporative cooling tower. Per control interval the loop integrates a
well-mixed secondary-loop energy balance

    M * cp * dT_loop/dt = Q_chip - Q_cdu

so the chip's coolant *inlet temperature becomes an output* of the
room energy balance (the loop temperature) instead of the constant
``ThermalParams.inlet_temperature``, and every watt of cooling power —
chiller compressor, tower fans, facility pumps — is accounted against
the IT load for PUE.

Registered facility keys:

* ``none`` (default) — no facility: the classic fixed-inlet run,
  byte-identical to every pre-facility simulation.
* ``closed-loop`` — the CDU -> chiller/economizer -> cooling tower
  plant above, with a setpoint-holding CDU valve: while the exchanger
  has capacity the loop converges to ``supply_setpoint_c`` (hot-water
  cooling at the paper's 60 degC keeps the chiller off entirely);
  when demand exceeds capacity the loop floats up to the natural
  balance point.

All component physics lives in :mod:`repro.facility.components`; this
module owns only the state integration and the registry schema. The
model computes *per chip share* and multiplies by ``racks *
chips_per_rack`` on emission, so PUE/WUE are scale-invariant while
total cooling power reports at room scale (the headline scenario:
2,250 racks x 400 kW).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro import telemetry
from repro.errors import ModelError
from repro.facility.components import CduHeatExchanger, Chiller, CoolingTower, PumpCurve
from repro.facility.coolant import water_density, water_heat_capacity
from repro.registry import FacilityContext, ParamSpec, register_facility

__all__ = ["FacilityModel", "FacilityState", "ClosedLoopFacility"]

#: Secondary loop temperatures are kept inside the coolant property
#: fits' validity band with a margin; hitting a clamp means the plant
#: is catastrophically under/over-sized for the load.
_LOOP_TEMP_MIN = 2.0
_LOOP_TEMP_MAX = 98.0


@dataclass(frozen=True)
class FacilityState:
    """One control interval's facility outputs.

    Temperatures are per-chip (identical across the aggregated racks);
    heat rates, powers, and water use are at facility aggregate scale.
    """

    #: Chip coolant inlet temperature for the *next* interval, degC.
    inlet_temperature: float
    #: Secondary (chip) loop bulk temperature after this interval, degC.
    loop_temperature: float
    #: Heat added to the secondary loop by the chips this interval, W.
    chip_heat: float
    #: Heat moved secondary -> facility water by the CDU, W.
    cdu_heat: float
    #: Chiller compressor electrical power, W (0 under free cooling).
    chiller_power: float
    #: Cooling tower fan electrical power, W.
    tower_fan_power: float
    #: Facility-side (secondary + primary) pump electrical power, W.
    pump_power: float
    #: Tower make-up water consumption, kg/s.
    water_use: float
    #: True when the economizer bypassed the chiller this interval.
    free_cooling: bool

    @property
    def cooling_power(self) -> float:
        """Total facility cooling power this interval, W.

        Chiller + tower fans + facility pumps. The chip-level
        microchannel pump is accounted separately by the engine
        (``SimulationResult.pump_energy``) and added at PUE time.
        """
        return self.chiller_power + self.tower_fan_power + self.pump_power


@runtime_checkable
class FacilityModel(Protocol):
    """What a registered facility loop must provide.

    ``advance`` consumes one control interval: ``chip_heat`` is the
    heat one chip's coolant picked up (W, from the thermal network's
    advection rows), ``chip_power``/``chip_pump_power`` the chip's IT
    and pump draw (W). It returns the interval's
    :class:`FacilityState`, whose ``inlet_temperature`` the engine
    feeds back into the next interval's boundary conditions.
    Determinism contract: equal construction parameters and equal
    ``advance`` call sequences must yield identical states.
    """

    scale: float

    @property
    def inlet_temperature(self) -> float:
        """Chip coolant inlet for the upcoming interval, degC."""
        ...

    def advance(
        self, dt: float, chip_heat: float, chip_power: float, chip_pump_power: float
    ) -> FacilityState:
        """Integrate the facility over one control interval."""
        ...


class ClosedLoopFacility:
    """CDU -> chiller/economizer -> cooling tower closed loop.

    State is the well-mixed secondary loop temperature (= chip inlet).
    Each ``advance`` step, in order: the chips heat the loop; the CDU
    valve computes the transfer needed to steer the loop toward the
    supply setpoint over ``control_tau`` seconds and throttles it to
    the exchanger's e-NTU capacity; the removed heat is lifted to the
    tower by the chiller — or flows straight through when tower water
    at ``wet_bulb + approach`` is cold enough to serve the setpoint
    directly (free cooling).
    """

    def __init__(
        self,
        *,
        scale: float,
        initial_inlet_temperature: float,
        loop_volume_l: float,
        secondary_flow_lpm: float,
        primary_flow_lpm: float,
        cdu: CduHeatExchanger,
        chiller: Chiller,
        tower: CoolingTower,
        secondary_pump: PumpCurve,
        primary_pump: PumpCurve,
        supply_setpoint_c: float,
        chilled_water_c: float,
        wet_bulb_c: float,
        free_cooling_margin_k: float,
        control_tau_s: float,
    ) -> None:
        if scale < 1.0:
            raise ModelError(f"facility scale must be >= 1 chip, got {scale}")
        if not _LOOP_TEMP_MIN <= initial_inlet_temperature <= _LOOP_TEMP_MAX:
            raise ModelError(
                "closed-loop facility needs an initial inlet temperature in "
                f"[{_LOOP_TEMP_MIN}, {_LOOP_TEMP_MAX}] degC (liquid water), "
                f"got {initial_inlet_temperature} degC"
            )
        self.scale = float(scale)
        self.loop_volume_m3 = loop_volume_l / 1000.0
        self.secondary_flow = secondary_flow_lpm / 60000.0
        self.primary_flow = primary_flow_lpm / 60000.0
        self.cdu = cdu
        self.chiller = chiller
        self.tower = tower
        self.secondary_pump = secondary_pump
        self.primary_pump = primary_pump
        self.supply_setpoint = supply_setpoint_c
        self.chilled_water = chilled_water_c
        self.wet_bulb = wet_bulb_c
        self.free_cooling_margin = free_cooling_margin_k
        self.control_tau = control_tau_s
        self._loop_temperature = float(initial_inlet_temperature)

    @property
    def inlet_temperature(self) -> float:
        return self._loop_temperature

    def loop_heat_capacity(self) -> float:
        """Thermal capacity of the secondary loop water, J/K per chip,
        evaluated at the current loop temperature."""
        t = self._loop_temperature
        return self.loop_volume_m3 * water_density(t) * water_heat_capacity(t)

    def advance(
        self, dt: float, chip_heat: float, chip_power: float, chip_pump_power: float
    ) -> FacilityState:
        with telemetry.span("facility.advance", dt=dt) as sp:
            state = self._advance(dt, chip_heat)
            sp.set_attrs(
                inlet=state.inlet_temperature, free_cooling=state.free_cooling
            )
        telemetry.counter("facility.intervals").inc(
            mode="free" if state.free_cooling else "chiller"
        )
        telemetry.gauge("facility.loop_temperature_c").set(state.loop_temperature)
        return state

    def _advance(self, dt: float, chip_heat: float) -> FacilityState:
        if dt <= 0.0:
            raise ModelError(f"facility interval must be positive, got {dt}")
        t_loop = self._loop_temperature
        cp_sec = water_heat_capacity(t_loop)
        rho_sec = water_density(t_loop)
        c_hot = self.secondary_flow * rho_sec * cp_sec

        # The chips heat the secondary stream from the loop temperature
        # to the CDU's hot-side inlet.
        t_return = t_loop + chip_heat / c_hot

        # Economizer decision: tower water is usable directly when it
        # undercuts the setpoint by the configured margin.
        t_tower_supply = self.tower.supply_temperature(self.wet_bulb)
        free_cooling = (
            t_tower_supply + self.free_cooling_margin <= self.supply_setpoint
        )
        t_primary = t_tower_supply if free_cooling else self.chilled_water

        cp_prim = water_heat_capacity(t_primary)
        c_cold = self.primary_flow * water_density(t_primary) * cp_prim
        q_capacity = self.cdu.max_heat_transfer(t_return, t_primary, c_hot, c_cold)

        # CDU valve: remove the chip heat plus whatever drives the loop
        # to the setpoint over one control time constant, throttled to
        # the exchanger's capacity. Exactly this q_cdu enters the tank
        # balance below, so chip heat == CDU heat + loop storage holds
        # to machine precision whatever the valve does.
        c_loop = self.loop_heat_capacity()
        q_wanted = chip_heat + c_loop * (t_loop - self.supply_setpoint) / self.control_tau
        q_cdu = min(max(q_wanted, 0.0), q_capacity)

        t_new = t_loop + dt * (chip_heat - q_cdu) / c_loop
        t_new = min(max(t_new, _LOOP_TEMP_MIN), _LOOP_TEMP_MAX)
        self._loop_temperature = t_new

        # Lift to ambient: straight to the tower under free cooling,
        # through the chiller (which adds its compressor work to the
        # rejected stream) otherwise.
        if free_cooling:
            chiller_power = 0.0
            q_reject = q_cdu
        else:
            chiller_power = self.chiller.power(
                q_cdu, self.chilled_water, t_tower_supply
            )
            q_reject = q_cdu + chiller_power

        fan_power = self.tower.fan_power(q_reject)
        water = self.tower.water_use(q_reject)
        pump_power = self.secondary_pump.electrical_power(
            self.secondary_flow, density=rho_sec
        ) + self.primary_pump.electrical_power(self.primary_flow)

        s = self.scale
        return FacilityState(
            inlet_temperature=t_new,
            loop_temperature=t_new,
            chip_heat=chip_heat * s,
            cdu_heat=q_cdu * s,
            chiller_power=chiller_power * s,
            tower_fan_power=fan_power * s,
            pump_power=pump_power * s,
            water_use=water * s,
            free_cooling=free_cooling,
        )


# --- registry entries ------------------------------------------------------


@register_facility(
    "none",
    params=(),
    aliases=("fixed-inlet",),
    description="No facility loop (the default): coolant arrives at the "
    "constant ThermalParams.inlet_temperature and rejected heat leaves "
    "the model at the outlet — byte-identical to pre-facility runs",
    traits={"closed_loop": False},
)
def _build_none(ctx):
    return None


@register_facility(
    "closed-loop",
    params=(
        ParamSpec(
            "racks", "int", default=1,
            doc="racks aggregated behind the facility plant",
            minimum=1,
        ),
        ParamSpec(
            "chips_per_rack", "int", default=1,
            doc="simulated-chip equivalents per rack (the modeled chip "
                "is replicated racks * chips_per_rack times)",
            minimum=1,
        ),
        ParamSpec(
            "loop_volume_l", "float", default=0.5,
            doc="secondary loop water volume per chip share, liters "
                "(sets the loop thermal inertia)",
            minimum=1e-3,
        ),
        ParamSpec(
            "secondary_flow_lpm", "float", default=1.0,
            doc="secondary (chip-side CDU) water flow per chip share, L/min",
            minimum=1e-3,
        ),
        ParamSpec(
            "primary_flow_lpm", "float", default=2.0,
            doc="primary (facility-side CDU) water flow per chip share, L/min",
            minimum=1e-3,
        ),
        ParamSpec(
            "cdu_ua", "float", default=25.0,
            doc="CDU plate heat-exchanger conductance UA per chip share, W/K",
            minimum=1e-6,
        ),
        ParamSpec(
            "supply_setpoint_c", "float", default=60.0,
            doc="secondary supply (chip inlet) setpoint the CDU valve "
                "steers toward, degC — 60 is the paper's hot-water "
                "operating point",
            minimum=_LOOP_TEMP_MIN, maximum=_LOOP_TEMP_MAX,
        ),
        ParamSpec(
            "chilled_water_c", "float", default=18.0,
            doc="chilled-water temperature the chiller supplies when the "
                "economizer cannot, degC",
            minimum=_LOOP_TEMP_MIN, maximum=_LOOP_TEMP_MAX,
        ),
        ParamSpec(
            "wet_bulb_c", "float", default=22.0,
            doc="ambient wet-bulb temperature, degC",
            minimum=-20.0, maximum=45.0,
        ),
        ParamSpec(
            "tower_approach_k", "float", default=4.0,
            doc="cooling tower approach to wet-bulb, K",
            minimum=0.5,
        ),
        ParamSpec(
            "free_cooling_margin_k", "float", default=2.0,
            doc="tower supply must undercut the setpoint by this margin "
                "for the economizer to bypass the chiller, K",
            minimum=0.0,
        ),
        ParamSpec(
            "chiller_carnot_fraction", "float", default=0.5,
            doc="chiller COP as a fraction of the Carnot limit",
            minimum=0.05, maximum=1.0,
        ),
        ParamSpec(
            "tower_fan_fraction", "float", default=0.015,
            doc="tower fan power per watt of heat rejected",
            minimum=0.0, maximum=0.5,
        ),
        ParamSpec(
            "pump_head_m", "float", default=10.0,
            doc="facility pump design head, m of water",
            minimum=0.1,
        ),
        ParamSpec(
            "pump_efficiency", "float", default=0.7,
            doc="facility pump wire-to-water efficiency",
            minimum=0.05, maximum=1.0,
        ),
        ParamSpec(
            "cycles_of_concentration", "float", default=4.0,
            doc="tower water cycles of concentration (sets blowdown)",
            minimum=1.5,
        ),
        ParamSpec(
            "control_tau_s", "float", default=2.0,
            doc="CDU valve control time constant steering the loop to "
                "the setpoint, s",
            minimum=1e-3,
        ),
    ),
    aliases=("cdu-chiller-tower",),
    description="Closed CDU -> chiller/economizer -> cooling tower loop: "
    "chip inlet temperature becomes the simulated secondary loop "
    "temperature and PUE/WUE/total-cooling-power are computed from the "
    "plant energy balance",
    traits={"closed_loop": True, "free_cooling": True},
)
def _build_closed_loop(
    ctx: Optional[FacilityContext],
    racks=1,
    chips_per_rack=1,
    loop_volume_l=0.5,
    secondary_flow_lpm=1.0,
    primary_flow_lpm=2.0,
    cdu_ua=25.0,
    supply_setpoint_c=60.0,
    chilled_water_c=18.0,
    wet_bulb_c=22.0,
    tower_approach_k=4.0,
    free_cooling_margin_k=2.0,
    chiller_carnot_fraction=0.5,
    tower_fan_fraction=0.015,
    pump_head_m=10.0,
    pump_efficiency=0.7,
    cycles_of_concentration=4.0,
    control_tau_s=2.0,
):
    initial = ctx.initial_inlet_temperature if ctx is not None else 60.0
    secondary_flow = secondary_flow_lpm / 60000.0
    primary_flow = primary_flow_lpm / 60000.0
    return ClosedLoopFacility(
        scale=float(racks * chips_per_rack),
        initial_inlet_temperature=initial,
        loop_volume_l=loop_volume_l,
        secondary_flow_lpm=secondary_flow_lpm,
        primary_flow_lpm=primary_flow_lpm,
        cdu=CduHeatExchanger(ua=cdu_ua),
        chiller=Chiller(carnot_fraction=chiller_carnot_fraction),
        tower=CoolingTower(
            approach=tower_approach_k,
            fan_power_fraction=tower_fan_fraction,
            cycles_of_concentration=cycles_of_concentration,
        ),
        secondary_pump=PumpCurve(
            design_flow=secondary_flow,
            design_head=pump_head_m,
            efficiency=pump_efficiency,
        ),
        primary_pump=PumpCurve(
            design_flow=primary_flow,
            design_head=pump_head_m,
            efficiency=pump_efficiency,
        ),
        supply_setpoint_c=supply_setpoint_c,
        chilled_water_c=chilled_water_c,
        wet_bulb_c=wet_bulb_c,
        free_cooling_margin_k=free_cooling_margin_k,
        control_tau_s=control_tau_s,
    )
