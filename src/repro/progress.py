"""Throttled progress reporting for long-running campaigns.

A fig-scale sweep folds a run every few hundred milliseconds; printing
a line per fold floods terminals and CI logs and, worse, stalls the
fold loop on a slow/blocking stderr (an ssh session, a piped pager).
:class:`ProgressReporter` is the async-friendly middle ground the CLI
commands share:

* updates are **rate-limited** — at most one line per ``min_interval``
  seconds, measured on a monotonic clock, so the cost of reporting is
  bounded regardless of fold rate;
* :meth:`ProgressReporter.finish` bypasses the rate limit, so a
  campaign never ends on a stale ``97/100`` line (callers invoke it
  once at the end);
* ``quiet`` silences the reporter entirely — the CLI commands print
  their own result summary on stdout;
* output goes to *stderr*, keeping stdout clean for result tables and
  shell redirection.

The clock is injectable, so throttling is tested deterministically.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, IO, Optional


class ProgressReporter:
    """Rate-limited ``done/total`` line reporting.

    Parameters
    ----------
    total:
        Total work units (0 = unknown; lines omit the total).
    label:
        Prefix for every line, e.g. the sweep name.
    stream:
        Where lines go (default ``sys.stderr``).
    min_interval:
        Minimum seconds between printed updates.
    quiet:
        Silence the reporter (updates and the final line).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        total: int,
        label: str = "",
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.25,
        quiet: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = int(total)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self.quiet = quiet
        self.clock = clock
        self.start = clock()
        self._last_print: Optional[float] = None
        self._lines_printed = 0

    def _format(self, done: int, detail: str) -> str:
        prefix = f"{self.label}: " if self.label else ""
        if self.total > 0:
            pct = 100.0 * done / self.total
            counted = f"{done}/{self.total} ({pct:.0f}%)"
        else:
            counted = str(done)
        suffix = f"  {detail}" if detail else ""
        return f"  {prefix}{counted}{suffix}"

    def _emit(self, text: str) -> None:
        print(text, file=self.stream)
        self._lines_printed += 1

    def update(self, done: int, detail: str = "") -> None:
        """Report progress; prints only if ``min_interval`` has passed."""
        if self.quiet:
            return
        now = self.clock()
        if (
            self._last_print is not None
            and now - self._last_print < self.min_interval
        ):
            return
        self._last_print = now
        self._emit(self._format(done, detail))

    def finish(self, done: int, detail: str = "") -> None:
        """Report the final state, bypassing the rate limit (so the
        stream never ends on a stale intermediate count)."""
        if self.quiet:
            return
        elapsed = self.clock() - self.start
        summary = detail or f"{elapsed:.1f}s"
        self._emit(self._format(done, summary))

    @property
    def lines_printed(self) -> int:
        """How many lines actually reached the stream (test hook)."""
        return self._lines_printed
