"""Component power model for the UltraSPARC T1-based stacks (Section V).

The paper assumes "the instantaneous dynamic power consumption is equal
to the average power at each state (active, idle, sleep)": 3 W active
cores, 0.02 W asleep, 1.28 W per L2 bank (CACTI 4.0), and a crossbar
whose average power scales "according to the number of active cores and
the memory accesses". Leakage is added on top by
:class:`repro.power.leakage.LeakageModel` using the live temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.constants import POWER
from repro.errors import ModelError
from repro.geometry.floorplan import Unit, UnitKind
from repro.geometry.stack import Stack3D
from repro.power.leakage import LeakageModel


class CoreState(Enum):
    """Power state of one core."""

    ACTIVE = "active"
    IDLE = "idle"
    SLEEP = "sleep"


@dataclass(frozen=True)
class PowerModel:
    """Maps activity to per-unit power for a stack.

    Parameters
    ----------
    stack:
        The 3D system (provides unit names, kinds, areas).
    leakage:
        Temperature-dependent leakage model; pass ``None`` to disable
        leakage entirely (useful for isolating dynamic effects).
    active_power, idle_power, sleep_power, l2_power, crossbar_peak:
        Section V constants (see :mod:`repro.constants`).
    misc_power:
        Constant dynamic power of each "other" (memory control /
        buffering) block, W.
    """

    stack: Stack3D
    leakage: Optional[LeakageModel] = field(default_factory=LeakageModel)
    active_power: float = POWER.core_active_power
    idle_power: float = POWER.core_idle_power
    sleep_power: float = POWER.core_sleep_power
    l2_power: float = POWER.l2_power
    crossbar_peak: float = POWER.crossbar_peak_power
    misc_power: float = 0.2

    def core_power(self, utilization: float, state: CoreState) -> float:
        """Dynamic power of one core over an interval.

        ``utilization`` is the busy fraction of the interval; an awake
        core blends active and idle power accordingly, while a sleeping
        core draws the 0.02 W sleep power regardless.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ModelError(f"utilization {utilization} outside [0, 1]")
        if state is CoreState.SLEEP:
            return self.sleep_power
        return utilization * self.active_power + (1.0 - utilization) * self.idle_power

    def l2_bank_power(self, pair_utilization: float) -> float:
        """Dynamic power of one L2 bank.

        The paper reports a single 1.28 W figure; we scale mildly with
        the utilization of the cores the bank serves so idle periods
        (and DPM sleep) reduce cache activity: 40 % of the power is
        clock/array background, 60 % follows utilization.
        """
        if not 0.0 <= pair_utilization <= 1.0:
            raise ModelError("pair utilization outside [0, 1]")
        return self.l2_power * (0.4 + 0.6 * pair_utilization)

    def crossbar_power(self, active_fraction: float, memory_intensity: float) -> float:
        """Crossbar power scaled by active cores and memory accesses.

        ``memory_intensity`` in [0, 1] derives from the benchmark's L2
        miss statistics (Table II), normalized by the generator.
        """
        if not 0.0 <= active_fraction <= 1.0:
            raise ModelError("active fraction outside [0, 1]")
        if not 0.0 <= memory_intensity <= 1.0:
            raise ModelError("memory intensity outside [0, 1]")
        return self.crossbar_peak * (0.2 + 0.8 * active_fraction * memory_intensity)

    @cached_property
    def _unit_lookup(self) -> dict[tuple[int, str], Unit]:
        """``(die_index, unit_name) -> Unit`` for every floorplan unit."""
        return {
            (die_index, unit.name): unit
            for die_index, die in enumerate(self.stack.dies)
            for unit in die.floorplan
        }

    def _active_fraction(
        self,
        core_utilization: Mapping[str, float],
        core_states: Mapping[str, CoreState],
    ) -> float:
        awake = [
            name
            for name, state in core_states.items()
            if state is not CoreState.SLEEP
        ]
        total_cores = max(len(core_states), 1)
        return sum(core_utilization.get(name, 0.0) for name in awake) / total_cores

    def _unit_power(
        self,
        unit: Unit,
        temperature: float,
        core_utilization: Mapping[str, float],
        core_states: Mapping[str, CoreState],
        memory_intensity: float,
        active_fraction: float,
    ) -> float:
        """Total (dynamic + leakage) power of one unit."""
        # Each L2 bank serves two cores (T1: one shared L2 per two
        # cores); with cores and caches on different tiers we pair
        # bank k of a cache die with cores 2k, 2k+1 of the core die
        # below it in stacking order.
        if unit.kind is UnitKind.CORE:
            state = core_states.get(unit.name, CoreState.IDLE)
            util = core_utilization.get(unit.name, 0.0)
            dynamic = self.core_power(util, state)
            asleep = state is CoreState.SLEEP
        elif unit.kind is UnitKind.L2:
            pair_util = self._bank_pair_utilization(
                unit.name, core_utilization, core_states
            )
            dynamic = self.l2_bank_power(pair_util)
            asleep = False
        elif unit.kind is UnitKind.CROSSBAR:
            dynamic = self.crossbar_power(active_fraction, memory_intensity)
            asleep = False
        else:
            dynamic = self.misc_power
            asleep = False
        total = dynamic
        if self.leakage is not None:
            total += self.leakage.unit_leakage(
                unit.kind, unit.area, temperature, asleep=asleep
            )
        return total

    def unit_powers(
        self,
        core_utilization: Mapping[str, float],
        core_states: Mapping[str, CoreState],
        memory_intensity: float,
        unit_temperatures: Optional[Mapping[tuple[int, str], float]] = None,
    ) -> dict[tuple[int, str], float]:
        """Per-unit total power map for the thermal model.

        Parameters
        ----------
        core_utilization:
            Busy fraction per core name over the interval.
        core_states:
            Power state per core name (DPM output).
        memory_intensity:
            Workload memory intensity in [0, 1] for the crossbar.
        unit_temperatures:
            Last known per-unit temperatures, for leakage; omit on the
            first interval (leakage evaluates at its reference point).

        Returns
        -------
        ``{(die_index, unit_name): watts}`` covering every floorplan unit.
        """
        active_fraction = self._active_fraction(core_utilization, core_states)
        powers: dict[tuple[int, str], float] = {}
        for die_index, die in enumerate(self.stack.dies):
            for unit in die.floorplan:
                key = (die_index, unit.name)
                temperature = (
                    unit_temperatures.get(key, self._leakage_ref())
                    if unit_temperatures
                    else self._leakage_ref()
                )
                powers[key] = self._unit_power(
                    unit,
                    temperature,
                    core_utilization,
                    core_states,
                    memory_intensity,
                    active_fraction,
                )
        return powers

    @cached_property
    def _vector_plans(self) -> dict:
        """Per-``unit_keys`` static layout cache for the vector path."""
        return {}

    def _vector_plan(self, unit_keys: tuple) -> dict:
        plan = self._vector_plans.get(unit_keys)
        if plan is not None:
            return plan
        lookup = self._unit_lookup
        core_pos, core_names = [], []
        l2_pos, l2_names = [], []
        xbar_pos, misc_pos = [], []
        leak_base = np.empty(len(unit_keys))
        for u, key in enumerate(unit_keys):
            try:
                unit = lookup[key]
            except KeyError:
                raise ModelError(f"unknown unit {key!r} for this stack")
            if self.leakage is not None and unit.area <= 0.0:
                raise ModelError("unit area must be positive")
            leak_base[u] = (
                self.leakage.density_for(unit.kind) * unit.area
                if self.leakage is not None
                else 0.0
            )
            if unit.kind is UnitKind.CORE:
                core_pos.append(u)
                core_names.append(unit.name)
            elif unit.kind is UnitKind.L2:
                l2_pos.append(u)
                l2_names.append(unit.name)
            elif unit.kind is UnitKind.CROSSBAR:
                xbar_pos.append(u)
            else:
                misc_pos.append(u)
        plan = {
            "core_pos": np.array(core_pos, dtype=np.int64),
            "core_names": core_names,
            "l2_pos": np.array(l2_pos, dtype=np.int64),
            "l2_names": l2_names,
            "xbar_pos": np.array(xbar_pos, dtype=np.int64),
            "misc_pos": np.array(misc_pos, dtype=np.int64),
            "leak_base": leak_base,
        }
        self._vector_plans[unit_keys] = plan
        return plan

    def unit_power_vector(
        self,
        unit_keys: Sequence[tuple[int, str]],
        core_utilization: Mapping[str, float],
        core_states: Mapping[str, CoreState],
        memory_intensity: float,
        unit_temperatures: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-unit total power as an array aligned to ``unit_keys``.

        The vector-native sibling of :meth:`unit_powers` used by the
        engine hot path: ``unit_keys`` is the grid's stable unit
        ordering (:attr:`repro.thermal.grid.ThermalGrid.unit_keys`) and
        ``unit_temperatures`` the matching temperature vector from the
        previous interval (``None`` evaluates leakage at its reference
        point). Per-unit values are identical to :meth:`unit_powers`
        (same elementwise arithmetic, applied over arrays).
        """
        plan = self._vector_plan(tuple(unit_keys))
        active_fraction = self._active_fraction(core_utilization, core_states)
        out = np.empty(len(unit_keys))

        util = np.array(
            [core_utilization.get(name, 0.0) for name in plan["core_names"]]
        )
        if np.any((util < 0.0) | (util > 1.0)):
            bad = util[(util < 0.0) | (util > 1.0)][0]
            raise ModelError(f"utilization {bad} outside [0, 1]")
        asleep = np.array(
            [
                core_states.get(name, CoreState.IDLE) is CoreState.SLEEP
                for name in plan["core_names"]
            ]
        )
        out[plan["core_pos"]] = np.where(
            asleep,
            self.sleep_power,
            util * self.active_power + (1.0 - util) * self.idle_power,
        )
        pair_util = np.array(
            [
                self._bank_pair_utilization(name, core_utilization, core_states)
                for name in plan["l2_names"]
            ]
        )
        if np.any((pair_util < 0.0) | (pair_util > 1.0)):
            raise ModelError("pair utilization outside [0, 1]")
        out[plan["l2_pos"]] = self.l2_power * (0.4 + 0.6 * pair_util)
        out[plan["xbar_pos"]] = self.crossbar_power(active_fraction, memory_intensity)
        out[plan["misc_pos"]] = self.misc_power

        if self.leakage is not None:
            lk = self.leakage
            if unit_temperatures is None:
                leak = plan["leak_base"].copy()  # factor(T_ref) == 1.0 exactly
            else:
                t = np.asarray(unit_temperatures, dtype=float)
                dt = t - lk.reference_temperature
                factor = np.maximum(1.0 + lk.linear * dt + lk.quadratic * dt * dt, 0.1)
                leak = plan["leak_base"] * factor
            if np.any(asleep):
                leak[plan["core_pos"][asleep]] = 0.0  # power-gated cores
            out += leak
        return out

    def _leakage_ref(self) -> float:
        if self.leakage is None:
            return 60.0
        return self.leakage.reference_temperature

    def _bank_pair_utilization(
        self,
        bank_name: str,
        core_utilization: Mapping[str, float],
        core_states: Mapping[str, CoreState],
    ) -> float:
        """Mean utilization of the two cores served by an L2 bank.

        Bank ``l2_k`` serves cores ``2k`` and ``2k+1``; a sleeping core
        contributes zero.
        """
        try:
            bank_index = int(bank_name.rsplit("_", 1)[1])
        except (IndexError, ValueError):
            raise ModelError(f"unrecognized L2 bank name {bank_name!r}")
        utils = []
        for core_index in (2 * bank_index, 2 * bank_index + 1):
            name = f"core{core_index}"
            if core_states.get(name) is CoreState.SLEEP:
                utils.append(0.0)
            else:
                utils.append(core_utilization.get(name, 0.0))
        return sum(utils) / len(utils)

    def total_power(self, unit_powers: Mapping[tuple[int, str], float]) -> float:
        """Total chip power (W) of a per-unit power map."""
        return float(sum(unit_powers.values()))
