"""Dynamic power management: the paper's fixed-timeout sleep policy.

Section V: "We utilize a fixed timeout policy, which puts a core to
sleep state if it has been idle longer than the timeout period (i.e.,
200 ms in our experiments). We set a sleep state power of 0.02 Watts."
A sleeping core wakes as soon as work is dispatched to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import POWER
from repro.errors import ConfigurationError
from repro.power.components import CoreState


@dataclass
class DpmPolicy:
    """Per-core fixed-timeout sleep controller.

    Parameters
    ----------
    core_names:
        The cores to manage.
    timeout:
        Continuous idle time after which a core sleeps, s (paper: 0.2).
    enabled:
        When false, cores never sleep (states are ACTIVE/IDLE only);
        the paper runs DPM only for the thermal-variation study (Fig. 7).
    """

    core_names: list[str]
    timeout: float = POWER.dpm_timeout
    enabled: bool = True
    _idle_since: dict[str, float] = field(default_factory=dict, init=False)
    _states: dict[str, CoreState] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.timeout <= 0.0:
            raise ConfigurationError("DPM timeout must be positive")
        if not self.core_names:
            raise ConfigurationError("DPM needs at least one core")
        for name in self.core_names:
            self._idle_since[name] = 0.0
            self._states[name] = CoreState.IDLE

    def observe(self, now: float, busy: dict[str, bool]) -> dict[str, CoreState]:
        """Update states given which cores were busy in the last quantum.

        Parameters
        ----------
        now:
            Current simulation time, s.
        busy:
            Whether each core executed work during the elapsed quantum.

        Returns
        -------
        The state of every managed core after the update.
        """
        for name in self.core_names:
            if busy.get(name, False):
                self._states[name] = CoreState.ACTIVE
                self._idle_since[name] = now
            else:
                idle_for = now - self._idle_since[name]
                if self.enabled and idle_for >= self.timeout:
                    self._states[name] = CoreState.SLEEP
                else:
                    if self._states[name] is not CoreState.SLEEP:
                        self._states[name] = CoreState.IDLE
                    elif not self.enabled:
                        self._states[name] = CoreState.IDLE
        return dict(self._states)

    def wake(self, name: str, now: float) -> None:
        """Wake a core because work was dispatched to it."""
        if name not in self._states:
            raise ConfigurationError(f"unknown core {name!r}")
        self._states[name] = CoreState.ACTIVE
        self._idle_since[name] = now

    def state(self, name: str) -> CoreState:
        """Current state of one core."""
        if name not in self._states:
            raise ConfigurationError(f"unknown core {name!r}")
        return self._states[name]

    def states(self) -> dict[str, CoreState]:
        """Current state of every managed core."""
        return dict(self._states)
