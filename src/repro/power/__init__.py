"""Power modeling: component powers, leakage, dynamic power management."""

from repro.power.components import CoreState, PowerModel
from repro.power.dpm import DpmPolicy
from repro.power.leakage import LeakageModel

__all__ = ["PowerModel", "CoreState", "LeakageModel", "DpmPolicy"]
