"""Temperature-dependent leakage power (Section V, after Su et al.).

The paper accounts "for the temperature effects on leakage power"
using the polynomial model of Su et al. [21]. We implement that shape:
a quadratic polynomial in the temperature delta from a reference point,

    P_leak(T) = P_ref * (1 + a*(T - T_ref) + b*(T - T_ref)^2)

with coefficients giving the usual ~1.6-1.7x growth over a 30 K rise for
a 90 nm process. The base (reference) leakage of each floorplan unit is
proportional to its area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.geometry.floorplan import UnitKind


@dataclass(frozen=True)
class LeakageModel:
    """Polynomial leakage model with per-unit-kind base densities.

    Attributes
    ----------
    reference_temperature:
        T_ref, degC, at which the base densities apply.
    linear, quadratic:
        Polynomial coefficients a (1/K) and b (1/K^2).
    core_density, l2_density, crossbar_density, misc_density:
        Base leakage per area at T_ref, W/m^2. Defaults give ~0.5 W per
        10 mm^2 core and ~0.3 W per 19 mm^2 L2 bank at 60 degC, i.e.
        roughly 20 % of chip power at the operating point — consistent
        with a 90 nm process (documented assumption, DESIGN.md).
    """

    reference_temperature: float = 60.0
    linear: float = 0.016
    quadratic: float = 2.0e-4
    core_density: float = 5.0e4
    l2_density: float = 1.6e4
    crossbar_density: float = 1.0e4
    misc_density: float = 0.8e4

    def __post_init__(self) -> None:
        if self.linear < 0.0 or self.quadratic < 0.0:
            raise ModelError("leakage polynomial coefficients must be non-negative")

    def density_for(self, kind: UnitKind) -> float:
        """Base leakage density (W/m^2) for a unit kind."""
        if kind is UnitKind.CORE:
            return self.core_density
        if kind is UnitKind.L2:
            return self.l2_density
        if kind is UnitKind.CROSSBAR:
            return self.crossbar_density
        return self.misc_density

    def temperature_factor(self, temperature: float) -> float:
        """Multiplier over the base leakage at a given temperature.

        Clamped below at 0.1x so extrapolation to very low temperatures
        stays physical (leakage never vanishes entirely).
        """
        dt = temperature - self.reference_temperature
        factor = 1.0 + self.linear * dt + self.quadratic * dt * dt
        return max(factor, 0.1)

    def unit_leakage(self, kind: UnitKind, area: float, temperature: float, asleep: bool = False) -> float:
        """Leakage power (W) of one unit at its current temperature.

        A sleeping core is power-gated; its residual leakage is part of
        the paper's 0.02 W sleep power and not added here.
        """
        if area <= 0.0:
            raise ModelError("unit area must be positive")
        if asleep and kind is UnitKind.CORE:
            return 0.0
        return self.density_for(kind) * area * self.temperature_factor(temperature)
