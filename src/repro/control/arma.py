"""ARMA(p, q) fitting and multi-step forecasting, pure numpy.

The paper forecasts the maximum chip temperature 500 ms ahead from a
100 ms-sampled history using an ARMA model: "ARMA forecasts the future
value of the time-series signal based on the recent history ...
therefore we do not require an offline analysis."

Fitting uses the Hannan-Rissanen two-stage procedure:

1. fit a long autoregression by least squares and take its residuals
   as innovation estimates;
2. regress the series on its own lags and the lagged residuals to get
   the ARMA coefficients.

Forecasts recurse the difference equation with future innovations set
to zero (their conditional mean).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ControlError


@dataclass(frozen=True)
class ArmaModel:
    """A fitted ARMA(p, q) model.

    The model describes ``y_t - mu = sum_i phi_i (y_{t-i} - mu) +
    e_t + sum_j theta_j e_{t-j}``.

    Attributes
    ----------
    ar:
        AR coefficients phi (length p).
    ma:
        MA coefficients theta (length q).
    mean:
        The series mean mu removed before fitting.
    sigma:
        Standard deviation of the fit residuals (used by the SPRT).
    """

    ar: np.ndarray
    ma: np.ndarray
    mean: float
    sigma: float

    @property
    def p(self) -> int:
        """AR order."""
        return len(self.ar)

    @property
    def q(self) -> int:
        """MA order."""
        return len(self.ma)

    @classmethod
    def fit(cls, series: np.ndarray, p: int = 3, q: int = 2) -> "ArmaModel":
        """Fit by Hannan-Rissanen. Needs ``len(series) >= 4*(p+q) + 10``.

        Raises :class:`ControlError` when the series is too short or
        degenerate (e.g. constant).
        """
        series = np.asarray(series, dtype=float)
        if series.ndim != 1:
            raise ControlError("series must be one-dimensional")
        if p < 1 or q < 0:
            raise ControlError("require p >= 1 and q >= 0")
        n = len(series)
        min_n = 4 * (p + q) + 10
        if n < min_n:
            raise ControlError(f"need at least {min_n} samples to fit ARMA({p},{q})")
        mean = float(series.mean())
        y = series - mean
        if float(np.abs(y).max()) < 1.0e-12:
            # A constant series: the zero model predicts the mean exactly.
            return cls(ar=np.zeros(p), ma=np.zeros(q), mean=mean, sigma=1.0e-9)

        # Stage 1: long AR for innovation estimates.
        long_order = min(max(2 * (p + q), 6), n // 3)
        residuals = _ar_residuals(y, long_order)

        # Stage 2: regression on p AR lags and q MA lags.
        start = max(p, q + long_order)
        rows = []
        targets = []
        for t in range(start, n):
            ar_lags = [y[t - i] for i in range(1, p + 1)]
            ma_lags = [residuals[t - j] for j in range(1, q + 1)]
            rows.append(ar_lags + ma_lags)
            targets.append(y[t])
        design = np.asarray(rows)
        target = np.asarray(targets)
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        ar = coef[:p]
        ma = coef[p : p + q]

        fitted = design @ coef
        resid = target - fitted
        sigma = float(resid.std()) if len(resid) > 1 else 1.0e-9
        return cls(ar=ar, ma=ma, mean=mean, sigma=max(sigma, 1.0e-9))

    def residuals(self, series: np.ndarray) -> np.ndarray:
        """One-step-ahead innovation sequence over a series.

        The first ``max(p, q)`` entries are zero (insufficient lags).
        """
        series = np.asarray(series, dtype=float)
        y = series - self.mean
        n = len(y)
        e = np.zeros(n)
        start = max(self.p, self.q)
        for t in range(start, n):
            pred = self._one_step(y, e, t)
            e[t] = y[t] - pred
        return e

    def _one_step(self, y: np.ndarray, e: np.ndarray, t: int) -> float:
        """Predict y[t] (demeaned) from lags strictly before t."""
        pred = 0.0
        for i in range(1, self.p + 1):
            if t - i >= 0:
                pred += self.ar[i - 1] * y[t - i]
        for j in range(1, self.q + 1):
            if t - j >= 0:
                pred += self.ma[j - 1] * e[t - j]
        return pred

    def forecast(self, series: np.ndarray, steps: int) -> float:
        """Forecast the value ``steps`` samples ahead of the series end.

        Future innovations are set to their conditional mean (zero);
        known innovations come from :meth:`residuals`.
        """
        if steps < 1:
            raise ControlError("steps must be >= 1")
        series = np.asarray(series, dtype=float)
        if len(series) < max(self.p, self.q):
            raise ControlError("series shorter than the model order")
        e = self.residuals(series)
        y = list(series - self.mean)
        e = list(e)
        for _ in range(steps):
            t = len(y)
            y_arr = np.asarray(y)
            e_arr = np.asarray(e)
            pred = self._one_step(y_arr, e_arr, t)
            y.append(pred)
            e.append(0.0)
        return float(y[-1] + self.mean)

    def one_step_prediction(self, series: np.ndarray) -> float:
        """Convenience: the 1-step-ahead forecast."""
        return self.forecast(series, steps=1)


def _ar_residuals(y: np.ndarray, order: int) -> np.ndarray:
    """Residuals of a least-squares AR(order) fit (stage 1 of H-R)."""
    n = len(y)
    if n <= order + 1:
        raise ControlError("series too short for the long AR stage")
    design = np.column_stack([y[order - i - 1 : n - i - 1] for i in range(order)])
    target = y[order:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = np.zeros(n)
    residuals[order:] = target - design @ coef
    return residuals
