"""The flow-controller and forecaster protocols the engine talks to.

The engine used to special-case controller types with ``isinstance``
(the stepwise [6] baseline is reactive, the paper's LUT controller is
proactive). That dispatch is now a declared capability:
``reacts_to_forecast`` says which temperature the controller's
:meth:`~FlowController.update` receives each interval — the forecast
maximum (proactive controllers) or the measured maximum (reactive
ones). Controllers are registered by key via
:func:`repro.registry.register_controller`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class FlowController(Protocol):
    """A variable-flow pump controller, stepped once per interval."""

    #: Whether :meth:`update` should receive the *forecast* maximum
    #: temperature (True — the paper's proactive LUT controller) or
    #: the *measured* one (False — reactive baselines like the
    #: stepwise ladder and the PID regulator).
    reacts_to_forecast: bool

    def update(self, temperature: float, now: float) -> int:
        """One control step; returns the commanded pump setting index.

        ``temperature`` is the forecast or measured maximum (degC)
        according to ``reacts_to_forecast``; ``now`` is the simulation
        time (s), driving the pump-transition bookkeeping.
        """
        ...


@runtime_checkable
class Forecaster(Protocol):
    """A maximum-temperature predictor, fed once per interval."""

    #: Times the underlying model was (re-)fitted; recorded in the
    #: simulation result.
    retrain_count: int

    def observe(self, value: float) -> None:
        """Feed one maximum-temperature sample (degC)."""
        ...

    def predict(self) -> float:
        """Forecast the configured horizon ahead of the last sample."""
        ...
