"""The prior-work reactive flow controller (the paper's [6] baseline).

Related work (Section II): "Prior liquid cooling work in [6] ...
investigates the benefits of variable flow using a policy to
increment/decrement the flow rate based on temperature measurements,
without considering energy consumption."

This module implements that predecessor policy so the paper's
contribution can be measured against it: a purely reactive bang-bang
ladder that steps the pump one setting up when the measured maximum
temperature crosses an upper band and one setting down when it falls
below a lower band. It has no forecast (it eats the full 250-300 ms
pump transition), no characterized look-up table (one fixed band for
all workloads), and no energy awareness (the bands are thermal only).
"""

from __future__ import annotations

from repro.constants import CONTROL
from repro.errors import ControlError
from repro.pump.laing_ddc import PumpState
from repro.registry import ControllerContext, ParamSpec, register_controller


class StepwiseFlowController:
    """Increment/decrement flow control on measured temperature.

    Parameters
    ----------
    pump_state:
        Runtime pump state (owns the transition delay).
    upper_band:
        Measured T_max above this steps the pump one setting up, degC.
    lower_band:
        Measured T_max below this steps one setting down, degC.
    settle_intervals:
        Control intervals to wait after a step before stepping again
        (the reactive policy must not re-trigger while the previous
        transition is still propagating).
    """

    #: Reactive by definition — the [6] baseline sees only the
    #: measured temperature and eats the full pump transition delay.
    reacts_to_forecast = False

    def __init__(
        self,
        pump_state: PumpState,
        upper_band: float = CONTROL.target_temperature - 2.0,
        lower_band: float = CONTROL.target_temperature - 8.0,
        settle_intervals: int = 4,
    ) -> None:
        if lower_band >= upper_band:
            raise ControlError("lower band must be below the upper band")
        if settle_intervals < 1:
            raise ControlError("settle_intervals must be >= 1")
        self.pump_state = pump_state
        self.upper_band = upper_band
        self.lower_band = lower_band
        self.settle_intervals = settle_intervals
        self._cooldown = 0
        self.upshift_count = 0
        self.downshift_count = 0

    def update(self, measured_tmax: float, now: float) -> int:
        """One control step on the *measured* (not forecast) T_max."""
        self.pump_state.advance(now)
        if self._cooldown > 0:
            self._cooldown -= 1
            return self.pump_state.commanded_index

        commanded = self.pump_state.commanded_index
        n_settings = self.pump_state.pump.n_settings
        if measured_tmax > self.upper_band and commanded < n_settings - 1:
            self.pump_state.command(commanded + 1, now)
            self.upshift_count += 1
            self._cooldown = self.settle_intervals
        elif measured_tmax < self.lower_band and commanded > 0:
            self.pump_state.command(commanded - 1, now)
            self.downshift_count += 1
            self._cooldown = self.settle_intervals
        return self.pump_state.commanded_index


@register_controller(
    "stepwise",
    aliases=("step",),
    description="Prior-work [6] baseline: reactive one-step "
    "increment/decrement on the measured temperature",
    params=(
        ParamSpec("upper_band", "float",
                  default=CONTROL.target_temperature - 2.0,
                  doc="measured T_max above this steps the pump up, degC"),
        ParamSpec("lower_band", "float",
                  default=CONTROL.target_temperature - 8.0,
                  doc="measured T_max below this steps the pump down, degC"),
        ParamSpec("settle_intervals", "int", default=4, minimum=1,
                  doc="control intervals to wait between steps"),
    ),
)
def _build_stepwise(ctx: ControllerContext, **params) -> StepwiseFlowController:
    return StepwiseFlowController(ctx.pump_state, **params)
