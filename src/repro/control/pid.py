"""A PID flow controller — the control-theory baseline for the registry.

Islam & Abdel-Motaleb's investigation of liquid-cooling *dynamics* in
3D ICs treats the loop as a classical control problem; this module
provides that family's representative so it can be compared against the
paper's characterized-LUT controller on equal footing. The regulator
drives the pump's discrete setting ladder from the measured maximum
temperature: proportional to the error above the setpoint, integral to
remove steady-state offset, derivative to anticipate ramps.

It is registered as ``"pid"`` with its gains as declared parameters, so
tuning studies are plain sweeps::

    SweepSpec(grid={"controller_params.kp": [0.5, 1.0, 2.0]},
              base=SimulationConfig(controller="pid"))

Like the stepwise [6] baseline it is *reactive*
(``reacts_to_forecast = False``): it sees the measured temperature and
eats the full 250-300 ms impeller transition, which is exactly the
handicap the paper's forecast-driven controller was built to remove.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ControlError
from repro.pump.laing_ddc import PumpState
from repro.registry import ControllerContext, ParamSpec, register_controller


class PidFlowController:
    """Discrete PID regulation of the pump setting index.

    The control output is an absolute setting position::

        u(t) = kp * e(t) + ki * I(t) + kd * de/dt,   e = T_max - setpoint

    rounded and clamped onto the ladder ``[0, n_settings)``. The
    integral uses conditional anti-windup: it only accumulates while
    the commanded setting is unsaturated, so a long cold (or hot)
    stretch cannot wind up minutes of correction that must unwind
    before the controller responds again.

    Parameters
    ----------
    pump_state:
        Runtime pump state (owns the transition delay).
    kp, ki, kd:
        Gains in settings per K, settings per K*s, settings per K/s.
    setpoint:
        Regulated maximum temperature, degC. Defaults (via the
        registry factory) to the config's target temperature minus
        ``margin``.
    margin:
        Guard band (K) below the target used when ``setpoint`` is not
        given — a reactive controller regulating *at* the target would
        spend half of every oscillation above it.
    """

    #: Reactive: regulates the measured temperature.
    reacts_to_forecast = False

    def __init__(
        self,
        pump_state: PumpState,
        kp: float = 1.5,
        ki: float = 0.25,
        kd: float = 0.5,
        setpoint: Optional[float] = None,
        margin: float = 3.0,
        target_temperature: float = 80.0,
    ) -> None:
        if kp < 0.0 or ki < 0.0 or kd < 0.0:
            raise ControlError("PID gains must be non-negative")
        if margin < 0.0:
            raise ControlError("margin must be non-negative")
        self.pump_state = pump_state
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.setpoint = (
            float(setpoint) if setpoint is not None
            else target_temperature - margin
        )
        self._integral = 0.0
        self._last_error: Optional[float] = None
        self._last_time: Optional[float] = None
        self.upshift_count = 0
        self.downshift_count = 0

    def update(self, measured_tmax: float, now: float) -> int:
        """One control step on the measured T_max; returns the command."""
        self.pump_state.advance(now)
        error = measured_tmax - self.setpoint
        n_settings = self.pump_state.pump.n_settings

        derivative = 0.0
        if self._last_time is not None:
            dt = now - self._last_time
            if dt > 0.0:
                derivative = (error - self._last_error) / dt
                # Tentative unsaturated check below decides whether this
                # interval's error joins the integral (anti-windup).
                proposed = self._integral + error * dt
            else:
                proposed = self._integral
        else:
            dt = 0.0
            proposed = self._integral

        u = self.kp * error + self.ki * proposed + self.kd * derivative
        raw = int(round(u))
        required = min(max(raw, 0), n_settings - 1)
        if raw == required:
            # Unsaturated: accept the integral update.
            self._integral = proposed
        self._last_error = error
        self._last_time = now

        commanded = self.pump_state.commanded_index
        if required != commanded:
            self.pump_state.command(required, now)
            if required > commanded:
                self.upshift_count += 1
            else:
                self.downshift_count += 1
        return self.pump_state.commanded_index


@register_controller(
    "pid",
    description="Classical PID regulation of the pump setting on the "
    "measured T_max (reactive control-theory baseline)",
    params=(
        ParamSpec("kp", "float", default=1.5, minimum=0.0,
                  doc="proportional gain, settings per K"),
        ParamSpec("ki", "float", default=0.25, minimum=0.0,
                  doc="integral gain, settings per K*s"),
        ParamSpec("kd", "float", default=0.5, minimum=0.0,
                  doc="derivative gain, settings per K/s"),
        ParamSpec("setpoint", "float",
                  doc="regulated T_max, degC (default: target - margin)"),
        ParamSpec("margin", "float", default=3.0, minimum=0.0,
                  doc="guard band below the target when setpoint is unset"),
    ),
)
def _build_pid(ctx: ControllerContext, **params) -> PidFlowController:
    return PidFlowController(
        ctx.pump_state,
        target_temperature=ctx.config.target_temperature,
        **params,
    )
