"""The variable-flow controller (Section IV, "Liquid Flow Rate Control").

"The input to the controller is the predicted maximum temperature, and
the output is the flow rate for the next interval." The controller
looks the predicted T_max up in the characterized table, commands the
minimum sufficient pump setting, and applies the paper's oscillation
guard: "once we switch to a higher flow rate setting, we do not
decrease the flow rate until the predicted Tmax is at least 2 degC
lower than the boundary temperature between two flow rate settings."

Because the impeller needs 250-300 ms to change the flow while the
thermal time constant is under 100 ms, decisions are made on the
*forecast* temperature (500 ms ahead), so the new flow is in place when
the temperature actually gets there (proactive, not reactive).
"""

from __future__ import annotations

from repro.constants import CONTROL
from repro.control.flow_table import FlowRateTable
from repro.errors import ControlError
from repro.pump.laing_ddc import PumpState
from repro.registry import ControllerContext, register_controller


class FlowRateController:
    """Look-up-table flow controller with down-switch hysteresis.

    Parameters
    ----------
    table:
        The characterized temperature -> setting table.
    pump_state:
        Runtime pump state (owns the transition delay).
    hysteresis:
        Down-switch margin, K (paper: 2 degC).
    """

    #: Proactive: acts on the ARMA forecast so the 250-300 ms impeller
    #: transition completes before the temperature arrives.
    reacts_to_forecast = True

    def __init__(
        self,
        table: FlowRateTable,
        pump_state: PumpState,
        hysteresis: float = CONTROL.hysteresis,
        minimum_setting: int = 0,
    ) -> None:
        if hysteresis < 0.0:
            raise ControlError("hysteresis must be non-negative")
        if table.char.n_settings != pump_state.pump.n_settings:
            raise ControlError("table and pump have different setting counts")
        if not 0 <= minimum_setting < pump_state.pump.n_settings:
            raise ControlError("minimum_setting outside the setting ladder")
        self.table = table
        self.pump_state = pump_state
        self.hysteresis = hysteresis
        self.minimum_setting = minimum_setting
        self.upshift_count = 0
        self.downshift_count = 0

    def update(self, predicted_tmax: float, now: float) -> int:
        """One control step; returns the commanded setting index.

        Parameters
        ----------
        predicted_tmax:
            The forecast maximum temperature (degC) from the ARMA
            predictor, ``horizon`` ahead of ``now``.
        now:
            Current time, s (drives the pump transition bookkeeping).
        """
        self.pump_state.advance(now)
        observed = self.pump_state.current_index
        commanded = self.pump_state.commanded_index

        required = max(
            self.table.required_setting(predicted_tmax, observed),
            self.minimum_setting,
        )
        if required > commanded:
            self.pump_state.command(required, now)
            self.upshift_count += 1
        elif required < commanded:
            # The paper's 2 degC rule: only step down when the predicted
            # T_max clears the boundary with margin. Asking the table
            # with the margin added implements exactly that: the answer
            # drops below `commanded` only when predicted_tmax is at
            # least `hysteresis` below the boundary temperature.
            guarded = max(
                self.table.required_setting(
                    predicted_tmax + self.hysteresis, observed
                ),
                self.minimum_setting,
            )
            if guarded < commanded:
                self.pump_state.command(guarded, now)
                self.downshift_count += 1
        return self.pump_state.commanded_index


@register_controller(
    "lut",
    aliases=("table",),
    description="The paper's controller: ARMA forecast + characterized "
    "look-up table + down-switch hysteresis (config fields "
    "'hysteresis' and 'characterization_guard' shape it)",
    traits={"needs_flow_table": True},
)
def _build_lut(ctx: ControllerContext) -> FlowRateController:
    table = ctx.cache.table(ctx.system, ctx.power_model, ctx.config)
    floor = ctx.cache.floor(ctx.system, ctx.power_model, ctx.config)
    return FlowRateController(
        table,
        ctx.pump_state,
        hysteresis=ctx.config.hysteresis,
        minimum_setting=floor,
    )
