"""The temperature-indexed flow-rate look-up table (Section IV, Figure 5).

Offline characterization sweeps workload intensity (uniform core
utilization) and computes the steady-state maximum temperature at every
pump setting, with the temperature-dependent leakage resolved
self-consistently. From that matrix the table answers the controller's
question: *given the predicted maximum temperature (observed while the
pump runs at some setting), which is the minimum setting that keeps the
steady state at or below the 80 degC target?*

Figure 5's semantics in this reproduction (DESIGN.md section 8): the
x axis is the maximum temperature the workload produces at the *lowest*
setting, and the curve gives the minimum per-cavity flow that cools the
same workload below the target. The runtime controller uses the same
characterization, inverted at whatever setting the pump currently runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.constants import CONTROL
from repro.errors import ControlError

SteadyTmaxFn = Callable[[int, float], float]
"""Evaluator: (pump setting index, utilization) -> steady-state T_max."""

SteadyTmaxBatchFn = Callable[[int, np.ndarray], np.ndarray]
"""Batch evaluator: (pump setting index, utilizations) -> T_max array.

One call per setting instead of one per (setting, utilization) point;
:meth:`repro.sim.system.ThermalSystem.steady_tmax_batch` implements it
with a single multi-RHS solve per leakage iteration."""


@dataclass(frozen=True)
class CharacterizationResult:
    """The characterization matrix behind the look-up table.

    Attributes
    ----------
    utilizations:
        The swept workload intensities (fractions, ascending).
    tmax:
        ``tmax[k][u]`` — steady-state maximum temperature at pump
        setting k under utilization ``utilizations[u]``, degC.
    per_cavity_flows:
        The per-cavity flow of each setting, m^3/s (for reporting).
    target:
        The temperature target the table enforces, degC.
    """

    utilizations: np.ndarray
    tmax: np.ndarray
    per_cavity_flows: tuple[float, ...]
    target: float

    def __post_init__(self) -> None:
        if self.tmax.ndim != 2:
            raise ControlError("tmax must be a (settings x utilizations) matrix")
        if self.tmax.shape[1] != len(self.utilizations):
            raise ControlError("tmax columns must match utilizations")
        if len(self.per_cavity_flows) != self.tmax.shape[0]:
            raise ControlError("per_cavity_flows must match tmax rows")
        if np.any(np.diff(self.utilizations) <= 0.0):
            raise ControlError("utilizations must be strictly ascending")

    @property
    def n_settings(self) -> int:
        """Number of pump settings characterized."""
        return self.tmax.shape[0]


class FlowRateTable:
    """Temperature-indexed pump-setting look-up (the controller's LUT).

    Built from a :class:`CharacterizationResult`; see
    :meth:`characterize` for the offline sweep.
    """

    def __init__(self, characterization: CharacterizationResult) -> None:
        self.char = characterization
        tmax = characterization.tmax
        # Sanity: hotter at lower settings, hotter under higher load.
        for k in range(characterization.n_settings):
            if np.any(np.diff(tmax[k]) < -1.0e-9):
                raise ControlError(
                    f"T_max must be non-decreasing in utilization (setting {k})"
                )
        for u in range(tmax.shape[1]):
            if np.any(np.diff(tmax[:, u]) > 1.0e-9):
                raise ControlError(
                    "T_max must be non-increasing in the flow setting "
                    f"(utilization index {u})"
                )
        # Per-setting caps are pure functions of the characterization;
        # precompute them so the controller's per-interval lookups
        # (required_setting -> utilization_cap per setting) cost an
        # index instead of an interpolation.
        self._caps = tuple(
            self._compute_utilization_cap(k)
            for k in range(characterization.n_settings)
        )

    @classmethod
    def characterize(
        cls,
        steady_tmax: Optional[SteadyTmaxFn] = None,
        n_settings: int = 0,
        per_cavity_flows: Sequence[float] = (),
        utilizations: Sequence[float] = tuple(np.linspace(0.0, 1.0, 11)),
        target: float = CONTROL.target_temperature,
        steady_tmax_batch: Optional[SteadyTmaxBatchFn] = None,
    ) -> "FlowRateTable":
        """Run the offline characterization sweep and build the table.

        Pass either ``steady_tmax`` (one evaluation per point) or
        ``steady_tmax_batch`` (one call per setting, evaluating every
        utilization at once — preferred; the batch path amortizes the
        factorized solves). When both are given the batch form wins.
        """
        if steady_tmax is None and steady_tmax_batch is None:
            raise ControlError("characterize needs a steady_tmax evaluator")
        if n_settings <= 0:
            raise ControlError("characterize needs a positive n_settings")
        utils = np.asarray(sorted(set(float(u) for u in utilizations)))
        if len(utils) < 2:
            raise ControlError("need at least two utilization points")
        tmax = np.empty((n_settings, len(utils)))
        for k in range(n_settings):
            if steady_tmax_batch is not None:
                row = np.asarray(steady_tmax_batch(k, utils), dtype=float)
                if row.shape != utils.shape:
                    raise ControlError(
                        f"batch evaluator returned shape {row.shape}, "
                        f"expected {utils.shape}"
                    )
                tmax[k] = row
            else:
                for i, u in enumerate(utils):
                    tmax[k, i] = steady_tmax(k, float(u))
        return cls(
            CharacterizationResult(
                utilizations=utils,
                tmax=tmax,
                per_cavity_flows=tuple(float(f) for f in per_cavity_flows),
                target=target,
            )
        )

    # --- inversion ------------------------------------------------------------

    def utilization_from_temperature(self, temperature: float, setting: int) -> float:
        """Infer workload intensity from an observed T_max at a setting.

        Interpolates the characterized curve; beyond its ends the value
        extrapolates linearly (then clamps at zero below).
        """
        self._check_setting(setting)
        utils = self.char.utilizations
        temps = self.char.tmax[setting]
        if temperature <= temps[0]:
            slope = _end_slope(temps, utils, left=True)
            return max(0.0, float(utils[0] + (temperature - temps[0]) * slope))
        if temperature >= temps[-1]:
            slope = _end_slope(temps, utils, left=False)
            return float(utils[-1] + (temperature - temps[-1]) * slope)
        return float(np.interp(temperature, temps, utils))

    def utilization_cap(self, setting: int) -> float:
        """Highest utilization a setting can hold at/below the target.

        ``inf`` when the setting holds the whole sweep below target;
        0 when it cannot hold even the idle point. Precomputed at
        construction (the characterization is immutable).
        """
        self._check_setting(setting)
        return self._caps[setting]

    def _compute_utilization_cap(self, setting: int) -> float:
        temps = self.char.tmax[setting]
        utils = self.char.utilizations
        if temps[-1] <= self.char.target:
            return math.inf
        if temps[0] > self.char.target:
            return 0.0
        return float(np.interp(self.char.target, temps, utils))

    def required_setting_for_utilization(self, utilization: float) -> int:
        """Minimum setting holding a workload intensity below target.

        Saturates at the maximum setting when none suffices (the caller
        should treat a saturated answer as a thermal-capacity warning).
        """
        for k in range(self.char.n_settings):
            if self.utilization_cap(k) >= utilization:
                return k
        return self.char.n_settings - 1

    def required_setting(self, predicted_tmax: float, observed_setting: int) -> int:
        """The LUT lookup: minimum setting for a predicted T_max.

        ``observed_setting`` is the setting the pump was running while
        the prediction's history was collected, so the temperature can
        be translated into workload intensity consistently.
        """
        u = self.utilization_from_temperature(predicted_tmax, observed_setting)
        return self.required_setting_for_utilization(u)

    def boundaries(self, observed_setting: int) -> list[float]:
        """The LUT's temperature boundaries as seen at a setting.

        Entry m is the temperature (observed at ``observed_setting``)
        above which setting m no longer suffices — the "boundary
        temperature between two flow rate settings" of the paper's
        hysteresis rule. ``inf`` when setting m always suffices.
        """
        self._check_setting(observed_setting)
        temps = self.char.tmax[observed_setting]
        utils = self.char.utilizations
        out: list[float] = []
        for m in range(self.char.n_settings - 1):
            cap = self.utilization_cap(m)
            if math.isinf(cap):
                out.append(math.inf)
            elif cap <= utils[0]:
                out.append(-math.inf)
            elif cap >= utils[-1]:
                slope = _end_slope(utils, temps, left=False)
                out.append(float(temps[-1] + (cap - utils[-1]) * slope))
            else:
                out.append(float(np.interp(cap, utils, temps)))
        return out

    def fig5_rows(self) -> list[dict[str, float]]:
        """Figure 5's series: required flow vs T_max at the lowest setting.

        Returns one row per characterized utilization with the
        temperature at the lowest setting, the minimum sufficient
        setting, and that setting's per-cavity flow.
        """
        rows = []
        for i, u in enumerate(self.char.utilizations):
            setting = self.required_setting_for_utilization(float(u))
            rows.append(
                {
                    "utilization": float(u),
                    "tmax_at_lowest": float(self.char.tmax[0, i]),
                    "required_setting": setting,
                    "per_cavity_flow": self.char.per_cavity_flows[setting],
                }
            )
        return rows

    def _check_setting(self, setting: int) -> None:
        if not 0 <= setting < self.char.n_settings:
            raise ControlError(
                f"setting {setting} outside 0..{self.char.n_settings - 1}"
            )


def _end_slope(x: np.ndarray, y: np.ndarray, left: bool) -> float:
    """Finite-difference slope dy/dx at an end of a curve (for gentle
    extrapolation); zero when the end is flat."""
    if left:
        dx = x[1] - x[0]
        dy = y[1] - y[0]
    else:
        dx = x[-1] - x[-2]
        dy = y[-1] - y[-2]
    if abs(dx) < 1.0e-12:
        return 0.0
    return float(dy / dx)
