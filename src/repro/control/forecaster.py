"""Maximum-temperature forecasting: ARMA + SPRT-triggered re-fitting.

This is the "Monitor Temperature / Forecast Maximum Temperature" box of
the paper's Figure 4. The forecaster consumes the per-sample maximum
temperature (100 ms sampling) and predicts 500 ms ahead (5 steps), so
the flow-rate controller can command the pump *before* the 250-300 ms
impeller transition would otherwise cause under-/over-cooling.

"If the trend of the maximum temperature signal changes and the
predictor cannot forecast accurately, we reconstruct the ARMA
predictor, and use the existing model until the new one is ready":
on an SPRT alarm we re-fit from the most recent window; until enough
history exists the forecaster falls back to persistence (last value).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.constants import CONTROL
from repro.control.arma import ArmaModel
from repro.control.sprt import SprtDetector
from repro.errors import ControlError
from repro.registry import ForecasterContext, ParamSpec, register_forecaster


class TemperatureForecaster:
    """Proactive maximum-temperature predictor.

    Parameters
    ----------
    horizon_steps:
        Forecast lead in samples (paper: 500 ms / 100 ms = 5).
    order:
        ARMA orders (p, q).
    window:
        Samples of history used for (re-)fitting.
    min_history:
        Samples before the first fit; persistence is used meanwhile.
    sprt_shift, sprt_alpha, sprt_beta:
        SPRT configuration (see :class:`SprtDetector`).
    """

    def __init__(
        self,
        horizon_steps: int = int(round(CONTROL.forecast_horizon / CONTROL.sampling_interval)),
        order: tuple[int, int] = (3, 2),
        window: int = 120,
        min_history: int = 40,
        sprt_shift: float = 3.0,
        sprt_alpha: float = 0.001,
        sprt_beta: float = 0.001,
    ) -> None:
        if horizon_steps < 1:
            raise ControlError("horizon must be at least one step")
        p, q = order
        if min_history < 4 * (p + q) + 10:
            raise ControlError("min_history too small for the ARMA order")
        if window < min_history:
            raise ControlError("window must be >= min_history")
        self.horizon_steps = horizon_steps
        self.order = order
        self.window = window
        self.min_history = min_history
        self._sprt_shift = sprt_shift
        self._sprt_alpha = sprt_alpha
        self._sprt_beta = sprt_beta
        self._history: deque[float] = deque(maxlen=window)
        self._model: ArmaModel | None = None
        self._sprt: SprtDetector | None = None
        self._pending_prediction: float | None = None
        self.retrain_count = 0

    @property
    def model(self) -> ArmaModel | None:
        """The current ARMA model (None until enough history exists)."""
        return self._model

    def observe(self, value: float) -> None:
        """Feed one maximum-temperature sample.

        Updates the SPRT with the previous one-step prediction error,
        re-fits on alarms, and performs the initial fit when enough
        history has accumulated.
        """
        if not np.isfinite(value):
            raise ControlError("temperature sample must be finite")
        if self._pending_prediction is not None and self._sprt is not None:
            residual = value - self._pending_prediction
            if self._sprt.update(residual):
                self._refit()
        self._history.append(float(value))
        if self._model is None and len(self._history) >= self.min_history:
            self._refit()
        if self._model is not None and len(self._history) >= max(*self.order) + 1:
            series = np.asarray(self._history)
            self._pending_prediction = self._model.one_step_prediction(series)
        else:
            self._pending_prediction = None

    def predict(self) -> float:
        """Forecast ``horizon_steps`` ahead of the last observation.

        Falls back to the last observed value while no model is fitted
        (including the very first samples).
        """
        if not self._history:
            raise ControlError("no observations yet")
        if self._model is None:
            return self._history[-1]
        series = np.asarray(self._history)
        forecast = self._model.forecast(series, self.horizon_steps)
        # Clamp to a physical band around the recent history; a rogue
        # unstable fit must not command absurd flow rates.
        lo = float(series.min()) - 20.0
        hi = float(series.max()) + 20.0
        return float(np.clip(forecast, lo, hi))

    def _refit(self) -> None:
        p, q = self.order
        try:
            self._model = ArmaModel.fit(np.asarray(self._history), p=p, q=q)
        except ControlError:
            # Not enough (or degenerate) history: keep the old model.
            return
        self._sprt = SprtDetector(
            sigma=self._model.sigma,
            shift=self._sprt_shift,
            alpha=self._sprt_alpha,
            beta=self._sprt_beta,
        )
        self.retrain_count += 1


class PersistenceForecaster:
    """The naive predictor: tomorrow looks exactly like today.

    Forecasts the last observed maximum temperature, unchanged, at any
    horizon. Registered as ``"persistence"`` so ablations can quantify
    what the ARMA+SPRT machinery actually buys: a variable-flow run
    with the persistence forecaster is the "no forecasting" arm with
    everything else held equal.
    """

    retrain_count = 0  # There is no model to (re-)fit.

    def __init__(self) -> None:
        self._last: float | None = None

    def observe(self, value: float) -> None:
        """Remember the latest sample."""
        if not np.isfinite(value):
            raise ControlError("temperature sample must be finite")
        self._last = float(value)

    def predict(self) -> float:
        """The last observation, at any horizon."""
        if self._last is None:
            raise ControlError("no observations yet")
        return self._last


@register_forecaster(
    "arma",
    description="ARMA forecast with SPRT-triggered re-fitting (the "
    "paper's proactive predictor)",
    params=(
        ParamSpec("window", "int", default=120, minimum=1,
                  doc="samples of history used for (re-)fitting"),
        ParamSpec("min_history", "int", default=40, minimum=1,
                  doc="samples before the first fit (persistence until then)"),
        ParamSpec("sprt_shift", "float", default=3.0,
                  doc="detectable mean shift, in residual sigmas"),
    ),
)
def _build_arma(ctx: ForecasterContext, **params) -> TemperatureForecaster:
    return TemperatureForecaster(horizon_steps=ctx.horizon_steps, **params)


@register_forecaster(
    "persistence",
    aliases=("last-value",),
    description="Predicts the last observed maximum temperature "
    "(the no-forecasting ablation arm)",
)
def _build_persistence(ctx: ForecasterContext) -> PersistenceForecaster:
    return PersistenceForecaster()
