"""Sequential probability ratio test (SPRT) for predictor health.

Section IV: "we apply the sequential probability ratio test (SPRT) ...
a logarithmic likelihood test to decide whether the error between the
predicted series and measured series is diverging from zero — i.e., if
the predictor is no longer fitting the workload, the difference
function of the two time series would increase" (after Gross &
Humenik's nuclear-surveillance SPRT).

We run the classical two-sided Gaussian mean test on the one-step
prediction residuals: H0 says the residuals are N(0, sigma^2); H1 says
their mean has shifted by +/- m*sigma. The cumulative log-likelihood
ratio for the positive shift is

    LLR_t = sum_i (m/sigma^2) * (x_i - m/2)

and symmetrically for the negative shift. Crossing ln((1-beta)/alpha)
accepts H1 (drift detected -> re-fit the ARMA model); crossing
ln(beta/(1-alpha)) accepts H0 and restarts the test.
"""

from __future__ import annotations

import math

from repro.errors import ControlError


class SprtDetector:
    """Two-sided Gaussian SPRT on prediction residuals.

    Parameters
    ----------
    sigma:
        Residual standard deviation under H0 (from the ARMA fit).
    shift:
        Magnitude of the H1 mean shift, in multiples of sigma.
    alpha:
        False-alarm probability bound.
    beta:
        Missed-detection probability bound.
    """

    def __init__(
        self,
        sigma: float,
        shift: float = 2.0,
        alpha: float = 0.01,
        beta: float = 0.01,
    ) -> None:
        if sigma <= 0.0:
            raise ControlError("sigma must be positive")
        if shift <= 0.0:
            raise ControlError("shift must be positive")
        if not (0.0 < alpha < 1.0 and 0.0 < beta < 1.0):
            raise ControlError("alpha and beta must be in (0, 1)")
        self.sigma = sigma
        self.shift = shift
        self.alpha = alpha
        self.beta = beta
        self._upper = math.log((1.0 - beta) / alpha)
        self._lower = math.log(beta / (1.0 - alpha))
        self._llr_pos = 0.0
        self._llr_neg = 0.0
        self.alarm_count = 0

    @property
    def thresholds(self) -> tuple[float, float]:
        """(accept-H0 threshold, accept-H1 threshold) for the LLRs."""
        return (self._lower, self._upper)

    def update(self, residual: float) -> bool:
        """Feed one residual; returns True when divergence is detected.

        On detection (either direction) both tests reset, so the caller
        can re-fit the predictor and continue monitoring.
        """
        if not math.isfinite(residual):
            raise ControlError("residual must be finite")
        mean_shift = self.shift * self.sigma
        weight = mean_shift / (self.sigma**2)
        self._llr_pos += weight * (residual - mean_shift / 2.0)
        self._llr_neg += weight * (-residual - mean_shift / 2.0)

        # Accepting H0 restarts the corresponding test.
        if self._llr_pos < self._lower:
            self._llr_pos = 0.0
        if self._llr_neg < self._lower:
            self._llr_neg = 0.0

        if self._llr_pos > self._upper or self._llr_neg > self._upper:
            self.reset()
            self.alarm_count += 1
            return True
        return False

    def reset(self) -> None:
        """Restart both one-sided tests."""
        self._llr_pos = 0.0
        self._llr_neg = 0.0
