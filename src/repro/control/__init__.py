"""The paper's primary contribution: proactive flow-rate control.

* :class:`ArmaModel` — autoregressive moving average forecasting of the
  maximum temperature (Section IV, after Coskun et al. ICCAD'08);
* :class:`SprtDetector` — sequential probability ratio test deciding
  when the predictor has diverged and must be re-fit;
* :class:`TemperatureForecaster` — orchestrates ARMA + SPRT;
* :class:`FlowRateTable` — the temperature-indexed look-up table built
  by offline characterization (Figure 5);
* :class:`FlowRateController` — picks the minimum pump setting meeting
  the 80 degC target, with 2 degC down-switch hysteresis;
* :class:`StepwiseFlowController` / :class:`PidFlowController` — the
  reactive baselines ([6]'s ladder, and a classical PID regulator).

Each controller and forecaster registers itself in
:mod:`repro.registry` at import time; importing this package makes the
built-in keys (``lut``, ``stepwise``, ``pid``; ``arma``,
``persistence``) resolvable.
"""

from repro.control.arma import ArmaModel
from repro.control.base import FlowController, Forecaster
from repro.control.controller import FlowRateController
from repro.control.flow_table import CharacterizationResult, FlowRateTable
from repro.control.forecaster import PersistenceForecaster, TemperatureForecaster
from repro.control.pid import PidFlowController
from repro.control.sprt import SprtDetector
from repro.control.stepwise import StepwiseFlowController

__all__ = [
    "ArmaModel",
    "SprtDetector",
    "TemperatureForecaster",
    "PersistenceForecaster",
    "Forecaster",
    "FlowRateTable",
    "CharacterizationResult",
    "FlowController",
    "FlowRateController",
    "StepwiseFlowController",
    "PidFlowController",
]
