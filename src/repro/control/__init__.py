"""The paper's primary contribution: proactive flow-rate control.

* :class:`ArmaModel` — autoregressive moving average forecasting of the
  maximum temperature (Section IV, after Coskun et al. ICCAD'08);
* :class:`SprtDetector` — sequential probability ratio test deciding
  when the predictor has diverged and must be re-fit;
* :class:`TemperatureForecaster` — orchestrates ARMA + SPRT;
* :class:`FlowRateTable` — the temperature-indexed look-up table built
  by offline characterization (Figure 5);
* :class:`FlowRateController` — picks the minimum pump setting meeting
  the 80 degC target, with 2 degC down-switch hysteresis.
"""

from repro.control.arma import ArmaModel
from repro.control.controller import FlowRateController
from repro.control.flow_table import CharacterizationResult, FlowRateTable
from repro.control.forecaster import TemperatureForecaster
from repro.control.sprt import SprtDetector
from repro.control.stepwise import StepwiseFlowController

__all__ = [
    "ArmaModel",
    "SprtDetector",
    "TemperatureForecaster",
    "FlowRateTable",
    "CharacterizationResult",
    "FlowRateController",
    "StepwiseFlowController",
]
