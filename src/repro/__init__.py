"""repro — Energy-efficient variable-flow liquid cooling in 3D stacks.

A from-scratch reproduction of Coskun, Atienza, Rosing, Brunschwiler,
Michel, "Energy-Efficient Variable-Flow Liquid Cooling in 3D Stacked
Architectures" (DATE 2010): the interlayer-microchannel thermal model,
the Laing DDC pump, the ARMA+SPRT proactive flow-rate controller, the
temperature-aware weighted load balancer (TALB), and the full Section V
evaluation harness.

Quickstart::

    from repro import SimulationConfig, simulate, CoolingMode, PolicyKind

    config = SimulationConfig(
        benchmark_name="Web-med",
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=20.0,
    )
    result = simulate(config)
    print(result.peak_temperature(), result.pump_energy())
"""

from repro.constants import CONTROL, MICROCHANNEL, POWER, STACK
from repro.control import (
    ArmaModel,
    FlowController,
    FlowRateController,
    FlowRateTable,
    PersistenceForecaster,
    PidFlowController,
    SprtDetector,
    StepwiseFlowController,
    TemperatureForecaster,
)
from repro.errors import (
    ConfigurationError,
    ControlError,
    GeometryError,
    ModelError,
    ReproError,
    SchedulingError,
    SolverError,
    WorkloadError,
)
from repro.geometry import CoolingKind, Floorplan, Stack3D, build_stack
from repro.metrics import (
    EnergyBreakdown,
    coffin_manson_damage,
    electromigration_acceleration,
    hotspot_frequency,
    normalized_throughput,
    relative_mttf,
    spatial_gradient_frequency,
    thermal_cycle_frequency,
)
from repro.microchannel import WATER, ChannelGeometry, Coolant, MicrochannelModel
from repro.power import DpmPolicy, LeakageModel, PowerModel
from repro.pump import PumpModel, PumpState, laing_ddc
from repro.registry import (
    ComponentEntry,
    ControllerContext,
    ForecasterContext,
    FrozenParams,
    ParamSpec,
    PolicyContext,
    Registry,
    controller_registry,
    forecaster_registry,
    policy_registry,
    register_controller,
    register_forecaster,
    register_policy,
)
from repro.sched import (
    CoreQueues,
    LoadBalancer,
    ReactiveMigration,
    RoundRobinPolicy,
    SchedulerPolicy,
    ThermalWeights,
    WeightedLoadBalancer,
)
from repro.dist import (
    CampaignPlan,
    MergeResult,
    WorkerReport,
    campaign_status,
    merge_campaign,
    plan_campaign,
    run_worker,
)
from repro.runner import BatchResult, BatchRunner
from repro.sweep import (
    HistogramAggregator,
    QuantileAggregator,
    SweepPoint,
    SweepResult,
    SweepRunner,
    SweepSpec,
)
from repro.sim import (
    CharacterizationCache,
    ControllerKind,
    CoolingMode,
    IntervalObserver,
    IntervalState,
    PolicyKind,
    SimulationConfig,
    SimulationResult,
    Simulator,
    ThermalSystem,
    simulate,
)
from repro.thermal import (
    AnalyticUnitCell,
    SteadyStateSolver,
    ThermalGrid,
    ThermalParams,
    TransientSolver,
    build_network,
)
from repro.workload import TABLE_II, BenchmarkSpec, WorkloadGenerator, benchmark

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MICROCHANNEL",
    "STACK",
    "POWER",
    "CONTROL",
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "ModelError",
    "SolverError",
    "ControlError",
    "WorkloadError",
    "SchedulingError",
    "Floorplan",
    "Stack3D",
    "CoolingKind",
    "build_stack",
    "Coolant",
    "WATER",
    "ChannelGeometry",
    "MicrochannelModel",
    "ThermalGrid",
    "ThermalParams",
    "build_network",
    "SteadyStateSolver",
    "TransientSolver",
    "AnalyticUnitCell",
    "PumpModel",
    "PumpState",
    "laing_ddc",
    "PowerModel",
    "LeakageModel",
    "DpmPolicy",
    "BenchmarkSpec",
    "TABLE_II",
    "benchmark",
    "WorkloadGenerator",
    "CoreQueues",
    "LoadBalancer",
    "ReactiveMigration",
    "RoundRobinPolicy",
    "SchedulerPolicy",
    "WeightedLoadBalancer",
    "ThermalWeights",
    "ArmaModel",
    "SprtDetector",
    "TemperatureForecaster",
    "PersistenceForecaster",
    "FlowRateTable",
    "FlowController",
    "FlowRateController",
    "StepwiseFlowController",
    "PidFlowController",
    "Registry",
    "ComponentEntry",
    "ParamSpec",
    "FrozenParams",
    "PolicyContext",
    "ControllerContext",
    "ForecasterContext",
    "policy_registry",
    "controller_registry",
    "forecaster_registry",
    "register_policy",
    "register_controller",
    "register_forecaster",
    "SimulationConfig",
    "CharacterizationCache",
    "BatchRunner",
    "BatchResult",
    "SweepSpec",
    "SweepPoint",
    "SweepRunner",
    "SweepResult",
    "HistogramAggregator",
    "QuantileAggregator",
    "plan_campaign",
    "CampaignPlan",
    "run_worker",
    "WorkerReport",
    "merge_campaign",
    "MergeResult",
    "campaign_status",
    "PolicyKind",
    "CoolingMode",
    "ControllerKind",
    "Simulator",
    "simulate",
    "IntervalState",
    "IntervalObserver",
    "SimulationResult",
    "ThermalSystem",
    "EnergyBreakdown",
    "hotspot_frequency",
    "spatial_gradient_frequency",
    "thermal_cycle_frequency",
    "normalized_throughput",
    "coffin_manson_damage",
    "electromigration_acceleration",
    "relative_mttf",
]
