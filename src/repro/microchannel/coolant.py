"""Coolant fluid properties.

The paper assumes forced convective interlayer cooling with water
(Table I gives c_p = 4183 J/(kg K) and rho = 998 kg/m^3) but notes the
model "can be extended to other coolants"; this class is that extension
point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    MICROCHANNEL,
    WATER_DYNAMIC_VISCOSITY_60C,
    WATER_PRANDTL_60C,
)
from repro.errors import ModelError


@dataclass(frozen=True)
class Coolant:
    """Thermophysical properties of a coolant.

    Attributes
    ----------
    name:
        Identifier.
    density:
        rho, kg/m^3.
    heat_capacity:
        c_p, J/(kg*K).
    conductivity:
        k_f, W/(m*K); used by the Nusselt correlation (h = Nu*k_f/D_h).
    viscosity:
        Dynamic viscosity mu, Pa*s; used for Reynolds number.
    prandtl:
        Pr = mu*c_p/k_f at the operating temperature.
    """

    name: str
    density: float
    heat_capacity: float
    conductivity: float
    viscosity: float
    prandtl: float

    def __post_init__(self) -> None:
        for field_name in ("density", "heat_capacity", "conductivity", "viscosity", "prandtl"):
            if getattr(self, field_name) <= 0.0:
                raise ModelError(f"coolant {self.name!r}: {field_name} must be positive")

    def volumetric_heat_capacity(self) -> float:
        """rho * c_p, J/(m^3*K)."""
        return self.density * self.heat_capacity

    def mass_flow(self, volumetric_flow: float) -> float:
        """Mass flow rate (kg/s) for a volumetric flow rate (m^3/s)."""
        if volumetric_flow < 0.0:
            raise ModelError("volumetric flow must be non-negative")
        return self.density * volumetric_flow


WATER = Coolant(
    name="water",
    density=MICROCHANNEL.coolant_density,
    heat_capacity=MICROCHANNEL.coolant_heat_capacity,
    conductivity=0.654,  # W/(m*K) at ~60 degC
    viscosity=WATER_DYNAMIC_VISCOSITY_60C,
    prandtl=WATER_PRANDTL_60C,
)
"""Water at the hot-water-cooling operating point (Table I values for
rho and c_p; conductivity/viscosity/Prandtl at ~60 degC)."""
