"""Microchannel geometry (Figure 2 cross-section, Table I dimensions)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import MICROCHANNEL
from repro.errors import GeometryError


@dataclass(frozen=True)
class ChannelGeometry:
    """Geometry of one microchannel array (one cavity).

    Attributes
    ----------
    width:
        Channel width w_c, m (Table I: 50 um).
    height:
        Channel height t_c, m (Table I: 100 um).
    wall:
        Wall thickness t_s between channels, m (Table I: 50 um).
    pitch:
        Nominal channel pitch p = w_c + t_s, m (Table I: 100 um).
    count:
        Channels per cavity (paper: 65).
    length:
        Channel length, m (the die dimension along the flow axis).
    """

    width: float = MICROCHANNEL.channel_width
    height: float = MICROCHANNEL.channel_height
    wall: float = MICROCHANNEL.wall_thickness
    pitch: float = MICROCHANNEL.channel_pitch
    count: int = MICROCHANNEL.channels_per_cavity
    length: float = 10.7238e-3

    def __post_init__(self) -> None:
        for name in ("width", "height", "wall", "pitch", "length"):
            if getattr(self, name) <= 0.0:
                raise GeometryError(f"channel geometry: {name} must be positive")
        if self.count <= 0:
            raise GeometryError("channel geometry: count must be positive")
        if self.pitch < self.width:
            raise GeometryError("channel pitch cannot be smaller than channel width")

    @property
    def cross_section(self) -> float:
        """Flow cross-section of one channel, m^2 (w_c * t_c)."""
        return self.width * self.height

    @property
    def wetted_perimeter(self) -> float:
        """Wetted perimeter of one channel, m (2*(w_c + t_c))."""
        return 2.0 * (self.width + self.height)

    @property
    def hydraulic_diameter(self) -> float:
        """Hydraulic diameter D_h = 4*A/P, m."""
        return 4.0 * self.cross_section / self.wetted_perimeter

    def effective_pitch(self, die_height: float) -> float:
        """Pitch when ``count`` channels are spread uniformly over the die.

        The paper distributes the 65 channels uniformly over the die
        ("the microchannels ... are distributed uniformly"); 65 channels
        at the nominal 100 um pitch would only cover 6.5 mm of the
        10.7 mm die, so the uniform (effective) pitch is die height /
        count. The fin-area factor of Eq. 7 uses this pitch.
        """
        if die_height <= 0.0:
            raise GeometryError("die height must be positive")
        return die_height / self.count

    def fin_area_factor(self, die_height: float) -> float:
        """Eq. 7's wetted-area-per-footprint factor 2*(w_c + t_c)/p."""
        return self.wetted_perimeter / self.effective_pitch(die_height)

    def channel_flow(self, cavity_flow: float) -> float:
        """Volumetric flow per channel, m^3/s, for a per-cavity flow."""
        if cavity_flow < 0.0:
            raise GeometryError("cavity flow must be non-negative")
        return cavity_flow / self.count

    def mean_velocity(self, cavity_flow: float) -> float:
        """Mean coolant velocity in one channel, m/s."""
        return self.channel_flow(cavity_flow) / self.cross_section
