"""Interlayer microchannel cooling: coolant, geometry, heat transfer."""

from repro.microchannel.coolant import WATER, Coolant
from repro.microchannel.geometry import ChannelGeometry
from repro.microchannel.model import (
    MicrochannelModel,
    graetz_number,
    nusselt_developing,
    reynolds_number,
)

__all__ = [
    "Coolant",
    "WATER",
    "ChannelGeometry",
    "MicrochannelModel",
    "reynolds_number",
    "graetz_number",
    "nusselt_developing",
]
