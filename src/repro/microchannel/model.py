"""Microchannel heat-transfer model (paper Eqs. 4-7).

This module computes the flow-rate-dependent quantities of the unit-cell
model:

* ``R_th-heat`` (Eq. 5): sensible-heat resistance A/(c_p * rho * Vdot);
* ``h_eff`` (Eq. 7): the footprint-referred heat transfer coefficient
  h * 2*(w_c + t_c)/p;
* a developing-laminar-flow (Graetz) Nusselt correlation that makes h
  depend on the flow rate.

The paper treats h as a constant 37 132 W/(m^2 K), valid "in case of
developed boundary layers". At the paper's channel lengths (~1 cm) and
velocities the thermal entrance length is a large fraction of the
channel, so the boundary layers are developing and h rises with flow;
without this dependence the flow rate would barely affect junction
temperature at UltraSPARC T1-class heat fluxes (see DESIGN.md section 5).
We anchor the correlation so that h at the maximum per-cavity flow rate
(1 l/min, Table I) equals the paper's constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import MICROCHANNEL
from repro.errors import ModelError
from repro.microchannel.coolant import WATER, Coolant
from repro.microchannel.geometry import ChannelGeometry


def reynolds_number(geometry: ChannelGeometry, coolant: Coolant, cavity_flow: float) -> float:
    """Reynolds number of the channel flow for a per-cavity flow rate."""
    velocity = geometry.mean_velocity(cavity_flow)
    return coolant.density * velocity * geometry.hydraulic_diameter / coolant.viscosity


def graetz_number(geometry: ChannelGeometry, coolant: Coolant, cavity_flow: float) -> float:
    """Graetz number Gz = D_h * Re * Pr / L (thermal entrance parameter)."""
    re = reynolds_number(geometry, coolant, cavity_flow)
    return geometry.hydraulic_diameter * re * coolant.prandtl / geometry.length


def nusselt_developing(graetz: float) -> float:
    """Mean Nusselt number for thermally developing laminar duct flow.

    Hausen's correlation: Nu = 3.66 + 0.0668*Gz / (1 + 0.04*Gz^(2/3)).
    Approaches the fully developed constant-wall value 3.66 as Gz -> 0
    and grows with Gz (i.e. with flow rate) in the entrance regime.
    """
    if graetz < 0.0:
        raise ModelError("Graetz number must be non-negative")
    return 3.66 + 0.0668 * graetz / (1.0 + 0.04 * graetz ** (2.0 / 3.0))


@dataclass(frozen=True)
class MicrochannelModel:
    """Flow-dependent thermal quantities for one cavity's channel array.

    Parameters
    ----------
    geometry:
        Channel array geometry.
    coolant:
        Coolant properties (default: water, Table I).
    die_height:
        Die dimension across the channels, m; sets the effective pitch.
    anchor_flow:
        Per-cavity flow at which h equals ``anchor_h`` (Table I's
        maximum, 1 l/min).
    anchor_h:
        Heat transfer coefficient at the anchor flow (Table I: 37 132).
    """

    geometry: ChannelGeometry = field(default_factory=ChannelGeometry)
    coolant: Coolant = WATER
    die_height: float = 10.7238e-3
    anchor_flow: float = MICROCHANNEL.flow_rate_max
    anchor_h: float = MICROCHANNEL.heat_transfer_coefficient

    def heat_transfer_coefficient(self, cavity_flow: float) -> float:
        """h(Vdot), W/(m^2 K), from the anchored Graetz correlation.

        ``h(anchor_flow) == anchor_h`` by construction; below the anchor
        the coefficient falls following the developing-flow Nusselt
        ratio. A zero flow returns the fully developed floor scaled by
        the same anchor (stagnant coolant still conducts).
        """
        if cavity_flow < 0.0:
            raise ModelError("cavity flow must be non-negative")
        nu_anchor = nusselt_developing(graetz_number(self.geometry, self.coolant, self.anchor_flow))
        nu = nusselt_developing(graetz_number(self.geometry, self.coolant, cavity_flow))
        return self.anchor_h * nu / nu_anchor

    def effective_h(self, cavity_flow: float) -> float:
        """Eq. 7: h_eff = h * 2*(w_c + t_c) / p, W/(m^2 K), footprint-referred.

        Uses the uniform-distribution effective pitch (die height /
        channel count), see :meth:`ChannelGeometry.effective_pitch`.
        """
        factor = self.geometry.fin_area_factor(self.die_height)
        return self.heat_transfer_coefficient(cavity_flow) * factor

    def convective_resistance_area(self, cavity_flow: float) -> float:
        """Per-area convective resistance 1/h_eff, K*m^2/W (Eq. 6/7)."""
        h_eff = self.effective_h(cavity_flow)
        if h_eff <= 0.0:
            raise ModelError("effective h must be positive")
        return 1.0 / h_eff

    def r_heat(self, heater_area: float, cavity_flow: float) -> float:
        """Eq. 5: R_th-heat = A_heater / (c_p * rho * Vdot), K*m^2/W.

        An area-referred resistance: multiplied by a heat flux (W/m^2)
        it yields the coolant outlet rise. Valid for uniform power
        dissipation over ``heater_area``; the grid model instead
        performs the general iterative computation along the channel
        (Section III-A) via fluid advection.
        """
        if heater_area <= 0.0:
            raise ModelError("heater area must be positive")
        if cavity_flow <= 0.0:
            raise ModelError("R_heat requires a positive flow rate")
        return heater_area / (
            self.coolant.heat_capacity * self.coolant.density * cavity_flow
        )

    def cavity_heat_capacity_rate(self, cavity_flow: float) -> float:
        """Capacity rate m_dot * c_p of one cavity's total flow, W/K."""
        return self.coolant.mass_flow(cavity_flow) * self.coolant.heat_capacity
