"""String-keyed component registries: the simulation's extension points.

The paper's comparison set (LB/Migration/TALB x Air/Max/Var, LUT vs
stepwise) used to be frozen into enums and ``isinstance`` checks inside
the engine, so every new scenario meant editing the engine itself.
Related work explores exactly the axes that hard-coding forbids —
controller dynamics variants (Islam & Abdel-Motaleb), thermal design
space search (Cuesta et al.) — and this module turns each into a
sweepable configuration point instead of a code fork.

Four registries, one per pluggable role:

* **policies** (:func:`register_policy`) — scheduler policies invoked
  at dispatch and per control interval
  (:class:`repro.sched.base.SchedulerPolicy`);
* **controllers** (:func:`register_controller`) — variable-flow pump
  controllers (:class:`repro.control.base.FlowController`);
* **forecasters** (:func:`register_forecaster`) — maximum-temperature
  predictors feeding the controller;
* **workloads** (:func:`register_workload`) — thread-trace models
  (:class:`repro.workload.models.WorkloadModel`) that build the load a
  run executes, from the Table II synthetic generator to replayed
  mpstat logs;
* **facilities** (:func:`register_facility`) — facility cooling loops
  (:class:`repro.facility.loop.FacilityModel`) co-simulated with the
  chip engine per control interval, turning the coolant inlet
  temperature into an output of a CDU/chiller/cooling-tower energy
  balance (``"none"`` — the default fixed-inlet behaviour — is itself
  a registered entry).

A registration binds a string key to a *factory* plus a declared
parameter schema (:class:`ParamSpec`) and capability *traits*::

    from repro.registry import ParamSpec, register_policy

    @register_policy(
        "hottest-last",
        params=(ParamSpec("margin", "float", default=2.0, doc="..."),),
        description="Send work anywhere but the hottest core",
    )
    def _build(ctx, margin=2.0):
        return HottestLastPolicy(margin=margin)

and from that moment ``SimulationConfig(policy="hottest-last",
policy_params={"margin": 1.0})`` is a first-class configuration —
constructible from the CLI, sweepable through
:class:`~repro.sweep.spec.SweepSpec` dotted axes
(``policy_params.margin``), fingerprinted, and shardable through
``repro dist``.

Factories receive a *context* object carrying everything the engine
knows at build time (the config, the thermal system, the pump state,
the characterization cache — see :class:`PolicyContext`,
:class:`ControllerContext`, :class:`ForecasterContext`) followed by the
validated parameters as keyword arguments.

Canonical keys of the built-ins deliberately equal the historical enum
values (``"LB"``, ``"Mig"``, ``"TALB"``; ``"lut"``, ``"stepwise"``), so
configs, figure labels, and sweep fingerprints are byte-identical to
the enum era; the enums themselves remain accepted aliases. Lookup is
case-insensitive over keys and declared aliases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "FrozenParams",
    "ParamSpec",
    "ComponentEntry",
    "Registry",
    "PolicyContext",
    "ControllerContext",
    "ForecasterContext",
    "WorkloadContext",
    "FacilityContext",
    "policy_registry",
    "controller_registry",
    "forecaster_registry",
    "workload_registry",
    "facility_registry",
    "register_policy",
    "register_controller",
    "register_forecaster",
    "register_workload",
    "register_facility",
]

#: Scalar types a declared parameter may take (JSON-representable, so
#: params survive fingerprints, checkpoints, and dist ledgers exactly).
_PARAM_KINDS: dict[str, type] = {
    "float": float,
    "int": int,
    "bool": bool,
    "str": str,
}


class FrozenParams(Mapping):
    """An immutable, hashable, canonically ordered parameter mapping.

    ``SimulationConfig`` is frozen and hashable (the run cache and the
    system memo key on it), so its parameter mappings must be too.
    Items are stored sorted by name, giving one canonical iteration
    order everywhere — reprs, JSON encodings, and fingerprints of equal
    mappings are byte-identical regardless of declaration order.
    """

    __slots__ = ("_items",)

    def __init__(self, mapping: Optional[Mapping[str, Any]] = None) -> None:
        items = dict(mapping or {})
        for name, value in items.items():
            if not isinstance(name, str):
                raise ConfigurationError(
                    f"parameter names must be strings, got {name!r}"
                )
            if not isinstance(value, (bool, int, float, str)):
                raise ConfigurationError(
                    f"parameter {name!r} must be a scalar "
                    f"(bool/int/float/str), got {type(value).__name__}"
                )
        self._items: Tuple[Tuple[str, Any], ...] = tuple(sorted(items.items()))

    def __getitem__(self, key: str) -> Any:
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenParams):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"FrozenParams({inner})"

    def to_dict(self) -> dict:
        """A plain (sorted-order) dict — the JSON encoding."""
        return dict(self._items)


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of a registered component.

    Parameters
    ----------
    name:
        The keyword the factory receives.
    kind:
        One of ``"float"``, ``"int"``, ``"bool"``, ``"str"``.
    default:
        Documented default (the factory's own default applies when the
        config omits the parameter); display-only.
    doc:
        One-line description for ``repro list``.
    minimum, maximum:
        Optional inclusive bounds enforced at config validation time
        (numeric kinds only).
    """

    name: str
    kind: str = "float"
    default: Any = None
    doc: str = ""
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _PARAM_KINDS:
            raise ConfigurationError(
                f"parameter {self.name!r} has unknown kind {self.kind!r}; "
                f"choose from {', '.join(_PARAM_KINDS)}"
            )

    def coerce(self, value: Any, component: str) -> Any:
        """Validate and canonicalize one supplied value.

        ``int`` values are accepted for ``float`` parameters (and
        canonicalized to float, so ``kp=1`` and ``kp=1.0`` fingerprint
        identically); ``bool`` is never silently accepted for numeric
        kinds (it *is* an int in Python, and ``kp=True`` is always a
        mistake).
        """
        target = _PARAM_KINDS[self.kind]
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"{component} parameter {self.name!r} must be a bool, "
                    f"got {value!r}"
                )
        elif self.kind in ("float", "int"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"{component} parameter {self.name!r} must be a "
                    f"{self.kind}, got {value!r}"
                )
            if self.kind == "int" and float(value) != int(value):
                raise ConfigurationError(
                    f"{component} parameter {self.name!r} must be an "
                    f"integer, got {value!r}"
                )
            value = target(value)
            if self.minimum is not None and value < self.minimum:
                raise ConfigurationError(
                    f"{component} parameter {self.name!r} must be >= "
                    f"{self.minimum}, got {value}"
                )
            if self.maximum is not None and value > self.maximum:
                raise ConfigurationError(
                    f"{component} parameter {self.name!r} must be <= "
                    f"{self.maximum}, got {value}"
                )
        elif not isinstance(value, str):
            raise ConfigurationError(
                f"{component} parameter {self.name!r} must be a str, "
                f"got {value!r}"
            )
        return target(value)


@dataclass(frozen=True)
class ComponentEntry:
    """One registered component: key, factory, schema, capabilities."""

    key: str
    factory: Callable[..., Any]
    params: Tuple[ParamSpec, ...] = ()
    aliases: Tuple[str, ...] = ()
    description: str = ""
    #: Capability flags consumers may query (e.g. the characterization
    #: cache warms flow tables only for controllers declaring
    #: ``needs_flow_table``; TALB declares ``uses_thermal_weights``).
    traits: FrozenParams = field(default_factory=FrozenParams)

    def param(self, name: str) -> Optional[ParamSpec]:
        for spec in self.params:
            if spec.name == name:
                return spec
        return None

    def trait(self, name: str, default: Any = False) -> Any:
        return self.traits.get(name, default)


class Registry:
    """A case-insensitive, alias-aware component registry."""

    def __init__(self, role: str) -> None:
        self.role = role
        self._entries: dict[str, ComponentEntry] = {}
        self._lookup: dict[str, str] = {}  # lowercase key/alias -> canonical

    # --- registration -------------------------------------------------------

    def register(
        self,
        key: str,
        factory: Callable[..., Any],
        params: Sequence[ParamSpec] = (),
        aliases: Sequence[str] = (),
        description: str = "",
        traits: Optional[Mapping[str, Any]] = None,
        replace: bool = False,
    ) -> ComponentEntry:
        """Bind ``key`` to ``factory``; see the module docstring.

        Re-registering an existing key (or colliding with another
        entry's alias) is an error unless ``replace=True`` — a silent
        shadow would make two configs with one key mean different runs.
        """
        if not key or not isinstance(key, str):
            raise ConfigurationError(f"{self.role} key must be a non-empty string")
        names = {spec.name for spec in params}
        if len(names) != len(params):
            raise ConfigurationError(
                f"{self.role} {key!r} declares duplicate parameter names"
            )
        entry = ComponentEntry(
            key=key,
            factory=factory,
            params=tuple(params),
            aliases=tuple(aliases),
            description=description,
            traits=FrozenParams(traits or {}),
        )
        forms = {key.lower(), *(a.lower() for a in entry.aliases)}
        # A key/alias owned by a *different* entry is always a refusal:
        # replace=True means "re-bind my own key deliberately", never
        # "steal another entry's name" — that would make one key mean
        # two different runs with no error.
        for form in sorted(forms):
            owner = self._lookup.get(form)
            if owner is not None and owner != key:
                raise ConfigurationError(
                    f"{self.role} name {form!r} already registered "
                    f"by {owner!r}"
                )
        if not replace:
            if key in self._entries:
                raise ConfigurationError(
                    f"{self.role} {key!r} is already registered; pass "
                    "replace=True to override it deliberately"
                )
        else:
            previous = self._entries.pop(key, None)
            if previous is not None:
                for form in {previous.key.lower(),
                             *(a.lower() for a in previous.aliases)}:
                    self._lookup.pop(form, None)
        self._entries[key] = entry
        for form in forms:
            self._lookup[form] = key
        return entry

    def unregister(self, key: str) -> None:
        """Remove an entry if present (tests and interactive use)."""
        raw = getattr(key, "value", key)
        canonical = self._lookup.get(str(raw).lower())
        entry = self._entries.pop(canonical, None) if canonical else None
        if entry is None:
            return
        for form in {entry.key.lower(), *(a.lower() for a in entry.aliases)}:
            if self._lookup.get(form) == entry.key:
                del self._lookup[form]

    # --- lookup -------------------------------------------------------------

    def keys(self) -> list[str]:
        """Canonical keys, in registration order."""
        return list(self._entries)

    def entries(self) -> list[ComponentEntry]:
        return list(self._entries.values())

    def known_names(self) -> list[str]:
        """Every accepted spelling (keys + aliases), sorted."""
        return sorted(self._lookup)

    def normalize(self, value: Any) -> str:
        """Resolve a key, alias, or legacy enum member to the canonical key.

        Enum members resolve through their ``.value`` — that is what
        keeps ``PolicyKind.TALB`` working everywhere a key is expected.
        """
        raw = getattr(value, "value", value)
        if not isinstance(raw, str):
            raise ConfigurationError(
                f"{self.role} must be a string key, got {value!r}"
            )
        canonical = self._lookup.get(raw.lower())
        if canonical is None:
            raise ConfigurationError(
                f"unknown {self.role} {raw!r}; choose from "
                f"{', '.join(self.keys())}"
            )
        return canonical

    def get(self, value: Any) -> ComponentEntry:
        return self._entries[self.normalize(value)]

    def __contains__(self, value: Any) -> bool:
        raw = getattr(value, "value", value)
        return isinstance(raw, str) and raw.lower() in self._lookup

    def __len__(self) -> int:
        return len(self._entries)

    # --- construction -------------------------------------------------------

    def validate_params(self, key: Any, params: Optional[Mapping]) -> dict:
        """Check a parameter mapping against the entry's declared schema.

        Unknown names are rejected with the declared choices; values
        are coerced to their declared kinds (so equal settings encode
        identically however they were spelled). Returns the canonical
        keyword dict for the factory.
        """
        entry = self.get(key)
        validated: dict[str, Any] = {}
        for name, value in dict(params or {}).items():
            spec = entry.param(name)
            if spec is None:
                declared = ", ".join(p.name for p in entry.params) or "(none)"
                raise ConfigurationError(
                    f"{self.role} {entry.key!r} has no parameter {name!r}; "
                    f"declared parameters: {declared}"
                )
            validated[name] = spec.coerce(value, f"{self.role} {entry.key!r}")
        return validated

    def create(self, key: Any, params: Optional[Mapping] = None, context: Any = None):
        """Build a component: validate params, call the factory."""
        entry = self.get(key)
        kwargs = self.validate_params(key, params)
        return entry.factory(context, **kwargs)


# --- factory contexts ------------------------------------------------------
#
# Fields are intentionally loosely typed: the registry sits below the
# sim/sched/control layers and must not import them.


@dataclass(frozen=True)
class PolicyContext:
    """Build-time context handed to scheduler-policy factories.

    Attributes
    ----------
    config:
        The run's :class:`~repro.sim.config.SimulationConfig`.
    system:
        The :class:`~repro.sim.system.ThermalSystem`.
    power_model:
        The run's :class:`~repro.power.components.PowerModel`.
    cache:
        The :class:`~repro.sim.cache.CharacterizationCache`.
    weight_provider:
        Callable ``tmax -> ThermalWeights`` for the current cooling
        condition (what TALB consumes).
    """

    config: Any
    system: Any = None
    power_model: Any = None
    cache: Any = None
    weight_provider: Any = None


@dataclass(frozen=True)
class ControllerContext:
    """Build-time context handed to flow-controller factories.

    ``pump_state`` owns the transition delay; ``cache`` provides the
    offline characterizations (flow table, burst floor) for entries
    declaring the ``needs_flow_table`` trait.
    """

    config: Any
    pump_state: Any
    system: Any = None
    power_model: Any = None
    cache: Any = None


@dataclass(frozen=True)
class ForecasterContext:
    """Build-time context handed to forecaster factories.

    ``horizon_steps`` is the forecast lead in control intervals
    (the paper's 500 ms / sampling interval).
    """

    config: Any
    horizon_steps: int = 1


@dataclass(frozen=True)
class WorkloadContext:
    """Build-time context handed to workload-model factories.

    Carries exactly what trace construction needs, explicitly —
    ``spec`` (the Table II benchmark row), ``n_cores``, ``duration``,
    ``seed`` — so experiment layers can build traces without a full
    :class:`~repro.sim.config.SimulationConfig` (``config`` is then
    ``None``).
    """

    spec: Any
    n_cores: int
    duration: float
    seed: int = 0
    config: Any = None


@dataclass(frozen=True)
class FacilityContext:
    """Build-time context handed to facility-loop factories.

    ``initial_inlet_temperature`` seeds the closed loop at the config's
    fixed-inlet operating point, so the co-simulation starts from the
    same state a fixed-inlet run would hold forever; ``system`` is the
    :class:`~repro.sim.system.ThermalSystem` (for coolant properties
    and flow settings).
    """

    config: Any
    initial_inlet_temperature: float = 60.0
    system: Any = None


# --- the five global registries --------------------------------------------

_POLICIES = Registry("policy")
_CONTROLLERS = Registry("flow controller")
_FORECASTERS = Registry("forecaster")
_WORKLOADS = Registry("workload")
_FACILITIES = Registry("facility")

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the component packages so their registrations run.

    Lazy (and idempotent): ``repro.sim.config`` can normalize keys
    without importing the scheduler/control stack at module import
    time, which would be an import cycle.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.control  # noqa: F401  (registers controllers + forecasters)
    import repro.facility  # noqa: F401  (registers facility loops)
    import repro.sched  # noqa: F401  (registers policies)
    import repro.workload.models  # noqa: F401  (registers workload models)


def policy_registry() -> Registry:
    """The scheduler-policy registry (built-ins loaded on first use)."""
    _ensure_builtins()
    return _POLICIES


def controller_registry() -> Registry:
    """The variable-flow controller registry."""
    _ensure_builtins()
    return _CONTROLLERS


def forecaster_registry() -> Registry:
    """The temperature-forecaster registry."""
    _ensure_builtins()
    return _FORECASTERS


def workload_registry() -> Registry:
    """The workload-model registry."""
    _ensure_builtins()
    return _WORKLOADS


def facility_registry() -> Registry:
    """The facility cooling-loop registry."""
    _ensure_builtins()
    return _FACILITIES


def _decorator(registry: Registry):
    def register(
        key: str,
        params: Sequence[ParamSpec] = (),
        aliases: Sequence[str] = (),
        description: str = "",
        traits: Optional[Mapping[str, Any]] = None,
        replace: bool = False,
    ):
        def wrap(factory: Callable[..., Any]) -> Callable[..., Any]:
            registry.register(
                key,
                factory,
                params=params,
                aliases=aliases,
                description=description,
                traits=traits,
                replace=replace,
            )
            return factory

        return wrap

    return register


#: Decorator registering a scheduler-policy factory; see module docstring.
register_policy = _decorator(_POLICIES)
#: Decorator registering a flow-controller factory.
register_controller = _decorator(_CONTROLLERS)
#: Decorator registering a forecaster factory.
register_forecaster = _decorator(_FORECASTERS)
#: Decorator registering a workload-model factory.
register_workload = _decorator(_WORKLOADS)
#: Decorator registering a facility cooling-loop factory.
register_facility = _decorator(_FACILITIES)
