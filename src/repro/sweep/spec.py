"""Declarative sweep specifications.

A :class:`SweepSpec` describes a parameter campaign over
:class:`~repro.sim.config.SimulationConfig` fields without constructing
any configs up front:

* ``grid`` — a cross-product axis set (``{field: values}``), expanded
  in field-insertion order with the last axis varying fastest;
* ``zip`` — lock-step axes (all value lists the same length), advanced
  together — e.g. paired ``forecast_enabled``/``hysteresis`` ablation
  variants;
* ``points`` — an explicit list of override dicts (the outermost axis),
  for irregular sets like the paper's seven policy/cooling combos.

Total runs = ``len(points or [{}]) x zip-length x grid-product``.
Expansion is lazy (:meth:`SweepSpec.iter_points` is a generator), so a
million-run campaign costs nothing to declare and O(1) memory to walk.

Field names accept friendly aliases (``benchmark`` for
``benchmark_name``, ``layers`` for ``n_layers``, ``dpm`` for
``dpm_enabled``). ``policy``/``controller``/``forecaster``/``workload``
axes take registry keys (any accepted spelling — ``"TALB"``,
``"talb"``, or a legacy enum member — normalizes to the canonical
key), ``cooling`` coerces from its string values (``"Var"``), and
dotted axes sweep nested mappings: ``thermal_params.<field>`` over
:class:`~repro.thermal.rc_network.ThermalParams` (e.g.
``thermal_params.inlet_temperature`` — the knob the related pump-power
studies vary most) and ``policy_params.<name>`` /
``controller_params.<name>`` / ``forecaster_params.<name>`` /
``workload_params.<name>`` over the
registered component's declared parameters (e.g.
``controller_params.kp`` for a PID gain study, or
``workload_params.burst_rate`` for a flash-crowd stress study).
Component parameter
*names* are validated when each point's config assembles — jointly
with the swept component key, since which names exist depends on it —
which :meth:`SweepSpec.validate_all` performs up front.

Every spec has a deterministic :meth:`fingerprint` (SHA-256 over the
canonical payload), which checkpoints embed so a resume can refuse to
continue a *different* sweep into an old journal.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields as dataclass_fields, replace
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.registry import (
    FrozenParams,
    controller_registry,
    facility_registry,
    forecaster_registry,
    policy_registry,
    workload_registry,
)
from repro.sim.config import (
    ControllerKind,
    CoolingMode,
    PolicyKind,
    SimulationConfig,
)
from repro.thermal.rc_network import ThermalParams

#: Friendly aliases accepted anywhere a config field is named.
#: (``workload`` is *not* an alias for ``benchmark_name`` — it names
#: the workload-model registry field of ``SimulationConfig``.)
FIELD_ALIASES: dict[str, str] = {
    "benchmark": "benchmark_name",
    "layers": "n_layers",
    "dpm": "dpm_enabled",
}

#: Registry-keyed fields and the registry that normalizes each
#: (callables: registries load their built-ins lazily).
_REGISTRY_FIELDS = {
    "policy": policy_registry,
    "controller": controller_registry,
    "forecaster": forecaster_registry,
    "workload": workload_registry,
    "facility": facility_registry,
}

#: Component-parameter mappings sweepable via dotted axes. Parameter
#: names are validated at config assembly (they depend on the component
#: key, which may itself be swept).
_PARAMS_FIELDS = (
    "policy_params",
    "controller_params",
    "forecaster_params",
    "workload_params",
    "facility_params",
)

_CONFIG_FIELDS = {f.name for f in dataclass_fields(SimulationConfig)}
_THERMAL_FIELDS = {f.name for f in dataclass_fields(ThermalParams)}

#: New-in-the-registry-era fields omitted from :func:`config_signature`
#: while they hold their defaults, so configs that never touch them
#: fingerprint byte-identically to the pre-registry code — old sweep
#: checkpoints and dist ledgers stay resumable.
_SIGNATURE_DEFAULTS: dict[str, Any] = {
    "policy_params": FrozenParams(),
    "controller_params": FrozenParams(),
    "forecaster": "arma",
    "forecaster_params": FrozenParams(),
    "workload": "table2",
    "workload_params": FrozenParams(),
    "solver": "exact",
    "facility": "none",
    "facility_params": FrozenParams(),
}


def canonical_field(name: str) -> str:
    """Resolve aliases and validate a sweepable field name."""
    resolved = FIELD_ALIASES.get(name, name)
    if resolved.startswith("thermal_params."):
        nested = resolved.split(".", 1)[1]
        if nested not in _THERMAL_FIELDS:
            raise ConfigurationError(
                f"unknown thermal_params field {nested!r}; "
                f"choose from {', '.join(sorted(_THERMAL_FIELDS))}"
            )
        return resolved
    root, dot, leaf = resolved.partition(".")
    if dot and root in _PARAMS_FIELDS:
        if not leaf or "." in leaf:
            raise ConfigurationError(
                f"bad component-parameter axis {name!r}; expected "
                f"{root}.<parameter>"
            )
        return resolved
    if resolved not in _CONFIG_FIELDS:
        raise ConfigurationError(
            f"unknown sweep field {name!r}; choose from "
            f"{', '.join(sorted(_CONFIG_FIELDS | set(FIELD_ALIASES)))} "
            "or a dotted thermal_params.<field> / "
            "policy_params.<name> / controller_params.<name> / "
            "forecaster_params.<name> / workload_params.<name> / "
            "facility_params.<name>"
        )
    return resolved


def coerce_value(field: str, value: Any) -> Any:
    """Coerce a declared axis value to the config field's type.

    Registry-keyed fields accept any registered spelling (canonical
    key, alias, or legacy enum member) and normalize to the canonical
    key; the whole ``thermal_params`` field accepts a mapping of
    :class:`~repro.thermal.rc_network.ThermalParams` fields; the
    component-parameter mappings accept any mapping (names/values are
    validated when the config assembles); everything else passes
    through (``SimulationConfig.__post_init__`` still validates the
    assembled config).
    """
    if field == "thermal_params":
        if isinstance(value, ThermalParams):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - _THERMAL_FIELDS
            if unknown:
                raise ConfigurationError(
                    f"unknown thermal_params fields: "
                    f"{', '.join(sorted(unknown))}; choose from "
                    f"{', '.join(sorted(_THERMAL_FIELDS))}"
                )
            return ThermalParams(**value)
        raise ConfigurationError(
            f"thermal_params must be a mapping of ThermalParams fields, "
            f"got {type(value).__name__}"
        )
    if field in _PARAMS_FIELDS:
        if not isinstance(value, Mapping):
            raise ConfigurationError(
                f"{field} must be a mapping of component parameters, "
                f"got {type(value).__name__}"
            )
        return dict(value)
    registry = _REGISTRY_FIELDS.get(field)
    if registry is not None:
        return registry().normalize(value)
    if field == "cooling":
        if isinstance(value, CoolingMode):
            return value
        try:
            return CoolingMode(value)
        except ValueError:
            choices = ", ".join(member.value for member in CoolingMode)
            raise ConfigurationError(
                f"bad value {value!r} for cooling; choose from {choices}"
            ) from None
    return value


def _encode_value(value: Any) -> Any:
    """A JSON-stable encoding of an axis value (for keys/fingerprints)."""
    if isinstance(value, (PolicyKind, CoolingMode, ControllerKind)):
        return value.value
    if isinstance(value, ThermalParams):
        return {f.name: getattr(value, f.name) for f in dataclass_fields(value)}
    if isinstance(value, Mapping):
        # Component-parameter mappings: canonical (sorted) key order so
        # equal mappings encode byte-identically.
        return {k: _encode_value(v) for k, v in sorted(value.items())}
    return value


def config_signature(config: SimulationConfig) -> dict:
    """Every operative field of a config as a JSON-stable dict.

    Unlike :func:`repro.io.batch.config_descriptor` (the human-facing
    sweep-axis subset), this captures *all* fields, so two configs with
    equal signatures produce bit-identical runs. The registry-era
    fields (``forecaster``, ``workload``, and the ``*_params``
    mappings) are omitted while they hold their defaults: an absent
    entry and the
    default mean the same run, and the omission keeps pre-registry
    fingerprints — hence old checkpoints and campaign ledgers — valid.
    """
    signature = {}
    for f in dataclass_fields(config):
        value = getattr(config, f.name)
        default = _SIGNATURE_DEFAULTS.get(f.name)
        if default is not None and value == default:
            continue
        signature[f.name] = _encode_value(value)
    return signature


@dataclass(frozen=True)
class SweepPoint:
    """One expanded run of a sweep.

    Attributes
    ----------
    index:
        Position in expansion order (the fold/journal order).
    key:
        Stable human-readable identity: zero-padded index plus the
        canonical overrides, e.g. ``"00012 benchmark_name=gzip cooling=Var"``.
    overrides:
        The canonical (alias-resolved, coerced) override mapping this
        point applies to the base config.
    config:
        The assembled :class:`~repro.sim.config.SimulationConfig`.
    """

    index: int
    key: str
    overrides: dict
    config: SimulationConfig


def _apply_overrides(base: SimulationConfig, overrides: Mapping[str, Any]):
    """``replace(base, ...)`` supporting dotted nested-mapping fields.

    ``thermal_params.<field>`` replaces one field of the nested
    :class:`~repro.thermal.rc_network.ThermalParams`;
    ``policy_params.<name>`` (and the controller/forecaster
    equivalents) merges one parameter into the mapping — on top of a
    whole-mapping override for the same field when both are present,
    otherwise on top of the base config's mapping.
    """
    direct: dict[str, Any] = {}
    nested: dict[str, dict[str, Any]] = {}
    for field, value in overrides.items():
        root, dot, leaf = field.partition(".")
        if dot and (root == "thermal_params" or root in _PARAMS_FIELDS):
            nested.setdefault(root, {})[leaf] = value
        else:
            direct[field] = value
    for root, leaves in nested.items():
        if root == "thermal_params":
            start = direct.get(root, base.thermal_params)
            direct[root] = replace(start, **leaves)
        else:
            start = direct.get(root, getattr(base, root))
            direct[root] = {**dict(start), **leaves}
    return replace(base, **direct)


class SweepSpec:
    """A declarative description of a simulation sweep.

    Parameters
    ----------
    base:
        The config every point starts from (defaults to
        ``SimulationConfig()``).
    grid:
        Cross-product axes, ``{field: [values...]}``.
    zip_axes:
        Lock-step axes; all value lists must share one length.
    points:
        Explicit override dicts (outermost axis).
    reseed:
        When set, point ``i`` runs with ``seed = reseed + i`` (applied
        after all other overrides), giving distinct-but-reproducible
        stochastic instances across the sweep.
    name:
        Optional label carried into checkpoints and exports.
    """

    def __init__(
        self,
        base: Optional[SimulationConfig] = None,
        grid: Optional[Mapping[str, Sequence]] = None,
        zip_axes: Optional[Mapping[str, Sequence]] = None,
        points: Optional[Sequence[Mapping[str, Any]]] = None,
        reseed: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.base = base if base is not None else SimulationConfig()
        self.name = name
        self.reseed = None if reseed is None else int(reseed)
        self.grid = self._canonical_axes(grid, "grid")
        self.zip_axes = self._canonical_axes(zip_axes, "zip")
        self.points = [self._canonical_point(p) for p in (points or [])]
        self._validate()

    # --- construction helpers ---------------------------------------------

    @staticmethod
    def _canonical_axes(
        axes: Optional[Mapping[str, Sequence]], what: str
    ) -> dict[str, list]:
        canonical: dict[str, list] = {}
        for field, values in (axes or {}).items():
            resolved = canonical_field(field)
            if resolved in canonical:
                raise ConfigurationError(
                    f"{what} axis {field!r} duplicates {resolved!r}"
                )
            values = [coerce_value(resolved, v) for v in values]
            if not values:
                raise ConfigurationError(f"{what} axis {field!r} has no values")
            canonical[resolved] = values
        return canonical

    @staticmethod
    def _canonical_point(point: Mapping[str, Any]) -> dict:
        canonical: dict[str, Any] = {}
        for field, value in point.items():
            resolved = canonical_field(field)
            if resolved in canonical:
                raise ConfigurationError(
                    f"point field {field!r} duplicates {resolved!r}"
                )
            canonical[resolved] = coerce_value(resolved, value)
        return canonical

    def _validate(self) -> None:
        lengths = {field: len(v) for field, v in self.zip_axes.items()}
        if len(set(lengths.values())) > 1:
            raise ConfigurationError(
                "zip axes must share one length, got "
                + ", ".join(f"{f}={n}" for f, n in lengths.items())
            )
        overlap = set(self.grid) & set(self.zip_axes)
        if overlap:
            raise ConfigurationError(
                f"fields in both grid and zip axes: {', '.join(sorted(overlap))}"
            )
        for point in self.points:
            clash = (set(point) & set(self.grid)) | (set(point) & set(self.zip_axes))
            if clash:
                raise ConfigurationError(
                    f"point fields also swept as axes: {', '.join(sorted(clash))}"
                )
        if self.reseed is not None:
            declares_seed = (
                "seed" in self.grid
                or "seed" in self.zip_axes
                or any("seed" in point for point in self.points)
            )
            if declares_seed:
                raise ConfigurationError(
                    "reseed replaces every run's seed with reseed+index, "
                    "so a sweep cannot also declare 'seed' as an axis or "
                    "point field — drop one of the two"
                )
        if self.run_count == 0:
            raise ConfigurationError("sweep expands to zero runs")
        # Assemble the first config eagerly so an obviously bad
        # declaration fails immediately; values in later axis positions
        # are covered by :meth:`validate_all`, which the sweep runner
        # calls before executing anything.
        first = next(self.iter_overrides())
        _apply_overrides(self.base, first)

    def validate_all(self) -> None:
        """Assemble every expanded config once, discarding each.

        Axis values can be individually plausible but jointly invalid
        (``SimulationConfig.__post_init__`` checks combinations like
        sampling interval vs quantum), and only position 0 is checked
        at declaration time. This walks the full expansion at O(1)
        memory — O(run_count) cheap constructions — so a bad point
        fails *before* a campaign starts, not hours into it. Raises
        :class:`~repro.errors.ConfigurationError` naming the offending
        point.
        """
        for index, overrides in enumerate(self.iter_overrides()):
            try:
                _apply_overrides(self.base, overrides)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"sweep point {point_key(index, overrides)} is "
                    f"invalid: {exc}"
                ) from None

    # --- expansion ---------------------------------------------------------

    @property
    def zip_length(self) -> int:
        """Rows in the lock-step axis block (1 when absent)."""
        if not self.zip_axes:
            return 1
        return len(next(iter(self.zip_axes.values())))

    @property
    def grid_shape(self) -> tuple[int, ...]:
        """Axis lengths of the cross-product block."""
        return tuple(len(v) for v in self.grid.values())

    @property
    def run_count(self) -> int:
        """Total expanded runs."""
        total = max(len(self.points), 1) * self.zip_length
        for n in self.grid_shape:
            total *= n
        return total

    def iter_overrides(self) -> Iterator[dict]:
        """Expanded override dicts, in run order (lazy)."""
        grid_fields = list(self.grid)

        def grid_product(position: int) -> Iterator[dict]:
            if position == len(grid_fields):
                yield {}
                return
            field = grid_fields[position]
            for value in self.grid[field]:
                for rest in grid_product(position + 1):
                    yield {field: value, **rest}

        for point in self.points or [{}]:
            for row in range(self.zip_length):
                zipped = {f: v[row] for f, v in self.zip_axes.items()}
                for cell in grid_product(0):
                    yield {**point, **zipped, **cell}

    def iter_points(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[SweepPoint]:
        """Expanded :class:`SweepPoint`\\ s, in run order (lazy).

        ``start``/``stop`` select the half-open run-index range
        ``[start, stop)`` — the primitive a distributed planner shards
        a campaign with (:mod:`repro.dist`). Indices, keys, and configs
        are identical to the corresponding slice of the full expansion,
        so chunked execution can never disagree with single-host
        execution about what run ``i`` is.
        """
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        if stop is not None and stop < start:
            raise ConfigurationError(
                f"empty point range [{start}, {stop})"
            )
        width = max(5, len(str(max(self.run_count - 1, 0))))
        indexed = itertools.islice(
            enumerate(self.iter_overrides()), start, stop
        )
        for index, overrides in indexed:
            if self.reseed is not None:
                overrides = {**overrides, "seed": self.reseed + index}
            config = _apply_overrides(self.base, overrides)
            yield SweepPoint(
                index=index,
                key=point_key(index, overrides, width=width),
                overrides=overrides,
                config=config,
            )

    def __iter__(self) -> Iterator[SweepPoint]:
        return self.iter_points()

    def __len__(self) -> int:
        return self.run_count

    # --- identity and serialization ---------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready payload; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "base": config_signature(self.base),
            "grid": {f: [_encode_value(v) for v in vals]
                     for f, vals in self.grid.items()},
            "zip": {f: [_encode_value(v) for v in vals]
                    for f, vals in self.zip_axes.items()},
            "points": [
                {f: _encode_value(v) for f, v in point.items()}
                for point in self.points
            ],
            "reseed": self.reseed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a declaration dict (e.g. a parsed file).

        ``base`` is a partial override dict on top of the default
        :class:`~repro.sim.config.SimulationConfig`; unknown top-level
        keys are rejected so a typo'd declaration fails loudly.
        """
        known = {"name", "base", "grid", "zip", "zip_axes", "points", "reseed"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown sweep spec keys: {', '.join(sorted(unknown))}; "
                f"expected {', '.join(sorted(known - {'zip_axes'}))}"
            )
        base_overrides = cls._canonical_point(payload.get("base") or {})
        base = _apply_overrides(SimulationConfig(), base_overrides)
        return cls(
            base=base,
            grid=payload.get("grid"),
            zip_axes=payload.get("zip", payload.get("zip_axes")),
            points=payload.get("points"),
            reseed=payload.get("reseed"),
            name=str(payload.get("name", "")),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        """Load a declaration from a JSON (or YAML) file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError:  # pragma: no cover - PyYAML is a test extra
                raise ConfigurationError(
                    f"reading {path} needs PyYAML; install it or use JSON"
                ) from None
            try:
                payload = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ConfigurationError(
                    f"spec file {path} is not valid YAML: {exc}"
                ) from None
        else:
            payload = json.loads(text)
        if not isinstance(payload, Mapping):
            raise ConfigurationError(f"sweep spec {path} is not a mapping")
        spec = cls.from_dict(payload)
        if not spec.name:
            spec.name = path.stem
        return spec

    def fingerprint(self) -> str:
        """SHA-256 of the canonical payload (name excluded).

        Stable across processes and sessions; checkpoints embed it so a
        resume refuses to mix sweeps.
        """
        payload = self.to_dict()
        payload.pop("name")
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        """One-line human summary for progress banners."""
        parts = [f"{self.run_count} runs"]
        if self.points:
            parts.append(f"{len(self.points)} points")
        if self.zip_axes:
            parts.append(
                "zip[" + ",".join(self.zip_axes) + f"]x{self.zip_length}"
            )
        for field, values in self.grid.items():
            parts.append(f"{field}x{len(values)}")
        label = self.name or "sweep"
        return f"{label}: " + " · ".join(parts)


def point_key(index: int, overrides: Mapping[str, Any], width: int = 5) -> str:
    """The stable identity a checkpoint journals for one run."""

    def render(value: Any) -> str:
        encoded = _encode_value(value)
        if isinstance(encoded, Mapping):
            # Canonical compact JSON so mapping-valued overrides render
            # identically however they were declared.
            return json.dumps(encoded, sort_keys=True, separators=(",", ":"))
        return str(encoded)

    encoded = ",".join(
        f"{field}={render(value)}"
        for field, value in sorted(overrides.items())
    )
    return f"{index:0{width}d}" + (f" {encoded}" if encoded else "")
