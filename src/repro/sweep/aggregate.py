"""Incremental (streaming) aggregation of sweep results.

A long sweep must not hold its :class:`~repro.sim.results.SimulationResult`
time series in memory — a fig7-sized campaign is hundreds of runs and a
pump-envelope study thousands. Aggregators fold each result as it
streams out of the process pool and keep only O(aggregate) state:

* :class:`ScalarAggregator` — named scalar metrics (peak/mean
  temperature, energies, throughput, migrations, ...) reduced to
  count/mean/min/max per group (grouped by any config-descriptor
  fields, e.g. per policy label or per workload);
* :class:`CellAggregator` — per-floorplan-unit reducers: the running
  mean of each unit's time-average temperature and the running max of
  its peak, across runs (the spatial-hot-spot view of a sweep).

Folding is strictly in run-index order (the sweep runner guarantees
this), and every aggregator's state round-trips losslessly through
JSON (:meth:`Aggregator.state_dict` / :meth:`Aggregator.load_state`),
so a checkpointed sweep resumes to *bit-identical* aggregates: Python
floats survive JSON exactly, and the summation order is reproduced.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.constants import CONTROL
from repro.errors import ConfigurationError
from repro.io.batch import config_descriptor
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult


def _mean_tmax(result: SimulationResult) -> float:
    return float(np.mean(result.tmax)) if len(result.tmax) else float("nan")


#: The named scalar metrics a :class:`ScalarAggregator` can reduce.
METRICS: dict[str, Callable[[SimulationResult], float]] = {
    "peak_temperature": lambda r: r.peak_temperature(),
    "mean_tmax": _mean_tmax,
    "hotspot_pct": lambda r: 100.0 * r.time_above(CONTROL.hotspot_threshold),
    "above_target_pct": lambda r: 100.0 * r.time_above(CONTROL.target_temperature),
    "chip_energy_j": lambda r: r.chip_energy(),
    "pump_energy_j": lambda r: r.pump_energy(),
    "total_energy_j": lambda r: r.total_energy(),
    "throughput_tps": lambda r: r.throughput(),
    "completed_threads": lambda r: float(r.total_completed()),
    "migrations": lambda r: float(r.migrations[-1]) if len(r.migrations) else 0.0,
    "mean_flow_setting": lambda r: r.mean_flow_setting(),
    "mean_sojourn_s": lambda r: r.mean_sojourn_time(),
}

#: The default scalar set (the quantities the paper's figures compare).
DEFAULT_METRICS: tuple[str, ...] = (
    "peak_temperature",
    "mean_tmax",
    "hotspot_pct",
    "chip_energy_j",
    "pump_energy_j",
    "total_energy_j",
    "throughput_tps",
    "migrations",
)


class RunningStats:
    """Count/sum/min/max of a scalar stream (NaN values are skipped).

    Sums accumulate in arrival order, so two folds of the same ordered
    stream — fresh, or checkpoint-restored mid-stream — end bit-equal.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def state_dict(self) -> list:
        return [self.count, self.total, self.minimum, self.maximum]

    @classmethod
    def from_state(cls, state: Sequence) -> "RunningStats":
        stats = cls()
        stats.count = int(state[0])
        stats.total = float(state[1])
        stats.minimum = None if state[2] is None else float(state[2])
        stats.maximum = None if state[3] is None else float(state[3])
        return stats


class Aggregator:
    """Interface every streaming reducer implements.

    Subclasses fold results one at a time (:meth:`update`), expose
    their full state as a JSON-serializable payload
    (:meth:`state_dict` / :meth:`load_state`) for checkpointing, and
    render summary rows (:meth:`rows`) for export and the CLI.
    """

    kind: str = ""

    def spec(self) -> dict:
        """Constructor payload for :func:`aggregator_from_spec`."""
        raise NotImplementedError

    def update(self, config: SimulationConfig, result: SimulationResult) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        raise NotImplementedError

    def load_state(self, state: Mapping) -> None:
        raise NotImplementedError

    def rows(self) -> list[dict]:
        raise NotImplementedError


class ScalarAggregator(Aggregator):
    """Grouped count/mean/min/max over named scalar metrics.

    Parameters
    ----------
    metrics:
        Names from :data:`METRICS` (checkpoint state refers to metrics
        by name, so reducers restore without pickling callables).
    group_by:
        Config-descriptor fields that identify a group — default
        ``("label",)`` reduces per policy/cooling combination; use
        ``("benchmark",)`` for per-workload reductions or ``()`` for
        one global group.
    """

    kind = "scalar"

    def __init__(
        self,
        metrics: Sequence[str] = DEFAULT_METRICS,
        group_by: Sequence[str] = ("label",),
    ) -> None:
        unknown = [m for m in metrics if m not in METRICS]
        if unknown:
            raise ConfigurationError(
                f"unknown metrics {', '.join(unknown)}; "
                f"choose from {', '.join(METRICS)}"
            )
        self.metrics = tuple(metrics)
        self.group_by = tuple(group_by)
        # group key -> metric name -> RunningStats; insertion-ordered so
        # rows come out in first-seen order deterministically.
        self._groups: dict[str, dict[str, RunningStats]] = {}

    def spec(self) -> dict:
        return {
            "kind": self.kind,
            "metrics": list(self.metrics),
            "group_by": list(self.group_by),
        }

    def _group_key(self, config: SimulationConfig) -> str:
        if not self.group_by:
            return "all"
        descriptor = config_descriptor(config)
        missing = [f for f in self.group_by if f not in descriptor]
        if missing:
            raise ConfigurationError(
                f"group_by fields not in the config descriptor: "
                f"{', '.join(missing)}; choose from {', '.join(descriptor)}"
            )
        return "|".join(str(descriptor[f]) for f in self.group_by)

    def update(self, config: SimulationConfig, result: SimulationResult) -> None:
        group = self._groups.setdefault(
            self._group_key(config), {m: RunningStats() for m in self.metrics}
        )
        for metric in self.metrics:
            group[metric].add(METRICS[metric](result))

    def state_dict(self) -> dict:
        return {
            key: {m: stats.state_dict() for m, stats in group.items()}
            for key, group in self._groups.items()
        }

    def load_state(self, state: Mapping) -> None:
        self._groups = {
            key: {
                m: RunningStats.from_state(s) for m, s in group.items()
            }
            for key, group in state.items()
        }

    def rows(self) -> list[dict]:
        """One row per group: identity columns, then mean/min/max stats."""
        rows = []
        for key, group in self._groups.items():
            row: dict = {}
            if self.group_by:
                row.update(zip(self.group_by, key.split("|")))
            else:
                row["group"] = key
            first = next(iter(group.values()), None)
            row["runs"] = first.count if first is not None else 0
            for metric in self.metrics:
                stats = group[metric]
                row[f"{metric}_mean"] = stats.mean
                row[f"{metric}_min"] = (
                    float("nan") if stats.minimum is None else stats.minimum
                )
                row[f"{metric}_max"] = (
                    float("nan") if stats.maximum is None else stats.maximum
                )
            rows.append(row)
        return rows


class CellAggregator(Aggregator):
    """Per-floorplan-unit temperature reducers across runs.

    For every unit name seen in the sweep, keeps the running mean of
    the unit's time-average temperature and the running max of its
    per-run peak — the sweep-wide spatial hot-spot map, at O(units)
    memory however long the campaign runs.
    """

    kind = "cells"

    def __init__(self) -> None:
        self._mean = {}  # unit -> RunningStats over per-run time-means
        self._peak = {}  # unit -> RunningStats over per-run time-maxima

    def spec(self) -> dict:
        return {"kind": self.kind}

    def update(self, config: SimulationConfig, result: SimulationResult) -> None:
        if result.unit_temperatures.size == 0:
            return
        means = result.unit_temperatures.mean(axis=0)
        peaks = result.unit_temperatures.max(axis=0)
        for name, mean, peak in zip(result.unit_names, means, peaks):
            self._mean.setdefault(name, RunningStats()).add(float(mean))
            self._peak.setdefault(name, RunningStats()).add(float(peak))

    def state_dict(self) -> dict:
        return {
            name: {
                "mean": self._mean[name].state_dict(),
                "peak": self._peak[name].state_dict(),
            }
            for name in self._mean
        }

    def load_state(self, state: Mapping) -> None:
        self._mean = {
            name: RunningStats.from_state(entry["mean"])
            for name, entry in state.items()
        }
        self._peak = {
            name: RunningStats.from_state(entry["peak"])
            for name, entry in state.items()
        }

    def rows(self) -> list[dict]:
        return [
            {
                "unit": name,
                "runs": self._mean[name].count,
                "mean_temperature": self._mean[name].mean,
                "peak_temperature": (
                    float("nan")
                    if self._peak[name].maximum is None
                    else self._peak[name].maximum
                ),
            }
            for name in self._mean
        ]


_AGGREGATOR_KINDS = {"scalar": ScalarAggregator, "cells": CellAggregator}


def aggregator_from_spec(spec: Mapping) -> Aggregator:
    """Rebuild an aggregator from its :meth:`Aggregator.spec` payload
    (how a checkpoint reconstructs its reducers on resume)."""
    kind = spec.get("kind")
    if kind == "scalar":
        return ScalarAggregator(
            metrics=spec.get("metrics", DEFAULT_METRICS),
            group_by=spec.get("group_by", ("label",)),
        )
    if kind == "cells":
        return CellAggregator()
    raise ConfigurationError(
        f"unknown aggregator kind {kind!r}; "
        f"choose from {', '.join(_AGGREGATOR_KINDS)}"
    )


def default_aggregators() -> list[Aggregator]:
    """The standard reduction set: per-label scalars plus the cell map."""
    return [ScalarAggregator(), CellAggregator()]
