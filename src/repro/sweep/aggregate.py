"""Incremental (streaming) aggregation of sweep results.

A long sweep must not hold its :class:`~repro.sim.results.SimulationResult`
time series in memory — a fig7-sized campaign is hundreds of runs and a
pump-envelope study thousands. Aggregators fold each result as it
streams out of the process pool and keep only O(aggregate) state:

* :class:`ScalarAggregator` — named scalar metrics (peak/mean
  temperature, energies, throughput, migrations, ...) reduced to
  count/mean/min/max per group (grouped by any config-descriptor
  fields, e.g. per policy label or per workload);
* :class:`CellAggregator` — per-floorplan-unit reducers: the running
  mean of each unit's time-average temperature and the running max of
  its peak, across runs (the spatial-hot-spot view of a sweep);
* :class:`HistogramAggregator` — a fixed-bin histogram sketch of one
  metric per group (integer counts merge exactly across shards);
* :class:`QuantileAggregator` — P² streaming quantile estimates
  (Jain & Chlamtac 1985) of one metric per group, at O(1) memory per
  quantile however long the campaign runs;
* :class:`MomentsAggregator` — Welford mean/variance (second central
  moment) of named metrics per group: the numerically stable online
  recurrence, replay/merge-exact in run-index order like every other
  reducer here.

Folding is strictly in run-index order (the sweep runner guarantees
this), and every aggregator's state round-trips losslessly through
JSON (:meth:`Aggregator.state_dict` / :meth:`Aggregator.load_state`),
so a checkpointed sweep resumes to *bit-identical* aggregates: Python
floats survive JSON exactly, and the summation order is reproduced.

Distributed folding splits the update into two halves:
:meth:`Aggregator.fold_payload` extracts a run's JSON-safe
contribution (computed on whatever worker executed the run) and
:meth:`Aggregator.update_payload` applies it. ``update()`` is defined
as exactly ``update_payload(fold_payload(...))``, so replaying
journaled payloads in run-index order — however the runs were sharded
across workers or hosts — performs the *same float operations in the
same order* as a single-host sweep, making merged aggregates
bit-identical (the invariant :mod:`repro.dist` builds on).
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.constants import CONTROL
from repro.errors import ConfigurationError
from repro.io.batch import config_descriptor
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult


def _mean_tmax(result: SimulationResult) -> float:
    return float(np.mean(result.tmax)) if len(result.tmax) else float("nan")


#: The named scalar metrics a :class:`ScalarAggregator` can reduce.
METRICS: dict[str, Callable[[SimulationResult], float]] = {
    "peak_temperature": lambda r: r.peak_temperature(),
    "mean_tmax": _mean_tmax,
    "hotspot_pct": lambda r: 100.0 * r.time_above(CONTROL.hotspot_threshold),
    "above_target_pct": lambda r: 100.0 * r.time_above(CONTROL.target_temperature),
    "chip_energy_j": lambda r: r.chip_energy(),
    "pump_energy_j": lambda r: r.pump_energy(),
    "total_energy_j": lambda r: r.total_energy(),
    "throughput_tps": lambda r: r.throughput(),
    "completed_threads": lambda r: float(r.total_completed()),
    "migrations": lambda r: float(r.migrations[-1]) if len(r.migrations) else 0.0,
    "mean_flow_setting": lambda r: r.mean_flow_setting(),
    "mean_sojourn_s": lambda r: r.mean_sojourn_time(),
    # Facility co-simulation metrics: NaN (skipped by every reducer)
    # for fixed-inlet runs, so mixed sweeps aggregate cleanly.
    "pue": lambda r: r.pue(),
    "wue_l_per_kwh": lambda r: r.wue(),
    "total_cooling_power_w": lambda r: r.total_cooling_power(),
    "cooling_energy_j": lambda r: r.cooling_energy(),
    "mean_inlet_temperature": lambda r: r.mean_inlet_temperature(),
    "free_cooling_pct": lambda r: 100.0 * r.free_cooling_fraction(),
}

#: The default scalar set (the quantities the paper's figures compare).
DEFAULT_METRICS: tuple[str, ...] = (
    "peak_temperature",
    "mean_tmax",
    "hotspot_pct",
    "chip_energy_j",
    "pump_energy_j",
    "total_energy_j",
    "throughput_tps",
    "migrations",
)


class RunningStats:
    """Count/sum/min/max of a scalar stream (NaN values are skipped).

    Sums accumulate in arrival order, so two folds of the same ordered
    stream — fresh, or checkpoint-restored mid-stream — end bit-equal.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def state_dict(self) -> list:
        return [self.count, self.total, self.minimum, self.maximum]

    @classmethod
    def from_state(cls, state: Sequence) -> "RunningStats":
        stats = cls()
        stats.count = int(state[0])
        stats.total = float(state[1])
        stats.minimum = None if state[2] is None else float(state[2])
        stats.maximum = None if state[3] is None else float(state[3])
        return stats


class Aggregator:
    """Interface every streaming reducer implements.

    Subclasses fold results one at a time (:meth:`update`), expose
    their full state as a JSON-serializable payload
    (:meth:`state_dict` / :meth:`load_state`) for checkpointing, and
    render summary rows (:meth:`rows`) for export and the CLI.

    The built-in reducers implement ``update`` as
    ``update_payload(fold_payload(config, result))``:
    :meth:`fold_payload` is a *pure* function extracting the run's
    JSON-safe contribution, :meth:`update_payload` mutates state. The
    split is what lets :mod:`repro.dist` journal per-run payloads on
    remote workers and replay them in run-index order at merge time —
    the same float operations in the same order as a single-host fold,
    hence bit-identical aggregates. Custom subclasses may override
    ``update`` directly, but then cannot ride a distributed campaign.
    """

    kind: str = ""

    def spec(self) -> dict:
        """Constructor payload for :func:`aggregator_from_spec`."""
        raise NotImplementedError

    def fold_payload(self, config: SimulationConfig, result: SimulationResult) -> dict:
        """One run's JSON-safe contribution (pure; no state change)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support payload folding, "
            "so it cannot be used in a distributed campaign"
        )

    def update_payload(self, payload: Mapping) -> None:
        """Apply a contribution produced by :meth:`fold_payload`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support payload folding, "
            "so it cannot be used in a distributed campaign"
        )

    def update(self, config: SimulationConfig, result: SimulationResult) -> None:
        self.update_payload(self.fold_payload(config, result))

    def state_dict(self) -> dict:
        raise NotImplementedError

    def load_state(self, state: Mapping) -> None:
        raise NotImplementedError

    def rows(self) -> list[dict]:
        raise NotImplementedError


def group_key(config: SimulationConfig, group_by: Sequence[str]) -> str:
    """The group identity of a config under a ``group_by`` field tuple."""
    if not group_by:
        return "all"
    descriptor = config_descriptor(config)
    missing = [f for f in group_by if f not in descriptor]
    if missing:
        raise ConfigurationError(
            f"group_by fields not in the config descriptor: "
            f"{', '.join(missing)}; choose from {', '.join(descriptor)}"
        )
    return "|".join(str(descriptor[f]) for f in group_by)


def _group_columns(group_by: Sequence[str], key: str) -> dict:
    """The identity columns of one rendered aggregate row."""
    if group_by:
        return dict(zip(group_by, key.split("|")))
    return {"group": key}


def _none_if_nan(value: float):
    """NaN rendered as None: JSON-clean and equal across replays."""
    return None if math.isnan(value) else value


class ScalarAggregator(Aggregator):
    """Grouped count/mean/min/max over named scalar metrics.

    Parameters
    ----------
    metrics:
        Names from :data:`METRICS` (checkpoint state refers to metrics
        by name, so reducers restore without pickling callables).
    group_by:
        Config-descriptor fields that identify a group — default
        ``("label",)`` reduces per policy/cooling combination; use
        ``("benchmark",)`` for per-workload reductions or ``()`` for
        one global group.
    """

    kind = "scalar"

    def __init__(
        self,
        metrics: Sequence[str] = DEFAULT_METRICS,
        group_by: Sequence[str] = ("label",),
    ) -> None:
        unknown = [m for m in metrics if m not in METRICS]
        if unknown:
            raise ConfigurationError(
                f"unknown metrics {', '.join(unknown)}; "
                f"choose from {', '.join(METRICS)}"
            )
        self.metrics = tuple(metrics)
        self.group_by = tuple(group_by)
        # group key -> metric name -> RunningStats; insertion-ordered so
        # rows come out in first-seen order deterministically.
        self._groups: dict[str, dict[str, RunningStats]] = {}

    def spec(self) -> dict:
        return {
            "kind": self.kind,
            "metrics": list(self.metrics),
            "group_by": list(self.group_by),
        }

    def fold_payload(self, config: SimulationConfig, result: SimulationResult) -> dict:
        return {
            "group": group_key(config, self.group_by),
            "values": [METRICS[metric](result) for metric in self.metrics],
        }

    def update_payload(self, payload: Mapping) -> None:
        group = self._groups.setdefault(
            payload["group"], {m: RunningStats() for m in self.metrics}
        )
        for metric, value in zip(self.metrics, payload["values"]):
            group[metric].add(value)

    def state_dict(self) -> dict:
        return {
            key: {m: stats.state_dict() for m, stats in group.items()}
            for key, group in self._groups.items()
        }

    def load_state(self, state: Mapping) -> None:
        self._groups = {
            key: {
                m: RunningStats.from_state(s) for m, s in group.items()
            }
            for key, group in state.items()
        }

    def rows(self) -> list[dict]:
        """One row per group: identity columns, then mean/min/max stats."""
        rows = []
        for key, group in self._groups.items():
            row: dict = dict(_group_columns(self.group_by, key))
            first = next(iter(group.values()), None)
            row["runs"] = first.count if first is not None else 0
            for metric in self.metrics:
                stats = group[metric]
                row[f"{metric}_mean"] = stats.mean
                row[f"{metric}_min"] = (
                    float("nan") if stats.minimum is None else stats.minimum
                )
                row[f"{metric}_max"] = (
                    float("nan") if stats.maximum is None else stats.maximum
                )
            rows.append(row)
        return rows


class CellAggregator(Aggregator):
    """Per-floorplan-unit temperature reducers across runs.

    For every unit name seen in the sweep, keeps the running mean of
    the unit's time-average temperature and the running max of its
    per-run peak — the sweep-wide spatial hot-spot map, at O(units)
    memory however long the campaign runs.
    """

    kind = "cells"

    def __init__(self) -> None:
        self._mean = {}  # unit -> RunningStats over per-run time-means
        self._peak = {}  # unit -> RunningStats over per-run time-maxima

    def spec(self) -> dict:
        return {"kind": self.kind}

    def fold_payload(self, config: SimulationConfig, result: SimulationResult) -> dict:
        if result.unit_temperatures.size == 0:
            return {"units": []}
        means = result.unit_temperatures.mean(axis=0)
        peaks = result.unit_temperatures.max(axis=0)
        return {
            "units": [
                [name, float(mean), float(peak)]
                for name, mean, peak in zip(result.unit_names, means, peaks)
            ]
        }

    def update_payload(self, payload: Mapping) -> None:
        for name, mean, peak in payload["units"]:
            self._mean.setdefault(name, RunningStats()).add(mean)
            self._peak.setdefault(name, RunningStats()).add(peak)

    def state_dict(self) -> dict:
        return {
            name: {
                "mean": self._mean[name].state_dict(),
                "peak": self._peak[name].state_dict(),
            }
            for name in self._mean
        }

    def load_state(self, state: Mapping) -> None:
        self._mean = {
            name: RunningStats.from_state(entry["mean"])
            for name, entry in state.items()
        }
        self._peak = {
            name: RunningStats.from_state(entry["peak"])
            for name, entry in state.items()
        }

    def rows(self) -> list[dict]:
        return [
            {
                "unit": name,
                "runs": self._mean[name].count,
                "mean_temperature": self._mean[name].mean,
                "peak_temperature": (
                    float("nan")
                    if self._peak[name].maximum is None
                    else self._peak[name].maximum
                ),
            }
            for name in self._mean
        ]


class HistogramAggregator(Aggregator):
    """Fixed-bin histogram sketch of one metric, per group.

    ``bins`` equal-width bins over ``[lo, hi)`` (values exactly at
    ``hi`` land in the top bin), with explicit underflow/overflow/NaN
    counters so no observation is silently dropped. Counts are
    integers, so two explicit-range shard histograms also merge
    *exactly* by addition (:meth:`merge`).

    **Data-driven range** — pass ``lo=None, hi=None`` and the range is
    derived from the data itself: the first ``warmup`` finite
    observations are buffered raw, then the bin range freezes to their
    span padded by 5% each side and the buffer replays into the bins.
    This is what metrics whose scale varies by orders of magnitude
    across sweeps need (energy grows with duration and layer count, so
    any fixed range clips some campaigns — the ROADMAP's "energy
    histograms need a data-driven range"). The derivation depends only
    on the observation sequence, which the sweep runner and the
    distributed merger both replay in run-index order, so auto-range
    histograms stay bit-identical across resume and across any
    sharding; only the exact state :meth:`merge` is unavailable (it
    raises), because two shards may have frozen different ranges.
    """

    kind = "histogram"

    #: Default finite observations buffered before an auto range freezes.
    DEFAULT_WARMUP = 64
    #: Fraction of the observed span padded onto each side at freeze.
    RANGE_PAD = 0.05

    def __init__(
        self,
        metric: str = "peak_temperature",
        lo: Optional[float] = 40.0,
        hi: Optional[float] = 120.0,
        bins: int = 32,
        group_by: Sequence[str] = ("label",),
        warmup: int = DEFAULT_WARMUP,
    ) -> None:
        if metric not in METRICS:
            raise ConfigurationError(
                f"unknown metric {metric!r}; choose from {', '.join(METRICS)}"
            )
        if (lo is None) != (hi is None):
            raise ConfigurationError(
                "histogram range must be both explicit (lo and hi) or "
                "both data-driven (lo=None, hi=None)"
            )
        if lo is not None and not lo < hi:
            raise ConfigurationError(f"histogram needs lo < hi, got [{lo}, {hi})")
        if bins < 1:
            raise ConfigurationError("histogram needs at least one bin")
        if warmup < 1:
            raise ConfigurationError("histogram warmup must be >= 1")
        self.metric = metric
        self.auto_range = lo is None
        self.lo = None if lo is None else float(lo)
        self.hi = None if hi is None else float(hi)
        self.bins = int(bins)
        self.warmup = int(warmup)
        self.group_by = tuple(group_by)
        # group key -> {"counts": [bins ints], "underflow", "overflow", "nan"}
        self._groups: dict[str, dict] = {}
        # Auto-range warm-up: [group, value] in arrival order until the
        # range freezes (order matters — replay must reproduce it).
        self._buffer: list[list] = []

    @staticmethod
    def _empty_group(bins: int) -> dict:
        return {"counts": [0] * bins, "underflow": 0, "overflow": 0, "nan": 0}

    def spec(self) -> dict:
        return {
            "kind": self.kind,
            "metric": self.metric,
            "lo": self.lo if not self.auto_range else None,
            "hi": self.hi if not self.auto_range else None,
            "bins": self.bins,
            "warmup": self.warmup,
            "group_by": list(self.group_by),
        }

    @property
    def frozen(self) -> bool:
        """Whether the bin range is decided (always True with an
        explicit range)."""
        return self.lo is not None

    @staticmethod
    def _derive_range(values: Sequence[float], pad: float) -> tuple[float, float]:
        lo, hi = min(values), max(values)
        span = hi - lo
        margin = pad * span if span > 0.0 else max(1.0, abs(lo) * pad)
        return lo - margin, hi + margin

    def _freeze(self) -> None:
        values = [value for _, value in self._buffer]
        self.lo, self.hi = self._derive_range(values, self.RANGE_PAD)
        buffered, self._buffer = self._buffer, []
        for group, value in buffered:
            self._bin({"group": group, "value": value})

    def _edge(self, i: int, lo: float, hi: float) -> float:
        return lo + (hi - lo) * i / self.bins

    def fold_payload(self, config: SimulationConfig, result: SimulationResult) -> dict:
        return {
            "group": group_key(config, self.group_by),
            "value": float(METRICS[self.metric](result)),
        }

    def update_payload(self, payload: Mapping) -> None:
        value = float(payload["value"])
        if math.isnan(value):
            group = self._groups.setdefault(
                payload["group"], self._empty_group(self.bins)
            )
            group["nan"] += 1
            return
        if not self.frozen:
            if math.isinf(value):
                # Infinities must not enter the range derivation (any
                # finite range excludes them anyway): count them where
                # the frozen histogram would — under/overflow.
                group = self._groups.setdefault(
                    payload["group"], self._empty_group(self.bins)
                )
                group["overflow" if value > 0 else "underflow"] += 1
                return
            self._buffer.append([str(payload["group"]), value])
            if len(self._buffer) >= self.warmup:
                self._freeze()
            return
        self._bin(payload)

    def _bin(self, payload: Mapping) -> None:
        value = float(payload["value"])
        group = self._groups.setdefault(
            payload["group"], self._empty_group(self.bins)
        )
        if value < self.lo:
            group["underflow"] += 1
        elif value > self.hi:
            group["overflow"] += 1
        else:
            index = min(
                int((value - self.lo) * self.bins / (self.hi - self.lo)),
                self.bins - 1,
            )
            group["counts"][index] += 1

    def merge(self, other: "HistogramAggregator") -> None:
        """Fold another explicit-range histogram of the same spec in,
        exactly. Auto-range histograms cannot state-merge (two shards
        may have frozen different ranges) — replay their payloads in
        run order instead, as :mod:`repro.dist` does."""
        if self.auto_range or other.auto_range:
            raise ConfigurationError(
                "auto-range histograms cannot merge by state; replay "
                "fold payloads in run-index order instead"
            )
        if other.spec() != self.spec():
            raise ConfigurationError(
                "can only merge histograms with identical specs"
            )
        for key, theirs in other._groups.items():
            group = self._groups.setdefault(key, self._empty_group(self.bins))
            group["underflow"] += theirs["underflow"]
            group["overflow"] += theirs["overflow"]
            group["nan"] += theirs["nan"]
            group["counts"] = [
                a + b for a, b in zip(group["counts"], theirs["counts"])
            ]

    def _groups_state(self) -> dict:
        return {
            key: {
                "counts": list(group["counts"]),
                "underflow": group["underflow"],
                "overflow": group["overflow"],
                "nan": group["nan"],
            }
            for key, group in self._groups.items()
        }

    def state_dict(self) -> dict:
        if not self.auto_range:
            # Flat legacy layout: explicit-range checkpoints written
            # before auto-range existed restore unchanged.
            return self._groups_state()
        return {
            "auto": {
                "lo": self.lo,
                "hi": self.hi,
                "buffer": [list(entry) for entry in self._buffer],
            },
            "groups": self._groups_state(),
        }

    def _load_groups(self, state: Mapping) -> None:
        self._groups = {
            key: {
                "counts": [int(n) for n in group["counts"]],
                "underflow": int(group["underflow"]),
                "overflow": int(group["overflow"]),
                "nan": int(group.get("nan", 0)),
            }
            for key, group in state.items()
        }

    def load_state(self, state: Mapping) -> None:
        if not self.auto_range:
            self._load_groups(state)
            return
        auto = state.get("auto", {})
        self.lo = None if auto.get("lo") is None else float(auto["lo"])
        self.hi = None if auto.get("hi") is None else float(auto["hi"])
        self._buffer = [
            [str(group), float(value)] for group, value in auto.get("buffer", [])
        ]
        self._load_groups(state.get("groups", {}))

    def rows(self) -> list[dict]:
        """Non-empty bins per group (plus under/overflow/NaN pseudo-bins).

        ``bin`` is -1 for underflow, ``bins`` for overflow, and None
        for NaN observations; open edges are None (null in JSON
        exports, empty in CSV). An auto-range histogram whose stream
        ended inside the warm-up renders with a provisional range
        derived from the buffered values (state is not mutated).
        """
        groups: Mapping[str, dict] = self._groups
        lo, hi = self.lo, self.hi
        if not self.frozen:
            if not self._buffer and not groups:
                return []
            if self._buffer:
                lo, hi = self._derive_range(
                    [value for _, value in self._buffer], self.RANGE_PAD
                )
                rendered = {
                    key: dict(group, counts=list(group["counts"]))
                    for key, group in groups.items()
                }
                shadow = HistogramAggregator(
                    metric=self.metric, lo=lo, hi=hi, bins=self.bins,
                    group_by=self.group_by,
                )
                shadow._groups = rendered
                for group, value in self._buffer:
                    shadow._bin({"group": group, "value": value})
                groups = shadow._groups
            else:
                # Only NaN observations so far: render the pseudo-bins.
                lo, hi = 0.0, 1.0
        rows = []
        for key, group in groups.items():
            identity = _group_columns(self.group_by, key)
            if group["underflow"]:
                rows.append(
                    {
                        **identity,
                        "metric": self.metric,
                        "bin": -1,
                        "lo": None,
                        "hi": lo,
                        "count": group["underflow"],
                    }
                )
            for i, count in enumerate(group["counts"]):
                if count:
                    rows.append(
                        {
                            **identity,
                            "metric": self.metric,
                            "bin": i,
                            "lo": self._edge(i, lo, hi),
                            "hi": self._edge(i + 1, lo, hi),
                            "count": count,
                        }
                    )
            if group["overflow"]:
                rows.append(
                    {
                        **identity,
                        "metric": self.metric,
                        "bin": self.bins,
                        "lo": hi,
                        "hi": None,
                        "count": group["overflow"],
                    }
                )
            if group["nan"]:
                rows.append(
                    {
                        **identity,
                        "metric": self.metric,
                        "bin": None,
                        "lo": None,
                        "hi": None,
                        "count": group["nan"],
                    }
                )
        return rows


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac 1985).

    Tracks one quantile of a scalar stream with five markers — O(1)
    memory however long the stream — entirely in Python floats, so
    folding the same ordered stream twice (fresh, or restored from
    JSON state mid-stream) is bit-identical. The first five
    observations are kept raw; estimates before that interpolate the
    sorted prefix.
    """

    __slots__ = ("p", "count", "heights", "positions", "desired")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self.heights: list[float] = []  # <5 obs: raw sorted values
        self.positions: list[int] = []
        self.desired: list[float] = []

    def _increments(self) -> tuple[float, ...]:
        return (0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0)

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        if self.count <= 5:
            bisect.insort(self.heights, value)
            if self.count == 5:
                self.positions = [1, 2, 3, 4, 5]
                self.desired = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ]
            return
        q, n, d = self.heights, self.positions, self.desired
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            if value > q[4]:
                q[4] = value
            cell = 3
        else:
            cell = next(i for i in range(4) if q[i] <= value < q[i + 1])
        for i in range(cell + 1, 5):
            n[i] += 1
        increments = self._increments()
        for i in range(5):
            d[i] += increments[i]
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if delta >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q, n = self.heights, self.positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        q, n = self.heights, self.positions
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        """The current quantile estimate (NaN with no observations)."""
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            # Linear interpolation over the raw sorted prefix.
            scaled = self.p * (self.count - 1)
            low = int(scaled)
            frac = scaled - low
            if low + 1 >= self.count:
                return self.heights[-1]
            return self.heights[low] + frac * (
                self.heights[low + 1] - self.heights[low]
            )
        return self.heights[2]

    def state_dict(self) -> dict:
        return {
            "p": self.p,
            "count": self.count,
            "heights": list(self.heights),
            "positions": list(self.positions),
            "desired": list(self.desired),
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "P2Quantile":
        estimator = cls(float(state["p"]))
        estimator.count = int(state["count"])
        estimator.heights = [float(h) for h in state["heights"]]
        estimator.positions = [int(n) for n in state["positions"]]
        estimator.desired = [float(d) for d in state["desired"]]
        return estimator


def quantile_column(q: float) -> str:
    """The export column name of a quantile, e.g. 0.95 -> ``"p95"``."""
    return f"p{100.0 * q:g}"


class QuantileAggregator(Aggregator):
    """P² streaming quantile estimates of one metric, per group.

    The estimator is sequential, so a *state* merge across shards is
    not exact; distributed campaigns instead replay the journaled
    per-run payloads in run-index order (:meth:`update_payload`),
    which reproduces the single-host estimate bit-for-bit.
    """

    kind = "quantile"

    def __init__(
        self,
        metric: str = "peak_temperature",
        quantiles: Sequence[float] = (0.5, 0.95),
        group_by: Sequence[str] = ("label",),
    ) -> None:
        if metric not in METRICS:
            raise ConfigurationError(
                f"unknown metric {metric!r}; choose from {', '.join(METRICS)}"
            )
        if not quantiles:
            raise ConfigurationError("need at least one quantile")
        self.metric = metric
        self.quantiles = tuple(float(q) for q in quantiles)
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
        self.group_by = tuple(group_by)
        # group key -> [one P2Quantile per requested quantile]
        self._groups: dict[str, list[P2Quantile]] = {}

    def spec(self) -> dict:
        return {
            "kind": self.kind,
            "metric": self.metric,
            "quantiles": list(self.quantiles),
            "group_by": list(self.group_by),
        }

    def fold_payload(self, config: SimulationConfig, result: SimulationResult) -> dict:
        return {
            "group": group_key(config, self.group_by),
            "value": float(METRICS[self.metric](result)),
        }

    def update_payload(self, payload: Mapping) -> None:
        estimators = self._groups.setdefault(
            payload["group"], [P2Quantile(q) for q in self.quantiles]
        )
        for estimator in estimators:
            estimator.add(payload["value"])

    def state_dict(self) -> dict:
        return {
            key: [estimator.state_dict() for estimator in estimators]
            for key, estimators in self._groups.items()
        }

    def load_state(self, state: Mapping) -> None:
        self._groups = {
            key: [P2Quantile.from_state(s) for s in states]
            for key, states in state.items()
        }

    def rows(self) -> list[dict]:
        rows = []
        for key, estimators in self._groups.items():
            row = dict(_group_columns(self.group_by, key))
            row["metric"] = self.metric
            row["runs"] = estimators[0].count if estimators else 0
            for q, estimator in zip(self.quantiles, estimators):
                row[quantile_column(q)] = estimator.value()
            rows.append(row)
        return rows


class WelfordMoments:
    """Welford's online mean/variance of a scalar stream.

    The numerically stable recurrence (count, mean, M2 = sum of
    squared deviations); NaN values are skipped, matching
    :class:`RunningStats`. All arithmetic is in Python floats applied
    in arrival order, so folding the same ordered stream twice — or
    restoring from JSON state mid-stream — is bit-identical.
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1; NaN below two observations)."""
        if self.count < 2:
            return float("nan")
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else variance

    def state_dict(self) -> list:
        return [self.count, self.mean, self.m2]

    @classmethod
    def from_state(cls, state: Sequence) -> "WelfordMoments":
        moments = cls()
        moments.count = int(state[0])
        moments.mean = float(state[1])
        moments.m2 = float(state[2])
        return moments


class MomentsAggregator(Aggregator):
    """Grouped Welford mean/variance over named scalar metrics.

    The spread companion to :class:`ScalarAggregator`'s min/mean/max:
    per group, every metric gets a numerically stable streaming mean,
    sample variance, and standard deviation. Like every built-in
    reducer the update is split into a pure :meth:`fold_payload` and a
    mutating :meth:`update_payload`, so distributed campaigns replay
    journaled payloads in run-index order and merge bit-identically to
    a single-host fold.
    """

    kind = "moments"

    def __init__(
        self,
        metrics: Sequence[str] = DEFAULT_METRICS,
        group_by: Sequence[str] = ("label",),
    ) -> None:
        unknown = [m for m in metrics if m not in METRICS]
        if unknown:
            raise ConfigurationError(
                f"unknown metrics {', '.join(unknown)}; "
                f"choose from {', '.join(METRICS)}"
            )
        self.metrics = tuple(metrics)
        self.group_by = tuple(group_by)
        # group key -> metric name -> WelfordMoments, insertion-ordered.
        self._groups: dict[str, dict[str, WelfordMoments]] = {}

    def spec(self) -> dict:
        return {
            "kind": self.kind,
            "metrics": list(self.metrics),
            "group_by": list(self.group_by),
        }

    def fold_payload(self, config: SimulationConfig, result: SimulationResult) -> dict:
        return {
            "group": group_key(config, self.group_by),
            "values": [METRICS[metric](result) for metric in self.metrics],
        }

    def update_payload(self, payload: Mapping) -> None:
        group = self._groups.setdefault(
            payload["group"], {m: WelfordMoments() for m in self.metrics}
        )
        for metric, value in zip(self.metrics, payload["values"]):
            group[metric].add(value)

    def state_dict(self) -> dict:
        return {
            key: {m: moments.state_dict() for m, moments in group.items()}
            for key, group in self._groups.items()
        }

    def load_state(self, state: Mapping) -> None:
        self._groups = {
            key: {
                m: WelfordMoments.from_state(s) for m, s in group.items()
            }
            for key, group in state.items()
        }

    def rows(self) -> list[dict]:
        """One row per group: identity columns, then mean/var/std.

        Undefined moments (no observations; variance below two) render
        as ``None`` rather than NaN so rows stay JSON-clean and compare
        equal across replays (NaN never equals itself).
        """
        rows = []
        for key, group in self._groups.items():
            row: dict = dict(_group_columns(self.group_by, key))
            first = next(iter(group.values()), None)
            row["runs"] = first.count if first is not None else 0
            for metric in self.metrics:
                moments = group[metric]
                row[f"{metric}_mean"] = (
                    moments.mean if moments.count else None
                )
                row[f"{metric}_var"] = _none_if_nan(moments.variance)
                row[f"{metric}_std"] = _none_if_nan(moments.std)
            rows.append(row)
        return rows


_AGGREGATOR_KINDS = {
    "scalar": ScalarAggregator,
    "cells": CellAggregator,
    "histogram": HistogramAggregator,
    "quantile": QuantileAggregator,
    "moments": MomentsAggregator,
}


def aggregator_from_spec(spec: Mapping) -> Aggregator:
    """Rebuild an aggregator from its :meth:`Aggregator.spec` payload
    (how a checkpoint reconstructs its reducers on resume)."""
    kind = spec.get("kind")
    if kind == "scalar":
        return ScalarAggregator(
            metrics=spec.get("metrics", DEFAULT_METRICS),
            group_by=spec.get("group_by", ("label",)),
        )
    if kind == "cells":
        return CellAggregator()
    if kind == "histogram":
        return HistogramAggregator(
            metric=spec.get("metric", "peak_temperature"),
            lo=spec.get("lo", 40.0),
            hi=spec.get("hi", 120.0),
            bins=spec.get("bins", 32),
            group_by=spec.get("group_by", ("label",)),
            warmup=spec.get("warmup", HistogramAggregator.DEFAULT_WARMUP),
        )
    if kind == "quantile":
        return QuantileAggregator(
            metric=spec.get("metric", "peak_temperature"),
            quantiles=spec.get("quantiles", (0.5, 0.95)),
            group_by=spec.get("group_by", ("label",)),
        )
    if kind == "moments":
        return MomentsAggregator(
            metrics=spec.get("metrics", DEFAULT_METRICS),
            group_by=spec.get("group_by", ("label",)),
        )
    raise ConfigurationError(
        f"unknown aggregator kind {kind!r}; "
        f"choose from {', '.join(_AGGREGATOR_KINDS)}"
    )


def aggregate_tables(aggregators: Sequence[Aggregator]) -> dict[str, list[dict]]:
    """Rendered aggregate tables, keyed by aggregator kind.

    Duplicate kinds (two scalar reducers with different grouping) get a
    positional suffix so no table is silently dropped. Shared by
    :class:`~repro.sweep.runner.SweepResult` and the distributed
    merger, so completion exports key tables identically everywhere.
    """
    tables: dict[str, list[dict]] = {}
    for i, agg in enumerate(aggregators):
        key = agg.kind if agg.kind not in tables else f"{agg.kind}_{i}"
        tables[key] = agg.rows()
    return tables


def default_aggregators() -> list[Aggregator]:
    """The standard reduction set: per-label scalars, the cell map,
    the peak-temperature distribution sketches, Welford mean/variance
    moments, and a data-driven energy histogram (energy scales with
    duration and layer count, so its range must come from the campaign
    itself)."""
    return [
        ScalarAggregator(),
        CellAggregator(),
        HistogramAggregator(),
        QuantileAggregator(),
        MomentsAggregator(),
        HistogramAggregator(metric="total_energy_j", lo=None, hi=None),
    ]
