"""Declarative sweeps: lazy axis expansion, streaming aggregation,
checkpoint/resume.

The layer the paper's evaluation actually is — figs 6-8, Table II, the
four-layer study are all parameter sweeps over policies, workloads, and
stack geometries. :class:`SweepSpec` declares such a campaign over any
:class:`~repro.sim.config.SimulationConfig` field;
:class:`SweepRunner` executes it through
:class:`repro.runner.BatchRunner` process fan-out, folds results into
incremental :class:`Aggregator`\\ s at O(aggregate) memory, and
journals progress to a checkpoint so interrupted campaigns resume
bit-identically. See :mod:`repro.sweep.runner` for the checkpoint
format and :mod:`repro.io.sweep` for the streaming exporters.
"""

from repro.sweep.aggregate import (
    DEFAULT_METRICS,
    METRICS,
    Aggregator,
    CellAggregator,
    HistogramAggregator,
    MomentsAggregator,
    P2Quantile,
    QuantileAggregator,
    RunningStats,
    ScalarAggregator,
    WelfordMoments,
    aggregate_tables,
    aggregator_from_spec,
    default_aggregators,
    group_key,
)
from repro.sweep.runner import (
    SweepResult,
    SweepRunner,
    SweepStatus,
    read_status,
)
from repro.sweep.spec import SweepPoint, SweepSpec, config_signature, point_key

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "SweepRunner",
    "SweepResult",
    "SweepStatus",
    "read_status",
    "Aggregator",
    "ScalarAggregator",
    "CellAggregator",
    "HistogramAggregator",
    "QuantileAggregator",
    "MomentsAggregator",
    "P2Quantile",
    "RunningStats",
    "WelfordMoments",
    "METRICS",
    "DEFAULT_METRICS",
    "aggregate_tables",
    "aggregator_from_spec",
    "default_aggregators",
    "group_key",
    "config_signature",
    "point_key",
]
