"""Checkpointed streaming execution of a :class:`~repro.sweep.spec.SweepSpec`.

:class:`SweepRunner` expands the spec lazily, fans the configs out
through :meth:`repro.runner.BatchRunner.iter_runs`, and folds each
completed :class:`~repro.sim.results.SimulationResult` — strictly in
run-index order — into incremental aggregators, the export row stream,
and an on-disk journal. Memory stays O(aggregate + in-flight results),
never O(runs).

Checkpoint format (JSON lines, append-only)
-------------------------------------------

::

    {"kind": "header", "format": "repro-sweep-checkpoint", "version": 1,
     "name": ..., "fingerprint": ..., "n_runs": N, "aggregators": [...]}
    {"kind": "run", "index": 0, "key": ..., "row": {...}, "elapsed_s": ...}
    {"kind": "snapshot", "folded": 1, "state": {"scalar": ..., "cells": ...}}
    {"kind": "run", "index": 1, ...}
    ...

Each folded run appends a ``run`` line (its deterministic export row)
and, every ``snapshot_every`` folds, a ``snapshot`` line with the full
aggregator state. Because folding is strictly in index order, the last
snapshot's ``folded`` count fully identifies what is done: a resume
restores aggregators from it, replays the journaled rows before it,
and re-runs everything after it. Run lines past the last snapshot and
torn trailing lines (a kill mid-append) are discarded — at most
``snapshot_every`` runs are ever recomputed. Aggregator state
round-trips through JSON losslessly and folds replay in the same
order, so a resumed sweep's aggregates and exports are *bit-identical*
to an uninterrupted run.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.io.jsonl import JsonlAppender, json_line, read_jsonl
from repro.io.sweep import (
    SweepCsvWriter,
    atomic_write_text,
    save_sweep_json,
    sweep_row,
)
from repro.runner.batch import BatchRunner
from repro.sim.results import SimulationResult
from repro.sweep.aggregate import (
    Aggregator,
    aggregate_tables,
    aggregator_from_spec,
    default_aggregators,
)
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.telemetry import trace as _trace

_CHECKPOINT_FORMAT = "repro-sweep-checkpoint"
_CHECKPOINT_VERSION = 1


class FoldReducer:
    """Worker-side reduction of a run to its row + fold payloads.

    Handed to :meth:`repro.runner.BatchRunner.iter_reduced` so a
    parallel sweep ships each run's deterministic export row and
    per-aggregator fold payloads (kilobytes) across the pool boundary
    instead of full time-series arrays. Folding stays byte-identical:
    ``Aggregator.update()`` is defined as
    ``update_payload(fold_payload(...))`` and ``fold_payload`` is
    state-independent, so extracting worker-side and applying
    parent-side in run order performs the same float operations in the
    same order as the full-result path. Aggregator instances are
    rebuilt from their specs lazily per process (pickling ships only
    the specs).
    """

    def __init__(self, aggregator_specs: Sequence[dict]) -> None:
        self.aggregator_specs = list(aggregator_specs)
        self._aggregators: Optional[list[Aggregator]] = None

    def __getstate__(self) -> dict:
        return {"aggregator_specs": self.aggregator_specs}

    def __setstate__(self, state: dict) -> None:
        self.aggregator_specs = state["aggregator_specs"]
        self._aggregators = None

    def __call__(self, tag, config, result) -> dict:
        index, key = tag
        if self._aggregators is None:
            self._aggregators = [
                aggregator_from_spec(s) for s in self.aggregator_specs
            ]
        return {
            "row": sweep_row(index, key, config, result),
            "agg": {
                str(i): agg.fold_payload(config, result)
                for i, agg in enumerate(self._aggregators)
            },
        }


def _spec_rebuildable(aggregators: Sequence[Aggregator]) -> bool:
    """Whether every reducer round-trips through its spec — the
    precondition for payload-only transport (a custom
    :class:`Aggregator` subclass the factory doesn't know must keep
    receiving full results)."""
    try:
        return all(
            type(aggregator_from_spec(agg.spec())) is type(agg)
            for agg in aggregators
        )
    except Exception:
        return False


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` session.

    Attributes
    ----------
    name:
        The spec's label.
    fingerprint:
        The spec's :meth:`~repro.sweep.spec.SweepSpec.fingerprint`.
    n_runs:
        Total runs the spec expands to.
    folded:
        Runs folded so far (== ``n_runs`` when complete).
    resumed:
        Runs restored from the checkpoint rather than executed now.
    rows:
        The deterministic export rows, in run order (summaries only —
        full time series are never retained).
    aggregators:
        The reducers, updated through run ``folded - 1``.
    wall_time:
        Wall-clock seconds of this session (excludes resumed work).
    """

    name: str
    fingerprint: str
    n_runs: int
    folded: int
    resumed: int
    rows: list[dict]
    aggregators: list[Aggregator]
    wall_time: float = 0.0

    @property
    def complete(self) -> bool:
        """Whether every run of the spec has been folded."""
        return self.folded >= self.n_runs

    def aggregate_rows(self) -> dict[str, list[dict]]:
        """Rendered aggregate tables, keyed by aggregator kind
        (:func:`repro.sweep.aggregate.aggregate_tables` — shared with
        the distributed merger so exports key tables identically)."""
        return aggregate_tables(self.aggregators)

    def save_json(self, path: Union[str, Path]) -> None:
        """Write the complete export (:func:`repro.io.sweep.save_sweep_json`)."""
        save_sweep_json(
            self.rows,
            self.aggregate_rows(),
            path,
            name=self.name,
            fingerprint=self.fingerprint,
        )


@dataclass
class SweepStatus:
    """What a checkpoint journal says about a sweep's progress."""

    name: str
    fingerprint: str
    n_runs: int
    folded: int
    journaled: int
    elapsed_s: float
    last_key: str = ""

    @property
    def remaining(self) -> int:
        return max(self.n_runs - self.folded, 0)

    @property
    def pct(self) -> float:
        return 100.0 * self.folded / self.n_runs if self.n_runs else 0.0


@dataclass
class _Journal:
    """A parsed checkpoint: consistent prefix + restored reducer state."""

    header: dict
    rows: list[dict] = field(default_factory=list)  # rows[i] is run i
    elapsed: list[float] = field(default_factory=list)
    folded: int = 0
    agg_state: Optional[dict] = None
    journaled: int = 0
    last_key: str = ""


def _parse_journal(path: Path) -> _Journal:
    """Read a checkpoint, tolerating a torn trailing line.

    Returns the journal truncated to its last consistent snapshot:
    ``rows``/``elapsed`` hold runs ``0..folded-1`` and ``agg_state`` is
    the matching aggregator snapshot. A torn trailing line (a kill
    mid-append) is detected by :func:`repro.io.jsonl.read_jsonl` and
    simply discarded — the resume rewrite truncates it from disk too.
    """
    document = read_jsonl(path)
    if not document.entries:
        if document.torn:
            raise ConfigurationError(
                f"checkpoint {path} has no parseable header line"
            )
        raise ConfigurationError(f"checkpoint {path} is empty")
    header = document.entries[0]
    if (
        header.get("kind") != "header"
        or header.get("format") != _CHECKPOINT_FORMAT
    ):
        raise ConfigurationError(f"{path} is not a repro sweep checkpoint")
    if header.get("version") != _CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint version {header.get('version')!r}"
        )
    journal = _Journal(header=header)
    pending_rows: dict[int, dict] = {}
    pending_elapsed: dict[int, float] = {}
    snapshots = 0
    for entry in document.entries[1:]:
        kind = entry.get("kind")
        if kind == "run":
            index = int(entry["index"])
            pending_rows[index] = entry["row"]
            pending_elapsed[index] = float(entry.get("elapsed_s", 0.0))
            journal.journaled += 1
            journal.last_key = str(entry.get("key", ""))
        elif kind == "snapshot":
            folded = int(entry["folded"])
            missing = [
                i for i in range(journal.folded, folded) if i not in pending_rows
            ]
            if missing:
                raise ConfigurationError(
                    f"checkpoint {path} snapshot covers run(s) "
                    f"{missing[:3]}... with no journaled row"
                )
            journal.rows.extend(pending_rows.pop(i) for i in range(journal.folded, folded))
            journal.elapsed.extend(
                pending_elapsed.pop(i) for i in range(journal.folded, folded)
            )
            journal.folded = folded
            journal.agg_state = entry["state"]
            snapshots += 1
    if journal.folded and journal.agg_state is None:  # pragma: no cover
        raise ConfigurationError(f"checkpoint {path} has runs but no snapshot")
    return journal


def _journal_line(payload: dict) -> str:
    return json_line(payload)


def read_status(path: Union[str, Path]) -> SweepStatus:
    """Summarize a checkpoint's progress without touching the spec."""
    journal = _parse_journal(Path(path))
    return SweepStatus(
        name=str(journal.header.get("name", "")),
        fingerprint=str(journal.header.get("fingerprint", "")),
        n_runs=int(journal.header.get("n_runs", 0)),
        folded=journal.folded,
        journaled=journal.journaled,
        elapsed_s=float(sum(journal.elapsed)),
        last_key=journal.last_key,
    )


class SweepRunner:
    """Runs a sweep spec with streaming aggregation and checkpointing.

    Parameters
    ----------
    spec:
        The declarative sweep to execute.
    aggregators:
        Streaming reducers fed in run order; defaults to
        :func:`repro.sweep.aggregate.default_aggregators`. Pass ``()``
        to aggregate nothing (e.g. when only ``on_result`` is wanted).
    max_workers:
        Process fan-out, as for :class:`repro.runner.BatchRunner`
        (``None``/1 = serial; results are identical either way).
    checkpoint:
        Path of the journal file. ``None`` disables checkpointing.
    snapshot_every:
        Folds between aggregator snapshots (1 = after every run; a
        crash recomputes at most this many runs).
    csv_path:
        When set, export rows stream to this CSV as they fold (the
        file is valid after every row; a resume rewrites the journaled
        prefix first, so the finished file is byte-identical to an
        uninterrupted run's).
    on_result:
        Callback ``(point, result)`` invoked per fold, in run order —
        the streaming hook for callers that need the full result
        (memoizing experiment layers, plotters). The runner itself
        drops the result right after.
    progress:
        Callback ``(folded, n_runs, point, elapsed_s)`` per fold, for
        CLI progress reporting.
    stop_after:
        Fold at most this many runs *this session*, then checkpoint
        and return (time-budgeted campaigns; also how tests emulate an
        interruption deterministically).
    chunk_size:
        Points expanded and submitted to the pool per execution chunk.
        Bounds resident state at O(chunk) configs/futures however many
        runs remain (the lazily-expanded spec is pulled chunk by
        chunk), while staying large enough to amortize pool start-up
        across a chunk. The default (256) never changes results — only
        the memory/latency trade.
    cohort:
        Thermal-cohort grouping, forwarded to
        :class:`repro.runner.BatchRunner`. The default ``"auto"``
        groups each chunk's runs by shared thermal kernel and executes
        cohorts in exact mode — byte-identical to ``"off"`` (the
        historical per-run path) but skipping redundant steady
        initializations and factorizations. ``"block"`` additionally
        batches same-setting solves into multi-RHS calls; fastest, but
        LU-roundoff-equivalent rather than byte-identical, so leave it
        off for checkpointed campaigns whose resumes must replay
        bit-exactly.
    """

    #: Default execution chunk: large enough that per-chunk pool
    #: start-up (~0.1-0.5 s) is noise against >= tens of seconds of
    #: simulation, small enough to bound resident configs/futures.
    DEFAULT_CHUNK_SIZE = 256

    def __init__(
        self,
        spec: SweepSpec,
        aggregators: Optional[Sequence[Aggregator]] = None,
        max_workers: Optional[int] = None,
        checkpoint: Optional[Union[str, Path]] = None,
        snapshot_every: int = 1,
        csv_path: Optional[Union[str, Path]] = None,
        on_result: Optional[Callable[[SweepPoint, SimulationResult], None]] = None,
        progress: Optional[Callable[[int, int, SweepPoint, float], None]] = None,
        stop_after: Optional[int] = None,
        chunk_size: Optional[int] = None,
        cohort: str = "auto",
    ) -> None:
        if snapshot_every < 1:
            raise ConfigurationError("snapshot_every must be >= 1")
        if stop_after is not None and stop_after < 1:
            raise ConfigurationError("stop_after must be >= 1")
        if chunk_size is None:
            chunk_size = self.DEFAULT_CHUNK_SIZE
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.spec = spec
        self.aggregators = (
            default_aggregators() if aggregators is None else list(aggregators)
        )
        self.max_workers = max_workers
        self.checkpoint = None if checkpoint is None else Path(checkpoint)
        self.snapshot_every = snapshot_every
        self.csv_path = None if csv_path is None else Path(csv_path)
        self.on_result = on_result
        self.progress = progress
        self.stop_after = stop_after
        self.cohort = cohort

    # --- checkpoint plumbing ----------------------------------------------

    def _header_payload(self) -> dict:
        return {
            "kind": "header",
            "format": _CHECKPOINT_FORMAT,
            "version": _CHECKPOINT_VERSION,
            "name": self.spec.name,
            "fingerprint": self.spec.fingerprint(),
            "n_runs": self.spec.run_count,
            "aggregators": [agg.spec() for agg in self.aggregators],
        }

    def _load_checkpoint(self) -> _Journal:
        journal = _parse_journal(self.checkpoint)
        fingerprint = self.spec.fingerprint()
        if journal.header.get("fingerprint") != fingerprint:
            raise ConfigurationError(
                f"checkpoint {self.checkpoint} belongs to a different sweep "
                f"(fingerprint {journal.header.get('fingerprint', '?')[:12]}... "
                f"vs this spec's {fingerprint[:12]}...)"
            )
        # Restore the reducers exactly as the journal ran them. When the
        # caller supplies aggregators whose specs match the header,
        # their instances are kept (this is what lets a custom
        # :class:`Aggregator` subclass resume — the factory only knows
        # built-in kinds); otherwise the set is rebuilt from the header
        # so the journaled state always lands in matching reducers.
        # Snapshot state is keyed by position, so two reducers of the
        # same kind restore independently.
        header_specs = journal.header.get("aggregators", [])
        if [agg.spec() for agg in self.aggregators] != header_specs:
            self.aggregators = [aggregator_from_spec(s) for s in header_specs]
        if journal.agg_state is not None:
            for i, agg in enumerate(self.aggregators):
                state = journal.agg_state.get(str(i))
                if state is not None:
                    agg.load_state(state)
        return journal

    def _snapshot_state(self) -> dict:
        return {str(i): agg.state_dict() for i, agg in enumerate(self.aggregators)}

    def _rewrite_consistent_prefix(self, journal: _Journal) -> None:
        """Truncate the journal to its last snapshot before appending.

        Drops torn trailing lines and folded-but-unsnapshotted run
        lines, so the append-only invariant (every line before the
        cursor is live) holds again.
        """
        lines = [_journal_line(journal.header)]
        for i in range(journal.folded):
            lines.append(
                _journal_line(
                    {
                        "kind": "run",
                        "index": i,
                        "key": journal.rows[i].get("key", ""),
                        "row": journal.rows[i],
                        "elapsed_s": journal.elapsed[i],
                    }
                )
            )
        if journal.folded:
            lines.append(
                _journal_line(
                    {
                        "kind": "snapshot",
                        "folded": journal.folded,
                        "state": self._snapshot_state(),
                    }
                )
            )
        atomic_write_text(self.checkpoint, "\n".join(lines) + "\n")

    # --- execution ---------------------------------------------------------

    def run(self, resume: bool = False) -> SweepResult:
        """Execute (or continue) the sweep; see the class docstring.

        With ``resume=True`` and an existing matching checkpoint, folded
        runs are restored and only the remainder executes. Without
        ``resume``, an existing checkpoint is an error — refuse to
        silently clobber hours of finished work.
        """
        start = time.perf_counter()
        # Catch jointly-invalid axis values across the whole expansion
        # up front — never hours into a campaign.
        self.spec.validate_all()
        journal: Optional[_Journal] = None
        if self.checkpoint is not None and self.checkpoint.exists():
            if not resume:
                raise ConfigurationError(
                    f"checkpoint {self.checkpoint} already exists; resume it "
                    "or delete the file to start over"
                )
            journal = self._load_checkpoint()
        folded = journal.folded if journal is not None else 0
        rows: list[dict] = list(journal.rows) if journal is not None else []
        resumed = folded

        appender = None
        csv_writer = (
            SweepCsvWriter(self.csv_path, prefix_rows=rows)
            if self.csv_path is not None
            else None
        )
        try:
            if self.checkpoint is not None:
                if journal is not None:
                    self._rewrite_consistent_prefix(journal)
                else:
                    self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
                    atomic_write_text(
                        self.checkpoint,
                        _journal_line(self._header_payload()) + "\n",
                    )
                appender = JsonlAppender(self.checkpoint)

            remaining_count = self.spec.run_count - folded
            session_count = (
                remaining_count
                if self.stop_after is None
                else min(self.stop_after, remaining_count)
            )
            session_end = folded + session_count
            session_start = folded  # `folded` mutates in the loop below;
            # the lazy filter must compare against the session's start.
            # Pull the lazy expansion in bounded chunks: resident state
            # is O(chunk_size) points/configs/futures however many runs
            # remain, so a million-run campaign holds megabytes, not the
            # whole expansion.
            points_iter = itertools.islice(
                (
                    point
                    for point in self.spec.iter_points()
                    if point.index >= session_start
                ),
                session_count,
            )
            # Payload-only transport: when nobody downstream needs the
            # full result (no on_result) and every reducer round-trips
            # through its spec, runs collapse to row + fold payloads in
            # the worker — byte-identical folds, kilobytes of pickling.
            reduced = self.on_result is None and _spec_rebuildable(
                self.aggregators
            )
            while True:
                chunk = list(itertools.islice(points_iter, self.chunk_size))
                if not chunk:
                    break
                batch = BatchRunner(
                    [point.config for point in chunk],
                    max_workers=self.max_workers,
                    cohort=self.cohort,
                )
                if reduced:
                    stream = batch.iter_reduced(
                        FoldReducer([agg.spec() for agg in self.aggregators]),
                        tags=[(point.index, point.key) for point in chunk],
                    )
                else:
                    stream = batch.iter_runs()
                # closing() makes pool shutdown (and the serial path's
                # default-cache restore) deterministic if a fold raises.
                with contextlib.closing(stream) as batch_runs:
                    for point, run in zip(chunk, batch_runs):
                        with _trace.span("fold", index=point.index):
                            if reduced:
                                row = run.payload["row"]
                                for i, agg in enumerate(self.aggregators):
                                    agg.update_payload(run.payload["agg"][str(i)])
                            else:
                                row = sweep_row(
                                    point.index, point.key, point.config, run.result
                                )
                                for agg in self.aggregators:
                                    agg.update(point.config, run.result)
                        rows.append(row)
                        folded += 1
                        if appender is not None:
                            records = [
                                {
                                    "kind": "run",
                                    "index": point.index,
                                    "key": point.key,
                                    "row": row,
                                    "elapsed_s": run.elapsed,
                                }
                            ]
                            # Snapshot on cadence AND at the session end:
                            # a deliberate stop_after exit knows it is
                            # stopping, so it must not pay the
                            # crash-recovery cost of re-running up to
                            # snapshot_every-1 folds on resume.
                            if (
                                (folded - resumed) % self.snapshot_every == 0
                                or folded == session_end
                            ):
                                records.append(
                                    {
                                        "kind": "snapshot",
                                        "folded": folded,
                                        "state": self._snapshot_state(),
                                    }
                                )
                            # One flush+fsync'd write per fold: a kill
                            # can tear at most the trailing line, which
                            # resume detects and truncates.
                            appender.append(*records)
                        if csv_writer is not None:
                            csv_writer.write(row)
                        if self.on_result is not None:
                            self.on_result(point, run.result)
                        if self.progress is not None:
                            self.progress(
                                folded, self.spec.run_count, point, run.elapsed
                            )
        finally:
            if appender is not None:
                appender.close()
            if csv_writer is not None:
                csv_writer.finish()
                csv_writer.close()
        return SweepResult(
            name=self.spec.name,
            fingerprint=self.spec.fingerprint(),
            n_runs=self.spec.run_count,
            folded=folded,
            resumed=resumed,
            rows=rows,
            aggregators=self.aggregators,
            wall_time=time.perf_counter() - start,
        )
