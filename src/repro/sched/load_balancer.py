"""Dynamic load balancing (the paper's LB baseline).

"Dynamic Load Balancing (LB) balances the workload by moving threads
from a core's queue to another if the difference in queue lengths is
over a threshold. LB does not have any thermal management features."
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SchedulingError
from repro.registry import ParamSpec, PolicyContext, register_policy
from repro.sched.base import CoreQueues


class LoadBalancer:
    """Thermally blind queue-length balancing.

    Parameters
    ----------
    threshold:
        Maximum tolerated difference between the longest and shortest
        queue before threads are moved (paper's "threshold"; 1 thread).
    max_moves:
        Safety bound on moves per invocation.
    """

    name = "LB"
    migration_count = 0  # Never migrates a running thread.

    def __init__(self, threshold: int = 1, max_moves: int = 1000) -> None:
        if threshold < 1:
            raise SchedulingError("threshold must be >= 1")
        self.threshold = threshold
        self.max_moves = max_moves

    def dispatch_target(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
    ) -> str:
        """Core that should receive a newly arrived thread."""
        return queues.shortest()

    def rebalance(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
        now: float,
    ) -> None:
        """Move tail threads from the longest to the shortest queue."""
        for _ in range(self.max_moves):
            longest = queues.longest()
            shortest = queues.shortest()
            lengths = queues.lengths()
            if lengths[longest] - lengths[shortest] <= self.threshold:
                return
            if queues.move_waiting(longest, shortest, 1) == 0:
                return


@register_policy(
    "LB",
    aliases=("lb", "load-balancer"),
    description="Dynamic load balancing on queue lengths (thermally blind)",
    params=(
        ParamSpec("threshold", "int", default=1, minimum=1,
                  doc="max tolerated queue-length spread before moving threads"),
        ParamSpec("max_moves", "int", default=1000, minimum=1,
                  doc="safety bound on moves per rebalance"),
    ),
)
def _build_load_balancer(ctx: PolicyContext, **params) -> LoadBalancer:
    return LoadBalancer(**params)
