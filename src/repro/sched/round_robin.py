"""Round-robin dispatch — the registry's thermally- and load-blind floor.

Not in the paper's comparison set: the paper's weakest baseline (LB)
still balances queue lengths. Round-robin dispatches arrivals cyclically
over the cores and never rebalances, so it bounds the comparison from
below — any policy that loses to RR on a metric is doing actual harm.
It exists here as the first policy addressable *only* through the
component registry (no legacy enum member), proving new scenarios ride
in without touching the engine.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SchedulingError
from repro.registry import ParamSpec, PolicyContext, register_policy
from repro.sched.base import CoreQueues


class RoundRobinPolicy:
    """Cyclic dispatch over the cores, no rebalancing.

    Parameters
    ----------
    start_index:
        Core index (construction order) that receives the first thread.
    """

    name = "RR"
    migration_count = 0  # Never moves a thread after dispatch.

    def __init__(self, start_index: int = 0) -> None:
        if start_index < 0:
            raise SchedulingError("start_index must be >= 0")
        self._next = start_index

    def dispatch_target(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
    ) -> str:
        """The next core in cyclic order, regardless of load or heat."""
        names = queues.core_names
        target = names[self._next % len(names)]
        self._next += 1
        return target

    def rebalance(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
        now: float,
    ) -> None:
        """Round-robin never redistributes queued threads."""


@register_policy(
    "RR",
    aliases=("rr", "round-robin", "round_robin"),
    description="Cyclic dispatch, no rebalancing (registry-only baseline)",
    params=(
        ParamSpec("start_index", "int", default=0, minimum=0,
                  doc="core index receiving the first thread"),
    ),
)
def _build_round_robin(ctx: PolicyContext, **params) -> RoundRobinPolicy:
    return RoundRobinPolicy(**params)
