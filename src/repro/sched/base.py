"""Per-core dispatch queues and the scheduler policy interface."""

from __future__ import annotations

from collections import deque
from typing import Mapping, Protocol

from repro.errors import SchedulingError
from repro.workload.threads import Thread


class CoreQueues:
    """Per-core FIFO dispatch queues.

    The head of each queue is the thread currently running on that
    core. Rebalancing policies move threads *from the tail* (waiting
    threads) unless they explicitly migrate the running head (the
    reactive migration policy).
    """

    def __init__(self, core_names: list[str]) -> None:
        if not core_names:
            raise SchedulingError("need at least one core")
        if len(set(core_names)) != len(core_names):
            raise SchedulingError("duplicate core names")
        self._queues: dict[str, deque[Thread]] = {name: deque() for name in core_names}

    @property
    def core_names(self) -> list[str]:
        """All core names, in construction order."""
        return list(self._queues)

    def queue(self, core: str) -> deque[Thread]:
        """The dispatch queue of one core."""
        try:
            return self._queues[core]
        except KeyError:
            raise SchedulingError(f"unknown core {core!r}")

    def enqueue(self, core: str, thread: Thread) -> None:
        """Append a thread to a core's queue."""
        self.queue(core).append(thread)

    def lengths(self) -> dict[str, int]:
        """Queue length (threads, including the running head) per core."""
        return {name: len(q) for name, q in self._queues.items()}

    def total_threads(self) -> int:
        """Total queued threads across all cores."""
        return sum(len(q) for q in self._queues.values())

    def shortest(self) -> str:
        """Core with the fewest queued threads (ties: construction order)."""
        return min(self._queues, key=lambda name: len(self._queues[name]))

    def longest(self) -> str:
        """Core with the most queued threads (ties: construction order)."""
        return max(self._queues, key=lambda name: len(self._queues[name]))

    def move_waiting(self, src: str, dst: str, count: int = 1) -> int:
        """Move up to ``count`` waiting (tail) threads from src to dst.

        Never moves the running head. Returns the number moved.
        """
        if src == dst:
            return 0
        src_q = self.queue(src)
        dst_q = self.queue(dst)
        moved = 0
        while moved < count and len(src_q) > 1:
            dst_q.append(src_q.pop())
            moved += 1
        return moved

    def migrate_running(self, src: str, dst: str, penalty: float = 0.0) -> bool:
        """Move the running head of ``src`` to ``dst`` (a migration).

        Returns False when src has nothing running. The thread's
        migration counter is incremented and ``penalty`` seconds of
        extra work (cold caches, pipeline refill) are charged to it —
        this is why the paper sees reduced throughput under frequent
        temperature-triggered migrations.
        """
        if src == dst:
            return False
        if penalty < 0.0:
            raise SchedulingError("migration penalty must be non-negative")
        src_q = self.queue(src)
        if not src_q:
            return False
        thread = src_q.popleft()
        thread.migrations += 1
        thread.remaining += penalty
        self.queue(dst).append(thread)
        return True


class SchedulerPolicy(Protocol):
    """A scheduling policy invoked at dispatch and once per interval.

    The engine talks to policies purely through this protocol — there
    is no ``isinstance`` dispatch. ``migration_count`` is the declared
    capability that replaced the engine's old ``ReactiveMigration``
    special case: policies that never migrate a running thread simply
    expose a constant ``0`` (a class attribute suffices).

    Policies are registered by key via
    :func:`repro.registry.register_policy`; see ``repro list policies``
    and the README's "Extending repro" section.
    """

    name: str
    #: Running threads moved between cores so far (0 for policies that
    #: never migrate; the engine records this series every interval).
    migration_count: int

    def dispatch_target(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
    ) -> str:
        """Core that should receive a newly arrived thread."""
        ...

    def rebalance(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
        now: float,
    ) -> None:
        """Redistribute queued threads given current temperatures."""
        ...
