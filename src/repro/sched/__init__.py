"""Multi-queue scheduler substrate and the paper's policies.

Modern OSes dispatch threads to per-core queues; the paper implements
"a similar infrastructure, where the queues maintain the threads
allocated to cores and execute them". Policies:

* :class:`LoadBalancer` — dynamic load balancing (LB), thermally blind;
* :class:`ReactiveMigration` — LB plus temperature-triggered migration
  of the running thread away from cores above 85 degC;
* :class:`WeightedLoadBalancer` (TALB) — the paper's contribution:
  queue lengths weighted by per-core thermal weights (Eq. 8);
* :class:`RoundRobinPolicy` — cyclic dispatch, the registry-only
  baseline below LB.

Each policy registers itself in :func:`repro.registry.policy_registry`
at import time; importing this package is what makes the built-in keys
(``LB``, ``Mig``, ``TALB``, ``RR``) resolvable.
"""

from repro.sched.base import CoreQueues, SchedulerPolicy
from repro.sched.load_balancer import LoadBalancer
from repro.sched.migration import ReactiveMigration
from repro.sched.round_robin import RoundRobinPolicy
from repro.sched.talb import WeightedLoadBalancer
from repro.sched.weights import ThermalWeights

__all__ = [
    "CoreQueues",
    "SchedulerPolicy",
    "LoadBalancer",
    "ReactiveMigration",
    "RoundRobinPolicy",
    "WeightedLoadBalancer",
    "ThermalWeights",
]
