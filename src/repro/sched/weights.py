"""Thermal weight factors for the weighted load balancer (Eq. 8).

The paper: "consider a 4-core system, where the average power values
for the cores to achieve a balanced 75 degC are p1..p4 ... we take the
multiplicative inverse of the power values, normalize them, and use
them as thermal weight factors", with "the weight factors for all the
cores ... computed in a pre-processing step and stored in the look-up
table", as a function of the current maximum temperature range.

We compute the balanced power vector directly from the thermal model:
with the reduced core-to-core thermal resistance matrix A (A[i][j] =
temperature rise of core i per watt on core j) and baseline offsets t0
(temperatures at zero power), the powers achieving a uniform target
temperature solve ``A p = T_target - t0``. Cores with small balanced
power (poorly cooled locations — e.g. tiers far from a cavity, cells
above other hot units) get large weights and therefore fewer threads.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import SchedulingError
from repro.thermal.rc_network import RCNetwork
from repro.thermal.solver import steady_solver_for


class ThermalWeights:
    """Pre-processed per-core thermal weights for one cooling condition.

    Parameters
    ----------
    weights:
        Mapping core name -> weight, normalized to mean 1. A weight
        above 1 marks a thermally disadvantaged core.
    """

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise SchedulingError("weights cannot be empty")
        if any(w <= 0.0 for w in weights.values()):
            raise SchedulingError("weights must be positive")
        mean = sum(weights.values()) / len(weights)
        self._weights = {name: w / mean for name, w in weights.items()}

    def __getitem__(self, core: str) -> float:
        try:
            return self._weights[core]
        except KeyError:
            raise SchedulingError(f"no weight for core {core!r}")

    def as_dict(self) -> dict[str, float]:
        """All weights (normalized to mean 1)."""
        return dict(self._weights)

    @classmethod
    def uniform(cls, core_names: list[str]) -> "ThermalWeights":
        """Weights of 1 for every core (degenerates TALB to plain LB)."""
        return cls({name: 1.0 for name in core_names})

    @classmethod
    def from_network(
        cls,
        network: RCNetwork,
        target_temperature: float = 75.0,
        background_power: float = 0.0,
    ) -> "ThermalWeights":
        """Derive weights from a thermal network (pre-processing step).

        Parameters
        ----------
        network:
            The assembled RC network for the cooling condition (one per
            pump setting, or the air network).
        target_temperature:
            The balanced temperature the power vector should achieve
            (paper's example: 75 degC).
        background_power:
            Power (W) placed uniformly on every non-core unit while
            probing, so crossbar/L2 heating is reflected in the offsets.
        """
        grid = network.grid
        core_keys = list(grid.core_keys)
        if not core_keys:
            raise SchedulingError("stack has no cores")

        # Networks are cached per pump setting upstream; the solver memo
        # reuses one LU factorization across repeated derivations (e.g.
        # weight-target sweeps over the same network).
        solver = steady_solver_for(network)
        base_units = np.zeros(grid.n_units)
        if background_power > 0.0:
            non_core = np.setdiff1d(
                np.arange(grid.n_units), grid.core_index, assume_unique=False
            )
            base_units[non_core] = background_power
        t_base = solver.solve(grid.power_vector_from_array(base_units))
        t0 = grid.unit_temperature_vector(t_base)[grid.core_index]

        # One multi-RHS solve covers every per-core probe injection.
        n = len(core_keys)
        probe_watts = 1.0
        probes = np.empty((grid.n_nodes, n))
        for j, core_position in enumerate(grid.core_index):
            probe = base_units.copy()
            probe[core_position] += probe_watts
            probes[:, j] = grid.power_vector_from_array(probe)
        temps = solver.solve_many(probes)
        core_responses = np.column_stack(
            [
                grid.unit_temperature_vector(temps[:, j])[grid.core_index]
                for j in range(n)
            ]
        )
        a = (core_responses - t0[:, None]) / probe_watts

        rhs = target_temperature - t0
        if np.any(rhs <= 0.0):
            # Target below the zero-power baseline: fall back to the
            # diagonal (self-heating) ranking, which is always positive.
            balanced = 1.0 / np.diag(a)
        else:
            balanced = np.linalg.solve(a, rhs)
            if np.any(balanced <= 0.0):
                # Strong coupling can push the exact solution negative;
                # clamp to the per-core budget ignoring cross terms.
                balanced = rhs / np.diag(a)
        weights = {
            name: 1.0 / p for (_, name), p in zip(core_keys, balanced)
        }
        return cls(weights)
