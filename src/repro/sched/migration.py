"""Reactive thread migration (the paper's "Mig." baseline).

"Reactive Migration initially performs load balancing, but upon
reaching a threshold temperature, which is set to 85 degC in this work,
it moves the currently running thread from the hot core to a cool
core." The migration's performance overhead is charged by the engine
per migration event (cold caches, pipeline refill), which is why the
paper observes reduced throughput "especially for high-utilization
workloads".
"""

from __future__ import annotations

from typing import Mapping

from repro.constants import CONTROL
from repro.errors import SchedulingError
from repro.registry import ParamSpec, PolicyContext, register_policy
from repro.sched.base import CoreQueues
from repro.sched.load_balancer import LoadBalancer


class ReactiveMigration:
    """Load balancing plus temperature-triggered migration.

    Parameters
    ----------
    threshold_temperature:
        Migration trigger, degC (paper: 85).
    balancer:
        The underlying load balancer.
    """

    name = "Mig"

    def __init__(
        self,
        threshold_temperature: float = CONTROL.hotspot_threshold,
        balancer: LoadBalancer | None = None,
        penalty: float = 0.01,
    ) -> None:
        if threshold_temperature <= 0.0:
            raise SchedulingError("threshold temperature must be positive")
        if penalty < 0.0:
            raise SchedulingError("penalty must be non-negative")
        self.threshold_temperature = threshold_temperature
        self.balancer = balancer or LoadBalancer()
        self.penalty = penalty
        self.migration_count = 0

    def dispatch_target(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
    ) -> str:
        """New threads go to the shortest queue (plain load balancing)."""
        return self.balancer.dispatch_target(queues, core_temperatures)

    def rebalance(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
        now: float,
    ) -> None:
        """Balance load, then evacuate running threads from hot cores."""
        self.balancer.rebalance(queues, core_temperatures, now)
        if not core_temperatures:
            return
        coolest = min(core_temperatures, key=core_temperatures.get)
        for core, temperature in core_temperatures.items():
            if temperature > self.threshold_temperature and core != coolest:
                if queues.migrate_running(core, coolest, penalty=self.penalty):
                    self.migration_count += 1


@register_policy(
    "Mig",
    aliases=("mig", "migration", "reactive-migration"),
    description="Load balancing plus reactive migration off cores above "
    "the 85 degC threshold",
    params=(
        ParamSpec("threshold_temperature", "float",
                  default=CONTROL.hotspot_threshold,
                  doc="migration trigger temperature, degC"),
        ParamSpec("penalty", "float", default=0.01, minimum=0.0,
                  doc="seconds of extra work charged per migration"),
    ),
)
def _build_migration(ctx: PolicyContext, **params) -> ReactiveMigration:
    return ReactiveMigration(**params)
