"""Temperature-aware weighted load balancing — TALB (Eq. 8).

The paper's scheduling contribution: keep the load balancer's
priority/performance features, but compute each core's queue length as

    l_weighted(i) = l_queue(i) * w_thermal(i, T(k))        (Eq. 8)

where the thermal weight depends on the current maximum temperature
range. Thermally disadvantaged cores appear "longer" than they are and
consequently receive fewer threads, balancing temperature instead of
raw thread count.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import SchedulingError
from repro.registry import ParamSpec, PolicyContext, register_policy
from repro.sched.base import CoreQueues
from repro.sched.weights import ThermalWeights

WeightProvider = Callable[[float], ThermalWeights]
"""Maps the current maximum temperature to the weight set to use
(the paper's pre-processed look-up table over temperature ranges)."""


class WeightedLoadBalancer:
    """TALB: load balancing on thermally weighted queue lengths.

    Parameters
    ----------
    weight_provider:
        Callable returning the :class:`ThermalWeights` for the current
        maximum temperature (the pre-processed LUT). A constant weight
        set can be wrapped with ``lambda tmax: weights``.
    tolerance:
        Rebalancing stops once the weighted spread is within this
        fraction of the mean weighted length.
    max_moves:
        Safety bound on moves per invocation.
    """

    name = "TALB"
    migration_count = 0  # Moves only waiting (tail) threads.

    def __init__(
        self,
        weight_provider: WeightProvider,
        tolerance: float = 0.5,
        max_moves: int = 1000,
    ) -> None:
        if tolerance <= 0.0:
            raise SchedulingError("tolerance must be positive")
        self.weight_provider = weight_provider
        self.tolerance = tolerance
        self.max_moves = max_moves

    def dispatch_target(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
    ) -> str:
        """New threads go to the core minimizing post-dispatch weighted
        queue length (Eq. 8 applied at dispatch time)."""
        tmax = max(core_temperatures.values()) if core_temperatures else 0.0
        weights = self.weight_provider(tmax)
        lengths = queues.lengths()
        return min(lengths, key=lambda core: (lengths[core] + 1) * weights[core])

    def rebalance(
        self,
        queues: CoreQueues,
        core_temperatures: Mapping[str, float],
        now: float,
    ) -> None:
        """Move waiting threads to equalize weighted queue lengths."""
        tmax = max(core_temperatures.values()) if core_temperatures else 0.0
        weights = self.weight_provider(tmax)

        for _ in range(self.max_moves):
            lengths = queues.lengths()
            weighted = {
                core: lengths[core] * weights[core] for core in lengths
            }
            donor = max(weighted, key=weighted.get)
            # The receiver minimizes the *post-move* weighted length, so
            # a low-weight (well-cooled) core with a short queue is
            # preferred over a high-weight empty core.
            receiver = min(
                weighted,
                key=lambda core: (lengths[core] + 1) * weights[core],
            )
            if donor == receiver:
                return
            post_receiver = (lengths[receiver] + 1) * weights[receiver]
            if post_receiver >= weighted[donor]:
                return  # Moving would not reduce the maximum.
            if queues.move_waiting(donor, receiver, 1) == 0:
                return


@register_policy(
    "TALB",
    aliases=("talb",),
    description="Temperature-aware weighted load balancing (Eq. 8, the "
    "paper's scheduling contribution)",
    params=(
        ParamSpec("tolerance", "float", default=0.5, doc="rebalance stops "
                  "once the weighted spread is within this fraction"),
        ParamSpec("max_moves", "int", default=1000, minimum=1,
                  doc="safety bound on moves per rebalance"),
    ),
    traits={"uses_thermal_weights": True},
)
def _build_talb(ctx: PolicyContext, **params) -> WeightedLoadBalancer:
    return WeightedLoadBalancer(weight_provider=ctx.weight_provider, **params)
