"""Simulation result containers and derived quantities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class SimulationResult:
    """Time series and counters produced by one simulation run.

    All per-interval arrays share the sampling grid ``times``; samples
    are taken at the *end* of each control interval.

    Attributes
    ----------
    times:
        Sample times, s.
    tmax:
        Maximum observable (sensor / unit-mean) temperature per
        interval, degC — what the controller and policies act on.
    tmax_cell:
        Maximum cell-level junction temperature per interval, degC —
        model ground truth, slightly above the sensor reading.
    core_temperatures:
        ``(n_intervals, n_cores)``, per-core sensor readings, degC.
    unit_temperatures:
        ``(n_intervals, n_units)``, per-floorplan-unit temperatures
        (for spatial gradients), degC.
    unit_names:
        Column labels of ``unit_temperatures`` (``die:unit``).
    core_names:
        Column labels of ``core_temperatures``.
    chip_power:
        Total chip power per interval, W.
    pump_power:
        Pump electrical power per interval, W (zero for air cooling).
    flow_setting:
        Commanded pump setting index per interval (-1 for air).
    completed_threads:
        Threads finished within each interval.
    forecast_tmax:
        The controller's predicted T_max per interval (NaN when no
        forecast was produced), degC.
    migrations:
        Cumulative migration count per interval.
    retrain_count:
        Total ARMA re-fits triggered by the SPRT.
    facility_inlet:
        Coolant inlet temperature the solve used per interval, degC —
        the closed loop's computed trajectory. ``None`` for
        fixed-inlet runs (``facility="none"``), as are the other
        facility series below.
    facility_cooling_power:
        Facility cooling power (chiller + tower fans + facility pumps)
        per interval at aggregate scale, W.
    facility_water_use:
        Cooling-tower make-up water per interval at aggregate scale,
        kg/s.
    facility_free_cooling:
        Whether the economizer bypassed the chiller, per interval.
    facility_scale:
        Chips aggregated behind the facility plant (``racks *
        chips_per_rack``; 1.0 without a facility). Chip-level series
        stay per-chip; PUE/WUE contrast them at equal scale.
    """

    times: np.ndarray
    tmax: np.ndarray
    tmax_cell: np.ndarray
    core_temperatures: np.ndarray
    unit_temperatures: np.ndarray
    unit_names: list[str]
    core_names: list[str]
    chip_power: np.ndarray
    pump_power: np.ndarray
    flow_setting: np.ndarray
    completed_threads: np.ndarray
    forecast_tmax: np.ndarray
    migrations: np.ndarray
    retrain_count: int = 0
    sojourn_sum: float = 0.0
    sojourn_count: int = 0
    facility_inlet: Optional[np.ndarray] = None
    facility_cooling_power: Optional[np.ndarray] = None
    facility_water_use: Optional[np.ndarray] = None
    facility_free_cooling: Optional[np.ndarray] = None
    facility_scale: float = 1.0

    def __post_init__(self) -> None:
        n = len(self.times)
        for name in (
            "tmax",
            "tmax_cell",
            "chip_power",
            "pump_power",
            "flow_setting",
            "completed_threads",
            "forecast_tmax",
            "migrations",
        ):
            if len(getattr(self, name)) != n:
                raise ConfigurationError(f"result field {name} length mismatch")
        if self.core_temperatures.shape[0] != n or self.unit_temperatures.shape[0] != n:
            raise ConfigurationError("temperature matrices length mismatch")
        for name in (
            "facility_inlet",
            "facility_cooling_power",
            "facility_water_use",
            "facility_free_cooling",
        ):
            series = getattr(self, name)
            if series is not None and len(series) != n:
                raise ConfigurationError(f"result field {name} length mismatch")

    @property
    def has_facility(self) -> bool:
        """Whether a facility loop was co-simulated with this run."""
        return self.facility_inlet is not None

    @property
    def interval(self) -> float:
        """Sampling interval, s."""
        if len(self.times) < 2:
            return 0.0
        return float(self.times[1] - self.times[0])

    @property
    def duration(self) -> float:
        """Covered simulation time, s."""
        return float(len(self.times) * self.interval)

    def chip_energy(self) -> float:
        """Chip energy over the run, J."""
        return float(self.chip_power.sum() * self.interval)

    def pump_energy(self) -> float:
        """Pump (cooling) energy over the run, J."""
        return float(self.pump_power.sum() * self.interval)

    def total_energy(self) -> float:
        """Chip + pump energy, J."""
        return self.chip_energy() + self.pump_energy()

    def throughput(self) -> float:
        """Threads completed per second."""
        if self.duration == 0.0:
            return 0.0
        return float(self.completed_threads.sum() / self.duration)

    def total_completed(self) -> int:
        """Total threads completed."""
        return int(self.completed_threads.sum())

    def time_above(self, threshold: float) -> float:
        """Fraction of samples with T_max above a threshold."""
        if len(self.tmax) == 0:
            return 0.0
        return float(np.mean(self.tmax > threshold))

    def peak_temperature(self) -> float:
        """Highest sampled T_max, degC."""
        return float(self.tmax.max()) if len(self.tmax) else float("nan")

    def mean_flow_setting(self) -> float:
        """Average commanded pump setting (liquid runs)."""
        valid = self.flow_setting[self.flow_setting >= 0]
        return float(valid.mean()) if len(valid) else float("nan")

    def cooling_energy(self) -> float:
        """Total cooling energy at facility aggregate scale, J.

        Facility plant energy (chiller + tower fans + facility pumps)
        plus the chip-level microchannel pumps replicated across the
        aggregated chips. NaN for fixed-inlet runs, where the plant is
        not modeled (``pump_energy()`` remains the chip-level figure).
        """
        if not self.has_facility:
            return float("nan")
        plant = float(self.facility_cooling_power.sum() * self.interval)
        return plant + self.facility_scale * self.pump_energy()

    def total_cooling_power(self) -> float:
        """Mean total cooling power at aggregate scale, W (NaN for
        fixed-inlet runs)."""
        if not self.has_facility or self.duration == 0.0:
            return float("nan")
        return self.cooling_energy() / self.duration

    def pue(self) -> float:
        """Power usage effectiveness: (IT + cooling) / IT energy.

        Uses the facility-aggregate balance — IT is the chip energy
        replicated across the aggregated chips — so the value is
        independent of the rack count. NaN for fixed-inlet runs.
        """
        it_energy = self.facility_scale * self.chip_energy()
        if not self.has_facility or it_energy <= 0.0:
            return float("nan")
        return 1.0 + self.cooling_energy() / it_energy

    def wue(self) -> float:
        """Water usage effectiveness: liters of make-up water per kWh
        of IT energy (the standard datacenter metric). NaN for
        fixed-inlet runs."""
        it_energy = self.facility_scale * self.chip_energy()
        if not self.has_facility or it_energy <= 0.0:
            return float("nan")
        # Water series is kg/s ~= L/s; kWh = 3.6e6 J.
        liters = float(self.facility_water_use.sum() * self.interval)
        return liters / (it_energy / 3.6e6)

    def mean_inlet_temperature(self) -> float:
        """Mean coolant inlet over the run, degC (NaN for fixed-inlet
        runs, where the inlet is the configured constant)."""
        if not self.has_facility or len(self.facility_inlet) == 0:
            return float("nan")
        return float(self.facility_inlet.mean())

    def free_cooling_fraction(self) -> float:
        """Fraction of intervals the economizer carried the load."""
        if not self.has_facility or len(self.facility_free_cooling) == 0:
            return float("nan")
        return float(np.mean(self.facility_free_cooling))

    def mean_sojourn_time(self) -> float:
        """Mean completed-thread sojourn (arrival to completion), s.

        The latency complement to throughput: queueing delay and
        migration penalties show up here long before they move the
        completion count ("long thread waiting times in the queues").
        """
        if self.sojourn_count == 0:
            return float("nan")
        return self.sojourn_sum / self.sojourn_count
