"""Simulation result containers and derived quantities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class SimulationResult:
    """Time series and counters produced by one simulation run.

    All per-interval arrays share the sampling grid ``times``; samples
    are taken at the *end* of each control interval.

    Attributes
    ----------
    times:
        Sample times, s.
    tmax:
        Maximum observable (sensor / unit-mean) temperature per
        interval, degC — what the controller and policies act on.
    tmax_cell:
        Maximum cell-level junction temperature per interval, degC —
        model ground truth, slightly above the sensor reading.
    core_temperatures:
        ``(n_intervals, n_cores)``, per-core sensor readings, degC.
    unit_temperatures:
        ``(n_intervals, n_units)``, per-floorplan-unit temperatures
        (for spatial gradients), degC.
    unit_names:
        Column labels of ``unit_temperatures`` (``die:unit``).
    core_names:
        Column labels of ``core_temperatures``.
    chip_power:
        Total chip power per interval, W.
    pump_power:
        Pump electrical power per interval, W (zero for air cooling).
    flow_setting:
        Commanded pump setting index per interval (-1 for air).
    completed_threads:
        Threads finished within each interval.
    forecast_tmax:
        The controller's predicted T_max per interval (NaN when no
        forecast was produced), degC.
    migrations:
        Cumulative migration count per interval.
    retrain_count:
        Total ARMA re-fits triggered by the SPRT.
    """

    times: np.ndarray
    tmax: np.ndarray
    tmax_cell: np.ndarray
    core_temperatures: np.ndarray
    unit_temperatures: np.ndarray
    unit_names: list[str]
    core_names: list[str]
    chip_power: np.ndarray
    pump_power: np.ndarray
    flow_setting: np.ndarray
    completed_threads: np.ndarray
    forecast_tmax: np.ndarray
    migrations: np.ndarray
    retrain_count: int = 0
    sojourn_sum: float = 0.0
    sojourn_count: int = 0

    def __post_init__(self) -> None:
        n = len(self.times)
        for name in (
            "tmax",
            "tmax_cell",
            "chip_power",
            "pump_power",
            "flow_setting",
            "completed_threads",
            "forecast_tmax",
            "migrations",
        ):
            if len(getattr(self, name)) != n:
                raise ConfigurationError(f"result field {name} length mismatch")
        if self.core_temperatures.shape[0] != n or self.unit_temperatures.shape[0] != n:
            raise ConfigurationError("temperature matrices length mismatch")

    @property
    def interval(self) -> float:
        """Sampling interval, s."""
        if len(self.times) < 2:
            return 0.0
        return float(self.times[1] - self.times[0])

    @property
    def duration(self) -> float:
        """Covered simulation time, s."""
        return float(len(self.times) * self.interval)

    def chip_energy(self) -> float:
        """Chip energy over the run, J."""
        return float(self.chip_power.sum() * self.interval)

    def pump_energy(self) -> float:
        """Pump (cooling) energy over the run, J."""
        return float(self.pump_power.sum() * self.interval)

    def total_energy(self) -> float:
        """Chip + pump energy, J."""
        return self.chip_energy() + self.pump_energy()

    def throughput(self) -> float:
        """Threads completed per second."""
        if self.duration == 0.0:
            return 0.0
        return float(self.completed_threads.sum() / self.duration)

    def total_completed(self) -> int:
        """Total threads completed."""
        return int(self.completed_threads.sum())

    def time_above(self, threshold: float) -> float:
        """Fraction of samples with T_max above a threshold."""
        if len(self.tmax) == 0:
            return 0.0
        return float(np.mean(self.tmax > threshold))

    def peak_temperature(self) -> float:
        """Highest sampled T_max, degC."""
        return float(self.tmax.max()) if len(self.tmax) else float("nan")

    def mean_flow_setting(self) -> float:
        """Average commanded pump setting (liquid runs)."""
        valid = self.flow_setting[self.flow_setting >= 0]
        return float(valid.mean()) if len(valid) else float("nan")

    def mean_sojourn_time(self) -> float:
        """Mean completed-thread sojourn (arrival to completion), s.

        The latency complement to throughput: queueing delay and
        migration penalties show up here long before they move the
        completion count ("long thread waiting times in the queues").
        """
        if self.sojourn_count == 0:
            return float("nan")
        return self.sojourn_sum / self.sojourn_count
