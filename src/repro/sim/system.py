"""Bundles a stack with its thermal networks across pump settings.

The conductance matrix changes only when the pump setting changes, so
the system caches one assembled network (and one transient solver) per
setting — the runtime cost of a flow change is a cached factorization
lookup, matching the paper's observation that the controller overhead
is "negligible".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.stack import CoolingKind, Stack3D, build_stack
from repro.microchannel.geometry import ChannelGeometry
from repro.microchannel.model import MicrochannelModel
from repro.power.components import CoreState, PowerModel
from repro.pump.laing_ddc import PumpModel, laing_ddc
from repro.thermal.grid import ThermalGrid
from repro.thermal.package import AirPackage
from repro.thermal.rc_network import RCNetwork, ThermalParams, build_network
from repro.thermal.solver import (
    KrylovSteadySolver,
    KrylovTransientSolver,
    SteadyStateSolver,
    TransientSolver,
    structure_signature,
)


class ThermalSystem:
    """A 3D system ready to simulate: grid + per-setting networks.

    Parameters
    ----------
    n_layers:
        2 or 4 active tiers.
    cooling:
        LIQUID (interlayer channels + pump) or AIR (package).
    nx, ny:
        Grid resolution per slab.
    params:
        Material/calibration parameters.
    pump:
        The pump; defaults to the Laing DDC sized to the stack's
        cavities. Ignored for air cooling.
    package:
        Air package; defaults to :class:`AirPackage`. Ignored for
        liquid cooling.
    solver:
        Thermal linear-solver tier: ``"exact"`` (sparse LU, the
        default) or ``"krylov"`` (neighbor-LU preconditioned GMRES —
        reuses nearby design points' factorizations from the
        process-wide :func:`repro.thermal.solver.neighbor_factor_cache`
        instead of factorizing per system).
    """

    def __init__(
        self,
        n_layers: int = 2,
        cooling: CoolingKind = CoolingKind.LIQUID,
        nx: int = 16,
        ny: int = 16,
        params: ThermalParams = ThermalParams(),
        pump: Optional[PumpModel] = None,
        package: Optional[AirPackage] = None,
        solver: str = "exact",
    ) -> None:
        if solver not in ("exact", "krylov"):
            raise ConfigurationError(
                f"solver must be 'exact' or 'krylov', got {solver!r}"
            )
        self.solver = solver
        self.stack: Stack3D = build_stack(n_layers, cooling)
        self.grid = ThermalGrid(self.stack, nx=nx, ny=ny)
        self.params = params
        self.cooling = cooling
        if cooling is CoolingKind.LIQUID:
            self.pump = pump or laing_ddc(self.stack.n_cavities)
            self.package = None
        else:
            self.pump = None
            self.package = package or AirPackage()
        self.channel_model = MicrochannelModel(
            geometry=ChannelGeometry(length=self.stack.width),
            die_height=self.stack.height,
        )
        self._networks: dict[int, RCNetwork] = {}
        self._transients: dict[tuple, "TransientSolver | KrylovTransientSolver"] = {}
        self._steadies: dict[tuple, "SteadyStateSolver | KrylovSteadySolver"] = {}

    # --- network/solver caches --------------------------------------------------

    def network(self, setting_index: int = -1) -> RCNetwork:
        """The RC network for a pump setting (-1 = air cooling)."""
        if setting_index in self._networks:
            return self._networks[setting_index]
        if self.cooling is CoolingKind.AIR:
            if setting_index != -1:
                raise ConfigurationError("air-cooled systems have no pump settings")
            net = build_network(self.grid, self.params, package=self.package)
        else:
            flow = self.pump.setting(setting_index).per_cavity_flow
            net = build_network(
                self.grid,
                self.params,
                cavity_flows=[flow],
                channel_model=self.channel_model,
            )
        self._networks[setting_index] = net
        return net

    def network_for_flow(self, per_cavity_flow: float) -> RCNetwork:
        """An uncached network at an arbitrary continuous flow.

        Used by the continuous curves of Figure 5 and by ablations; the
        discrete runtime path uses :meth:`network`.
        """
        if self.cooling is CoolingKind.AIR:
            raise ConfigurationError("air-cooled systems have no coolant flow")
        return build_network(
            self.grid,
            self.params,
            cavity_flows=[per_cavity_flow],
            channel_model=self.channel_model,
        )

    def _structure_key(self, setting_index: int, tail: tuple) -> tuple:
        """Preconditioner-pool key: sparsity structure + setting + dt.

        The pump-setting index is part of the key even though different
        settings share a sparsity pattern — their coolant conductances
        differ enough that cross-setting preconditioning converges
        poorly, and keeping settings apart makes the pool's nearest
        lookup a pure thermal-parameter distance.
        """
        return structure_signature(self.network(setting_index)) + (
            setting_index,
        ) + tail

    def transient_solver(
        self, setting_index: int, dt: float, solver: Optional[str] = None
    ) -> "TransientSolver | KrylovTransientSolver":
        """Cached backward-Euler solver for a setting and step size.

        ``solver`` overrides the system-wide tier for this lookup
        (``"exact"`` or ``"krylov"``); distinct tiers cache separately.
        """
        mode = solver if solver is not None else self.solver
        key = (setting_index, dt, mode)
        if key not in self._transients:
            if mode == "krylov":
                built: "TransientSolver | KrylovTransientSolver" = (
                    KrylovTransientSolver(
                        self.network(setting_index),
                        dt,
                        params=self.params,
                        structure=self._structure_key(setting_index, ("dt", dt)),
                    )
                )
            else:
                built = TransientSolver(self.network(setting_index), dt)
            self._transients[key] = built
        return self._transients[key]

    def steady_solver(
        self, setting_index: int = -1, solver: Optional[str] = None
    ) -> "SteadyStateSolver | KrylovSteadySolver":
        """Cached steady-state solver for a setting (-1 = air).

        ``solver`` overrides the system-wide tier for this lookup.
        """
        mode = solver if solver is not None else self.solver
        key = (setting_index, mode)
        if key not in self._steadies:
            if mode == "krylov":
                built: "SteadyStateSolver | KrylovSteadySolver" = KrylovSteadySolver(
                    self.network(setting_index),
                    params=self.params,
                    structure=self._structure_key(setting_index, ("steady",)),
                )
            else:
                built = SteadyStateSolver(self.network(setting_index))
            self._steadies[key] = built
        return self._steadies[key]

    # --- steady-state evaluation ---------------------------------------------

    def steady_tmax(
        self,
        power_model: PowerModel,
        utilization: float,
        setting_index: int = -1,
        memory_intensity: float = 0.5,
        leakage_iterations: int = 6,
    ) -> float:
        """Self-consistent steady-state T_max under uniform utilization.

        Iterates power(T) -> solve -> T until the leakage feedback
        settles (a fixed small iteration count converges well within
        0.01 K for the polynomial model).
        """
        temps = self.steady_temperatures(
            power_model,
            utilization,
            setting_index=setting_index,
            memory_intensity=memory_intensity,
            leakage_iterations=leakage_iterations,
        )
        return self.grid.max_unit_temperature(temps)

    def steady_temperatures(
        self,
        power_model: PowerModel,
        utilization: float,
        setting_index: int = -1,
        memory_intensity: float = 0.5,
        leakage_iterations: int = 6,
    ) -> np.ndarray:
        """Steady-state temperature field (see :meth:`steady_tmax`)."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization must be in [0, 1]")
        core_names = self.stack.core_names()
        core_util = {name: utilization for name in core_names}
        core_states = {name: CoreState.IDLE if utilization == 0.0 else CoreState.ACTIVE
                       for name in core_names}
        solver = self.steady_solver(setting_index)
        grid = self.grid
        unit_vec: Optional[np.ndarray] = None
        temps = np.zeros(grid.n_nodes)
        for _ in range(max(1, leakage_iterations)):
            unit_powers = power_model.unit_power_vector(
                grid.unit_keys, core_util, core_states, memory_intensity, unit_vec
            )
            temps = solver.solve(grid.power_vector_from_array(unit_powers))
            unit_vec = grid.unit_temperature_vector(temps)
        return temps

    def steady_temperature_fields(
        self,
        power_model: PowerModel,
        utilizations: "np.ndarray | list[float]",
        setting_index: int = -1,
        memory_intensity: float = 0.5,
        leakage_iterations: int = 6,
    ) -> np.ndarray:
        """Steady fields for many utilizations at once, shape ``(k, n_nodes)``.

        Runs the leakage fixed point for all utilizations in lockstep
        with one multi-RHS triangular solve per iteration; each row
        matches a separate :meth:`steady_temperatures` call to within
        LU roundoff (~1e-14 K). The flow-table characterization sweep
        (Figure 5) uses this to amortize its ``settings x
        utilizations`` grid.
        """
        utils = [float(u) for u in np.atleast_1d(np.asarray(utilizations, dtype=float))]
        if any(not 0.0 <= u <= 1.0 for u in utils):
            raise ConfigurationError("utilization must be in [0, 1]")
        core_names = self.stack.core_names()
        per_util = [
            (
                {name: u for name in core_names},
                {name: CoreState.IDLE if u == 0.0 else CoreState.ACTIVE
                 for name in core_names},
            )
            for u in utils
        ]
        solver = self.steady_solver(setting_index)
        grid = self.grid
        unit_vecs: list[Optional[np.ndarray]] = [None] * len(utils)
        temps = np.zeros((grid.n_nodes, len(utils)))
        for _ in range(max(1, leakage_iterations)):
            injections = np.empty((grid.n_nodes, len(utils)))
            for c, (core_util, core_states) in enumerate(per_util):
                unit_powers = power_model.unit_power_vector(
                    grid.unit_keys, core_util, core_states,
                    memory_intensity, unit_vecs[c],
                )
                injections[:, c] = grid.power_vector_from_array(unit_powers)
            temps = solver.solve_many(injections)
            for c in range(len(utils)):
                unit_vecs[c] = grid.unit_temperature_vector(temps[:, c])
        return temps.T

    def steady_tmax_batch(
        self,
        power_model: PowerModel,
        utilizations: "np.ndarray | list[float]",
        setting_index: int = -1,
        memory_intensity: float = 0.5,
        leakage_iterations: int = 6,
    ) -> np.ndarray:
        """Self-consistent steady T_max per utilization (sensor view)."""
        fields = self.steady_temperature_fields(
            power_model,
            utilizations,
            setting_index=setting_index,
            memory_intensity=memory_intensity,
            leakage_iterations=leakage_iterations,
        )
        return np.array(
            [self.grid.max_unit_temperature(field) for field in fields]
        )

    def steady_tmax_concentrated(
        self,
        power_model: PowerModel,
        setting_index: int = -1,
        n_active: int = 1,
        memory_intensity: float = 0.3,
        leakage_iterations: int = 6,
    ) -> float:
        """Steady T_max with the load concentrated on ``n_active`` cores.

        The worst case for low-utilization workloads: one long thread
        pins a single core at full power while the others idle. The
        uniform-utilization characterization underestimates this local
        hot spot, so the flow controller floors its setting at the one
        that can hold this pattern (DESIGN.md section 8).
        """
        core_names = self.stack.core_names()
        if not 1 <= n_active <= len(core_names):
            raise ConfigurationError("n_active outside the core count")
        core_util = {name: 0.0 for name in core_names}
        core_states = {name: CoreState.IDLE for name in core_names}
        for name in core_names[:n_active]:
            core_util[name] = 1.0
            core_states[name] = CoreState.ACTIVE
        solver = self.steady_solver(setting_index)
        grid = self.grid
        unit_vec: Optional[np.ndarray] = None
        temps = np.zeros(grid.n_nodes)
        for _ in range(max(1, leakage_iterations)):
            unit_powers = power_model.unit_power_vector(
                grid.unit_keys, core_util, core_states, memory_intensity, unit_vec
            )
            temps = solver.solve(grid.power_vector_from_array(unit_powers))
            unit_vec = grid.unit_temperature_vector(temps)
        return float(unit_vec.max())

    # --- convenience ------------------------------------------------------------

    @property
    def core_names(self) -> list[str]:
        """All core names in the stack."""
        return self.stack.core_names()

    def initial_temperatures(self, power_model: PowerModel, utilization: float,
                             setting_index: int = -1) -> np.ndarray:
        """Steady-state initialization (the paper initializes all
        simulations "with steady state temperature values")."""
        return self.steady_temperatures(power_model, utilization, setting_index)
