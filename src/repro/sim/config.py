"""Simulation configuration (the experiment matrix of Section V).

``policy``, ``controller``, ``forecaster``, ``workload``, and
``facility`` are **registry keys** (:mod:`repro.registry`): strings
naming a registered component, with optional frozen parameter mappings
(``policy_params``, ``controller_params``, ``forecaster_params``,
``workload_params``, ``facility_params``) validated against the
component's declared schema at construction time. The historical enums
(:class:`PolicyKind`, :class:`ControllerKind`) remain accepted aliases
— ``SimulationConfig(policy=PolicyKind.TALB)`` and
``SimulationConfig(policy="talb")`` normalize to the same canonical
config, with identical labels, fingerprints, and runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Union

from repro.constants import CONTROL
from repro.errors import ConfigurationError
from repro.registry import (
    FrozenParams,
    controller_registry,
    facility_registry,
    forecaster_registry,
    policy_registry,
    workload_registry,
)
from repro.thermal.rc_network import ThermalParams
from repro.workload.benchmarks import BenchmarkSpec, benchmark


class PolicyKind(Enum):
    """Legacy aliases for the built-in scheduling policies.

    Kept for backward compatibility: anywhere a policy key is accepted,
    a :class:`PolicyKind` member normalizes to its canonical registry
    key (``member.value``). New code — and any non-paper policy, e.g.
    the round-robin baseline ``"RR"`` — should use string keys; see
    ``repro list policies``.
    """

    LB = "LB"
    MIGRATION = "Mig"
    TALB = "TALB"


class ControllerKind(Enum):
    """Legacy aliases for the built-in variable-flow controllers.

    ``LUT`` — the paper's contribution: ARMA forecast + characterized
    look-up table + 2 degC hysteresis;
    ``STEPWISE`` — the prior-work [6] baseline: reactive one-step
    increment/decrement on the measured temperature.

    As with :class:`PolicyKind`, these normalize to registry keys; the
    PID baseline (``"pid"``) and any user-registered controller have no
    enum member and are addressed by key alone.
    """

    LUT = "lut"
    STEPWISE = "stepwise"


class CoolingMode(Enum):
    """Cooling configuration of a run.

    ``AIR`` — conventional package ("(Air)" in the figures);
    ``LIQUID_MAX`` — liquid cooling at the worst-case maximum flow
    ("(Max)");
    ``LIQUID_VARIABLE`` — the paper's controller ("(Var)").
    """

    AIR = "Air"
    LIQUID_MAX = "Max"
    LIQUID_VARIABLE = "Var"

    @property
    def is_liquid(self) -> bool:
        """Whether the mode uses the microchannel loop."""
        return self is not CoolingMode.AIR


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulation run needs.

    Defaults follow Section V: 100 ms sampling, 10 ms scheduler
    quantum, 2-layer stack, DPM off (on for the Figure 7 study).
    """

    benchmark_name: str = "Web-med"
    policy: Union[PolicyKind, str] = "TALB"
    cooling: CoolingMode = CoolingMode.LIQUID_VARIABLE
    n_layers: int = 2
    duration: float = 30.0
    quantum: float = 0.01
    sampling_interval: float = CONTROL.sampling_interval
    dpm_enabled: bool = False
    seed: int = 0
    nx: int = 16
    ny: int = 16
    thermal_params: ThermalParams = field(default_factory=ThermalParams)
    target_temperature: float = CONTROL.target_temperature
    hysteresis: float = CONTROL.hysteresis
    talb_weight_target: float = 75.0
    forecast_enabled: bool = True
    controller: Union[ControllerKind, str] = "lut"
    characterization_guard: float = 3.0
    """Guard band (K) subtracted from the target when building the flow
    look-up table. The characterization assumes uniform utilization; a
    single long thread concentrates its core's power and runs locally
    hotter, and sudden arrivals outrun the 250-300 ms pump transition,
    so the table is built to cool to ``target - guard`` and the
    transients stay below the target itself."""
    policy_params: Mapping[str, Any] = field(default_factory=FrozenParams)
    """Parameters for the scheduling policy, validated against the
    registry entry's declared schema (``repro list policies``)."""
    controller_params: Mapping[str, Any] = field(default_factory=FrozenParams)
    """Parameters for the flow controller (``repro list controllers``)."""
    forecaster: str = "arma"
    """Registry key of the maximum-temperature forecaster (the paper's
    ARMA+SPRT predictor by default; ``repro list forecasters``)."""
    forecaster_params: Mapping[str, Any] = field(default_factory=FrozenParams)
    """Parameters for the forecaster."""
    workload: str = "table2"
    """Registry key of the workload model that builds this run's thread
    trace (``repro list workloads``). The default is the stationary
    Table II synthetic generator; ``trace-replay``, ``diurnal``, and
    ``flash-crowd`` are built in, and user models register like
    policies."""
    workload_params: Mapping[str, Any] = field(default_factory=FrozenParams)
    """Parameters for the workload model (e.g. ``{"path": ...}`` for
    ``trace-replay``, ``{"burst_rate": 0.2}`` for ``flash-crowd``)."""
    solver: str = "exact"
    """Thermal linear-solver tier: ``"exact"`` (sparse LU per distinct
    network — bit-reproducible, the default) or ``"krylov"``
    (neighbor-LU preconditioned GMRES — reuses nearby design points'
    factorizations across ``thermal_params`` sweeps; agrees with exact
    within :data:`repro.thermal.solver.KRYLOV_TEMPERATURE_TOLERANCE`).
    Sweepable like any other field."""
    facility: str = "none"
    """Registry key of the facility cooling loop co-simulated with the
    chip (``repro list facilities``). The default ``"none"`` is the
    classic fixed-inlet run — byte-identical results, and the field is
    omitted from ``config_signature`` at its default so pre-facility
    fingerprints, checkpoints, and ledgers stay valid. ``"closed-loop"``
    computes the inlet temperature from a CDU -> chiller/economizer ->
    cooling tower energy balance and adds PUE/WUE/total-cooling-power
    to the results."""
    facility_params: Mapping[str, Any] = field(default_factory=FrozenParams)
    """Parameters for the facility loop (e.g. ``{"racks": 2250,
    "wet_bulb_c": 18.0}`` for ``closed-loop``)."""

    def __post_init__(self) -> None:
        if self.n_layers not in (2, 4):
            raise ConfigurationError("n_layers must be 2 or 4")
        if self.duration <= 0.0:
            raise ConfigurationError("duration must be positive")
        if self.quantum <= 0.0 or self.sampling_interval <= 0.0:
            raise ConfigurationError("quantum and sampling interval must be positive")
        if self.sampling_interval < self.quantum:
            raise ConfigurationError("sampling interval must be >= quantum")
        ratio = self.sampling_interval / self.quantum
        if abs(ratio - round(ratio)) > 1.0e-9:
            raise ConfigurationError(
                "sampling interval must be an integer multiple of the quantum"
            )
        if any(
            isinstance(n, bool) or not isinstance(n, int) or n < 1
            for n in (self.nx, self.ny)
        ):
            raise ConfigurationError("nx and ny must be integers >= 1")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ConfigurationError("seed must be an integer >= 0")
        if not isinstance(self.cooling, CoolingMode):
            raise ConfigurationError(
                f"cooling must be a CoolingMode, got {self.cooling!r}"
            )
        if self.solver not in ("exact", "krylov"):
            raise ConfigurationError(
                f"solver must be 'exact' or 'krylov', got {self.solver!r}"
            )
        # Normalize the registry keys (enums and aliases -> canonical)
        # and validate the parameter mappings against each component's
        # declared schema. The coerced/frozen forms are what hash,
        # fingerprint, and serialize.
        self._normalize("policy", "policy_params", policy_registry())
        self._normalize("controller", "controller_params", controller_registry())
        self._normalize("forecaster", "forecaster_params", forecaster_registry())
        self._normalize("workload", "workload_params", workload_registry())
        self._normalize("facility", "facility_params", facility_registry())
        benchmark(self.benchmark_name)  # Validates the name early.

    def _normalize(self, key_field: str, params_field: str, registry) -> None:
        key = registry.normalize(getattr(self, key_field))
        params = getattr(self, params_field)
        if not isinstance(params, Mapping):
            raise ConfigurationError(
                f"{params_field} must be a mapping, got {type(params).__name__}"
            )
        frozen = FrozenParams(registry.validate_params(key, params))
        object.__setattr__(self, key_field, key)
        object.__setattr__(self, params_field, frozen)

    @property
    def spec(self) -> BenchmarkSpec:
        """The Table II benchmark this run executes."""
        return benchmark(self.benchmark_name)

    @property
    def n_cores(self) -> int:
        """8 cores on the 2-layer system, 16 on the 4-layer system."""
        return 8 if self.n_layers == 2 else 16

    def label(self) -> str:
        """Figure-style label, e.g. ``"TALB (Var)"``."""
        return f"{self.policy} ({self.cooling.value})"
