"""Simulation configuration (the experiment matrix of Section V)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.constants import CONTROL
from repro.errors import ConfigurationError
from repro.thermal.rc_network import ThermalParams
from repro.workload.benchmarks import BenchmarkSpec, benchmark


class PolicyKind(Enum):
    """Scheduling policy (Section V's comparison set)."""

    LB = "LB"
    MIGRATION = "Mig"
    TALB = "TALB"


class ControllerKind(Enum):
    """Which variable-flow controller drives the pump.

    ``LUT`` — the paper's contribution: ARMA forecast + characterized
    look-up table + 2 degC hysteresis;
    ``STEPWISE`` — the prior-work [6] baseline: reactive one-step
    increment/decrement on the measured temperature.
    """

    LUT = "lut"
    STEPWISE = "stepwise"


class CoolingMode(Enum):
    """Cooling configuration of a run.

    ``AIR`` — conventional package ("(Air)" in the figures);
    ``LIQUID_MAX`` — liquid cooling at the worst-case maximum flow
    ("(Max)");
    ``LIQUID_VARIABLE`` — the paper's controller ("(Var)").
    """

    AIR = "Air"
    LIQUID_MAX = "Max"
    LIQUID_VARIABLE = "Var"

    @property
    def is_liquid(self) -> bool:
        """Whether the mode uses the microchannel loop."""
        return self is not CoolingMode.AIR


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulation run needs.

    Defaults follow Section V: 100 ms sampling, 10 ms scheduler
    quantum, 2-layer stack, DPM off (on for the Figure 7 study).
    """

    benchmark_name: str = "Web-med"
    policy: PolicyKind = PolicyKind.TALB
    cooling: CoolingMode = CoolingMode.LIQUID_VARIABLE
    n_layers: int = 2
    duration: float = 30.0
    quantum: float = 0.01
    sampling_interval: float = CONTROL.sampling_interval
    dpm_enabled: bool = False
    seed: int = 0
    nx: int = 16
    ny: int = 16
    thermal_params: ThermalParams = field(default_factory=ThermalParams)
    target_temperature: float = CONTROL.target_temperature
    hysteresis: float = CONTROL.hysteresis
    talb_weight_target: float = 75.0
    forecast_enabled: bool = True
    controller: ControllerKind = ControllerKind.LUT
    characterization_guard: float = 3.0
    """Guard band (K) subtracted from the target when building the flow
    look-up table. The characterization assumes uniform utilization; a
    single long thread concentrates its core's power and runs locally
    hotter, and sudden arrivals outrun the 250-300 ms pump transition,
    so the table is built to cool to ``target - guard`` and the
    transients stay below the target itself."""

    def __post_init__(self) -> None:
        if self.n_layers not in (2, 4):
            raise ConfigurationError("n_layers must be 2 or 4")
        if self.duration <= 0.0:
            raise ConfigurationError("duration must be positive")
        if self.quantum <= 0.0 or self.sampling_interval <= 0.0:
            raise ConfigurationError("quantum and sampling interval must be positive")
        if self.sampling_interval < self.quantum:
            raise ConfigurationError("sampling interval must be >= quantum")
        ratio = self.sampling_interval / self.quantum
        if abs(ratio - round(ratio)) > 1.0e-9:
            raise ConfigurationError(
                "sampling interval must be an integer multiple of the quantum"
            )
        benchmark(self.benchmark_name)  # Validates the name early.

    @property
    def spec(self) -> BenchmarkSpec:
        """The Table II benchmark this run executes."""
        return benchmark(self.benchmark_name)

    @property
    def n_cores(self) -> int:
        """8 cores on the 2-layer system, 16 on the 4-layer system."""
        return 8 if self.n_layers == 2 else 16

    def label(self) -> str:
        """Figure-style label, e.g. ``"TALB (Var)"``."""
        return f"{self.policy.value} ({self.cooling.value})"
