"""The co-simulation engine (Figure 4's loop).

Each control interval (100 ms):

1. the scheduler substrate runs at a 10 ms quantum — thread arrivals
   are dispatched, per-core queues execute, DPM updates sleep states;
2. the interval's per-unit power map is computed (dynamic + leakage at
   the previous interval's temperatures);
3. the thermal RC network advances one backward-Euler step at the
   effective pump setting;
4. per-core sensors are sampled, the ARMA forecaster observes the new
   maximum temperature and predicts 500 ms ahead;
5. the flow-rate controller commands the pump (variable-flow mode);
6. the scheduling policy rebalances the queues.

The engine caches flow-table characterizations and TALB weight sets per
thermal-system signature, since these are offline pre-processing steps
in the paper.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.constants import CONTROL
from repro.control.controller import FlowRateController
from repro.control.flow_table import FlowRateTable
from repro.control.forecaster import TemperatureForecaster
from repro.control.stepwise import StepwiseFlowController
from repro.errors import ConfigurationError
from repro.geometry.stack import CoolingKind
from repro.power.components import CoreState, PowerModel
from repro.power.dpm import DpmPolicy
from repro.power.leakage import LeakageModel
from repro.pump.laing_ddc import PumpState
from repro.sched.base import CoreQueues
from repro.sched.load_balancer import LoadBalancer
from repro.sched.migration import ReactiveMigration
from repro.sched.talb import WeightedLoadBalancer
from repro.sched.weights import ThermalWeights
from repro.sim.config import ControllerKind, CoolingMode, PolicyKind, SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.system import ThermalSystem
from repro.workload.generator import ThreadTrace, WorkloadGenerator

_table_cache: dict[tuple, FlowRateTable] = {}
_weights_cache: dict[tuple, ThermalWeights] = {}


def _system_key(config: SimulationConfig, cooling: CoolingKind) -> tuple:
    return (
        config.n_layers,
        cooling,
        config.nx,
        config.ny,
        config.thermal_params,
        config.target_temperature,
        config.characterization_guard,
    )


def characterized_table(
    system: ThermalSystem, power_model: PowerModel, config: SimulationConfig
) -> FlowRateTable:
    """The (cached) offline characterization for a system (Figure 5)."""
    key = _system_key(config, CoolingKind.LIQUID)
    if key not in _table_cache:
        _table_cache[key] = FlowRateTable.characterize(
            steady_tmax=lambda setting, util: system.steady_tmax(
                power_model, util, setting_index=setting
            ),
            n_settings=system.pump.n_settings,
            per_cavity_flows=system.pump.per_cavity_flows(),
            target=config.target_temperature - config.characterization_guard,
        )
    return _table_cache[key]


_floor_cache: dict[tuple, int] = {}


def burst_floor_setting(
    system: ThermalSystem, power_model: PowerModel, config: SimulationConfig
) -> int:
    """Lowest setting that holds one fully loaded core below the target.

    The characterization assumes uniform utilization; a single long
    thread concentrates its core's power and runs locally hotter, so
    the controller never drops below this floor (DESIGN.md section 8).
    """
    key = _system_key(config, CoolingKind.LIQUID)
    if key not in _floor_cache:
        floor = system.pump.n_settings - 1
        for k in range(system.pump.n_settings):
            tmax = system.steady_tmax_concentrated(power_model, setting_index=k)
            if tmax <= config.target_temperature - 0.5:
                floor = k
                break
        _floor_cache[key] = floor
    return _floor_cache[key]


def thermal_weights(
    system: ThermalSystem,
    setting_index: int,
    config: SimulationConfig,
    cooling: CoolingKind,
) -> ThermalWeights:
    """The (cached) pre-processed TALB weights for one cooling condition."""
    key = _system_key(config, cooling) + (setting_index, config.talb_weight_target)
    if key not in _weights_cache:
        _weights_cache[key] = ThermalWeights.from_network(
            system.network(setting_index),
            target_temperature=config.talb_weight_target,
            # Probe with the non-core units at a representative power so
            # crossbar/L2 heating is reflected in the per-core budgets.
            background_power=1.0,
        )
    return _weights_cache[key]


class Simulator:
    """One configured simulation run.

    Parameters
    ----------
    config:
        The run configuration.
    trace:
        Optional pre-generated thread trace (e.g. the diurnal trace);
        defaults to a fresh trace of the configured benchmark.
    """

    def __init__(self, config: SimulationConfig, trace: Optional[ThreadTrace] = None) -> None:
        self.config = config
        cooling = (
            CoolingKind.AIR if config.cooling is CoolingMode.AIR else CoolingKind.LIQUID
        )
        self.system = ThermalSystem(
            n_layers=config.n_layers,
            cooling=cooling,
            nx=config.nx,
            ny=config.ny,
            params=config.thermal_params,
        )
        self.power_model = PowerModel(self.system.stack, leakage=LeakageModel())
        self.trace = trace or WorkloadGenerator(
            config.spec, n_cores=config.n_cores, seed=config.seed
        ).generate(config.duration)
        self._cooling_kind = cooling
        self._policy = self._build_policy()
        self._pump_state: Optional[PumpState] = None
        self._controller: Optional[FlowRateController] = None
        if config.cooling.is_liquid:
            initial = self.system.pump.n_settings - 1  # Start safe (max flow).
            self._pump_state = PumpState(self.system.pump, current_index=initial)
            if config.cooling is CoolingMode.LIQUID_VARIABLE:
                if config.controller is ControllerKind.STEPWISE:
                    # The prior-work [6] baseline: reactive ladder.
                    self._controller = StepwiseFlowController(self._pump_state)
                else:
                    table = characterized_table(self.system, self.power_model, config)
                    floor = burst_floor_setting(self.system, self.power_model, config)
                    self._controller = FlowRateController(
                        table,
                        self._pump_state,
                        hysteresis=config.hysteresis,
                        minimum_setting=floor,
                    )

    def _build_policy(self):
        config = self.config
        if config.policy is PolicyKind.LB:
            return LoadBalancer()
        if config.policy is PolicyKind.MIGRATION:
            return ReactiveMigration()
        if config.policy is PolicyKind.TALB:
            return WeightedLoadBalancer(weight_provider=self._talb_weights)
        raise ConfigurationError(f"unknown policy {config.policy}")

    def _talb_weights(self, tmax: float) -> ThermalWeights:
        """Weight provider: the pre-processed set for the current
        cooling condition (pump setting or air)."""
        if self._cooling_kind is CoolingKind.AIR:
            setting = -1
        else:
            setting = self._pump_state.current_index if self._pump_state else -1
        return thermal_weights(self.system, setting, self.config, self._cooling_kind)

    # --- main loop -------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the configured run and return its time series."""
        config = self.config
        grid = self.system.grid
        interval = config.sampling_interval
        n_intervals = int(round(config.duration / interval))
        steps = int(round(interval / config.quantum))
        core_names = self.system.core_names
        queues = CoreQueues(core_names)
        dpm = DpmPolicy(core_names, enabled=config.dpm_enabled)
        spec = config.spec

        setting0 = self._pump_state.current_index if self._pump_state else -1
        temperatures = self.system.initial_temperatures(
            self.power_model, spec.utilization, setting_index=setting0
        )
        core_temps = grid.core_temperatures(temperatures)
        unit_temps = grid.unit_temperatures(temperatures)
        unit_keys = sorted(unit_temps)
        forecaster = TemperatureForecaster(
            horizon_steps=int(round(CONTROL.forecast_horizon / interval))
        )

        arrivals = list(self.trace.threads)
        arrival_ptr = 0
        completed_in_interval = 0
        migrations_total = 0
        sojourn_sum = 0.0
        sojourn_count = 0

        rec_times = np.zeros(n_intervals)
        rec_tmax = np.zeros(n_intervals)
        rec_tmax_cell = np.zeros(n_intervals)
        rec_core_t = np.zeros((n_intervals, len(core_names)))
        rec_unit_t = np.zeros((n_intervals, len(unit_keys)))
        rec_chip_p = np.zeros(n_intervals)
        rec_pump_p = np.zeros(n_intervals)
        rec_setting = np.full(n_intervals, -1, dtype=int)
        rec_completed = np.zeros(n_intervals, dtype=int)
        rec_forecast = np.full(n_intervals, np.nan)
        rec_migrations = np.zeros(n_intervals, dtype=int)

        for k in range(n_intervals):
            t_start = k * interval
            busy_time = {name: 0.0 for name in core_names}
            completed_in_interval = 0
            states = dpm.states()

            for s in range(steps):
                now = t_start + s * config.quantum
                # Dispatch arrivals that landed in this quantum.
                while (
                    arrival_ptr < len(arrivals)
                    and arrivals[arrival_ptr].arrival < now + config.quantum
                ):
                    thread = arrivals[arrival_ptr]
                    target = self._policy.dispatch_target(queues, core_temps)
                    queues.enqueue(target, thread)
                    dpm.wake(target, now)
                    arrival_ptr += 1
                # Execute queue heads.
                busy = {}
                for name in core_names:
                    q = queues.queue(name)
                    if q:
                        used = q[0].execute(config.quantum)
                        busy_time[name] += used
                        busy[name] = used > 0.0
                        if q[0].done:
                            finished = q.popleft()
                            completed_in_interval += 1
                            sojourn_sum += (now + used) - finished.arrival
                            sojourn_count += 1
                    else:
                        busy[name] = False
                states = dpm.observe(now + config.quantum, busy)

            t_end = t_start + interval
            if self._pump_state is not None:
                self._pump_state.advance(t_end)

            core_util = {
                name: min(1.0, busy_time[name] / interval) for name in core_names
            }
            powers = self.power_model.unit_powers(
                core_util, states, spec.memory_intensity, unit_temps
            )
            setting = self._pump_state.current_index if self._pump_state else -1
            solver = self.system.transient_solver(setting, interval) \
                if self._cooling_kind is CoolingKind.LIQUID \
                else self.system.transient_solver(-1, interval)
            temperatures = solver.step(temperatures, grid.power_vector(powers))

            core_temps = grid.core_temperatures(temperatures)
            unit_temps = grid.unit_temperatures(temperatures)
            # Runtime policies observe sensors (unit means), as in the
            # paper; the cell-level peak is recorded as ground truth.
            tmax = max(unit_temps.values())
            tmax_cell = grid.max_die_temperature(temperatures)

            forecaster.observe(tmax)
            if config.forecast_enabled:
                # The controller acts on the forecast, guarded by the
                # current reading: a prediction below an already-high
                # temperature must not postpone an upshift.
                prediction = max(forecaster.predict(), tmax)
            else:
                # Ablation: a purely reactive controller sees only the
                # current temperature and eats the full pump delay.
                prediction = tmax
            if self._controller is not None:
                if isinstance(self._controller, StepwiseFlowController):
                    # The [6] baseline is reactive by definition.
                    self._controller.update(tmax, t_end)
                else:
                    self._controller.update(prediction, t_end)

            self._policy.rebalance(queues, core_temps, t_end)
            if isinstance(self._policy, ReactiveMigration):
                migrations_total = self._policy.migration_count

            rec_times[k] = t_end
            rec_tmax[k] = tmax
            rec_tmax_cell[k] = tmax_cell
            rec_core_t[k] = [core_temps[name] for name in core_names]
            rec_unit_t[k] = [unit_temps[key] for key in unit_keys]
            rec_chip_p[k] = self.power_model.total_power(powers)
            if self._pump_state is not None:
                rec_pump_p[k] = self._pump_state.electrical_power()
                rec_setting[k] = self._pump_state.commanded_index
            rec_completed[k] = completed_in_interval
            rec_forecast[k] = prediction
            rec_migrations[k] = migrations_total

        return SimulationResult(
            times=rec_times,
            tmax=rec_tmax,
            tmax_cell=rec_tmax_cell,
            core_temperatures=rec_core_t,
            unit_temperatures=rec_unit_t,
            unit_names=[f"{d}:{name}" for d, name in unit_keys],
            core_names=core_names,
            chip_power=rec_chip_p,
            pump_power=rec_pump_p,
            flow_setting=rec_setting,
            completed_threads=rec_completed,
            forecast_tmax=rec_forecast,
            migrations=rec_migrations,
            retrain_count=forecaster.retrain_count,
            sojourn_sum=sojourn_sum,
            sojourn_count=sojourn_count,
        )


def simulate(config: SimulationConfig, trace: Optional[ThreadTrace] = None) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config, trace=trace).run()
