"""The co-simulation engine (Figure 4's loop).

Each control interval (100 ms):

1. the scheduler substrate runs at a 10 ms quantum — thread arrivals
   are dispatched, per-core queues execute, DPM updates sleep states;
2. the interval's per-unit power map is computed (dynamic + leakage at
   the previous interval's temperatures);
3. the thermal RC network advances one backward-Euler step at the
   effective pump setting;
4. per-core sensors are sampled, the ARMA forecaster observes the new
   maximum temperature and predicts 500 ms ahead;
5. the flow-rate controller commands the pump (variable-flow mode);
6. the scheduling policy rebalances the queues.

The engine caches flow-table characterizations and TALB weight sets per
thermal-system signature, since these are offline pre-processing steps
in the paper. The cache is an explicit
:class:`~repro.sim.cache.CharacterizationCache`: a process-wide default
instance backs the module-level helpers below, and a pre-warmed cache
can be injected per :class:`Simulator` (or installed with
:func:`set_default_cache` in a worker process) for batch fan-out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import CONTROL
from repro.control.controller import FlowRateController
from repro.control.flow_table import FlowRateTable
from repro.control.forecaster import TemperatureForecaster
from repro.control.stepwise import StepwiseFlowController
from repro.errors import ConfigurationError, SchedulingError
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.dpm import DpmPolicy
from repro.pump.laing_ddc import PumpState
from repro.sched.base import CoreQueues
from repro.sched.load_balancer import LoadBalancer
from repro.sched.migration import ReactiveMigration
from repro.sched.talb import WeightedLoadBalancer
from repro.sched.weights import ThermalWeights
from repro.sim.cache import CharacterizationCache, system_for
from repro.sim.config import ControllerKind, CoolingMode, PolicyKind, SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.system import ThermalSystem
from repro.workload.generator import ThreadTrace, WorkloadGenerator

_default_cache = CharacterizationCache()


def default_cache() -> CharacterizationCache:
    """The process-wide characterization cache."""
    return _default_cache


def set_default_cache(cache: CharacterizationCache) -> None:
    """Replace the process-wide cache (e.g. with a pre-warmed one
    shipped to a :class:`repro.runner.BatchRunner` worker)."""
    global _default_cache
    _default_cache = cache


def characterized_table(
    system: ThermalSystem,
    power_model: PowerModel,
    config: SimulationConfig,
    cache: Optional[CharacterizationCache] = None,
) -> FlowRateTable:
    """The (cached) offline characterization for a system (Figure 5)."""
    return (cache or _default_cache).table(system, power_model, config)


def burst_floor_setting(
    system: ThermalSystem,
    power_model: PowerModel,
    config: SimulationConfig,
    cache: Optional[CharacterizationCache] = None,
) -> int:
    """Lowest setting that holds one fully loaded core below the target.

    See :meth:`repro.sim.cache.CharacterizationCache.floor`.
    """
    return (cache or _default_cache).floor(system, power_model, config)


def thermal_weights(
    system: ThermalSystem,
    setting_index: int,
    config: SimulationConfig,
    cooling: CoolingKind,
    cache: Optional[CharacterizationCache] = None,
) -> ThermalWeights:
    """The (cached) pre-processed TALB weights for one cooling condition."""
    return (cache or _default_cache).thermal_weights(
        system, setting_index, config, cooling
    )


class Simulator:
    """One configured simulation run.

    Parameters
    ----------
    config:
        The run configuration.
    trace:
        Optional pre-generated thread trace (e.g. the diurnal trace);
        defaults to a fresh trace of the configured benchmark.
    cache:
        Optional :class:`~repro.sim.cache.CharacterizationCache` to
        draw offline characterizations from (defaults to the
        process-wide cache).
    """

    def __init__(
        self,
        config: SimulationConfig,
        trace: Optional[ThreadTrace] = None,
        cache: Optional[CharacterizationCache] = None,
    ) -> None:
        self.config = config
        self.cache = cache if cache is not None else _default_cache
        self.system, self.power_model = system_for(config)
        cooling = self.system.cooling
        self.trace = trace or WorkloadGenerator(
            config.spec, n_cores=config.n_cores, seed=config.seed
        ).generate(config.duration)
        self._cooling_kind = cooling
        self._policy = self._build_policy()
        self._pump_state: Optional[PumpState] = None
        self._controller: Optional[FlowRateController] = None
        if config.cooling.is_liquid:
            initial = self.system.pump.n_settings - 1  # Start safe (max flow).
            self._pump_state = PumpState(self.system.pump, current_index=initial)
            if config.cooling is CoolingMode.LIQUID_VARIABLE:
                if config.controller is ControllerKind.STEPWISE:
                    # The prior-work [6] baseline: reactive ladder.
                    self._controller = StepwiseFlowController(self._pump_state)
                else:
                    table = self.cache.table(self.system, self.power_model, config)
                    floor = self.cache.floor(self.system, self.power_model, config)
                    self._controller = FlowRateController(
                        table,
                        self._pump_state,
                        hysteresis=config.hysteresis,
                        minimum_setting=floor,
                    )

    def _build_policy(self):
        config = self.config
        if config.policy is PolicyKind.LB:
            return LoadBalancer()
        if config.policy is PolicyKind.MIGRATION:
            return ReactiveMigration()
        if config.policy is PolicyKind.TALB:
            return WeightedLoadBalancer(weight_provider=self._talb_weights)
        raise ConfigurationError(f"unknown policy {config.policy}")

    def _talb_weights(self, tmax: float) -> ThermalWeights:
        """Weight provider: the pre-processed set for the current
        cooling condition (pump setting or air)."""
        if self._cooling_kind is CoolingKind.AIR:
            setting = -1
        else:
            setting = self._pump_state.current_index if self._pump_state else -1
        return self.cache.thermal_weights(
            self.system, setting, self.config, self._cooling_kind
        )

    # --- main loop -------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the configured run and return its time series."""
        config = self.config
        grid = self.system.grid
        interval = config.sampling_interval
        n_intervals = int(round(config.duration / interval))
        steps = int(round(interval / config.quantum))
        core_names = self.system.core_names
        queues = CoreQueues(core_names)
        dpm = DpmPolicy(core_names, enabled=config.dpm_enabled)
        spec = config.spec

        setting0 = self._pump_state.current_index if self._pump_state else -1
        temperatures = self.system.initial_temperatures(
            self.power_model, spec.utilization, setting_index=setting0
        )
        # Vector-native per-interval state: unit/core temperatures live
        # in arrays aligned to the grid's stable unit ordering; the
        # small per-core dict is rebuilt only for the policy interface.
        unit_keys = list(grid.unit_keys)
        unit_vec = grid.unit_temperature_vector(temperatures)
        core_vec = unit_vec[grid.core_index]
        core_temps = dict(zip(core_names, core_vec.tolist()))
        forecaster = TemperatureForecaster(
            horizon_steps=int(round(CONTROL.forecast_horizon / interval))
        )

        arrivals = list(self.trace.threads)
        arrival_ptr = 0
        migrations_total = 0
        sojourn_sum = 0.0
        sojourn_count = 0

        rec_times = np.zeros(n_intervals)
        rec_tmax = np.zeros(n_intervals)
        rec_tmax_cell = np.zeros(n_intervals)
        rec_core_t = np.zeros((n_intervals, len(core_names)))
        rec_unit_t = np.zeros((n_intervals, len(unit_keys)))
        rec_chip_p = np.zeros(n_intervals)
        rec_pump_p = np.zeros(n_intervals)
        rec_setting = np.full(n_intervals, -1, dtype=int)
        rec_completed = np.zeros(n_intervals, dtype=int)
        rec_forecast = np.full(n_intervals, np.nan)
        rec_migrations = np.zeros(n_intervals, dtype=int)

        for k in range(n_intervals):
            t_start = k * interval
            busy_time = {name: 0.0 for name in core_names}
            completed_in_interval = 0
            states = dpm.states()

            for s in range(steps):
                now = t_start + s * config.quantum
                # Dispatch arrivals that landed in this quantum.
                while (
                    arrival_ptr < len(arrivals)
                    and arrivals[arrival_ptr].arrival < now + config.quantum
                ):
                    thread = arrivals[arrival_ptr]
                    target = self._policy.dispatch_target(queues, core_temps)
                    queues.enqueue(target, thread)
                    dpm.wake(target, now)
                    arrival_ptr += 1
                # Execute queue heads. A thread dispatched mid-quantum
                # only gets the post-arrival fraction of the quantum:
                # without the clamp it would execute before its own
                # arrival and could complete with a negative sojourn.
                busy = {}
                for name in core_names:
                    q = queues.queue(name)
                    if q:
                        head = q[0]
                        start = now if head.arrival <= now else head.arrival
                        available = max(0.0, (now + config.quantum) - start)
                        used = head.execute(available)
                        busy_time[name] += used
                        busy[name] = used > 0.0
                        if head.done:
                            finished = q.popleft()
                            completed_in_interval += 1
                            sojourn = (start + used) - finished.arrival
                            if sojourn < 0.0:
                                raise SchedulingError(
                                    f"negative sojourn {sojourn:.6f}s for thread "
                                    f"{finished.thread_id} (arrival "
                                    f"{finished.arrival:.6f}s)"
                                )
                            sojourn_sum += sojourn
                            sojourn_count += 1
                    else:
                        busy[name] = False
                states = dpm.observe(now + config.quantum, busy)

            t_end = t_start + interval
            if self._pump_state is not None:
                self._pump_state.advance(t_end)

            core_util = {
                name: min(1.0, busy_time[name] / interval) for name in core_names
            }
            unit_powers = self.power_model.unit_power_vector(
                unit_keys, core_util, states, spec.memory_intensity, unit_vec
            )
            setting = self._pump_state.current_index if self._pump_state else -1
            solver = self.system.transient_solver(setting, interval) \
                if self._cooling_kind is CoolingKind.LIQUID \
                else self.system.transient_solver(-1, interval)
            temperatures = solver.step(
                temperatures, grid.power_vector_from_array(unit_powers)
            )

            unit_vec = grid.unit_temperature_vector(temperatures)
            core_vec = unit_vec[grid.core_index]
            core_temps = dict(zip(core_names, core_vec.tolist()))
            # Runtime policies observe sensors (unit means), as in the
            # paper; the cell-level peak is recorded as ground truth.
            tmax = float(unit_vec.max())
            tmax_cell = grid.max_die_temperature(temperatures)

            forecaster.observe(tmax)
            if config.forecast_enabled:
                # The controller acts on the forecast, guarded by the
                # current reading: a prediction below an already-high
                # temperature must not postpone an upshift.
                prediction = max(forecaster.predict(), tmax)
            else:
                # Ablation: a purely reactive controller sees only the
                # current temperature and eats the full pump delay.
                prediction = tmax
            if self._controller is not None:
                if isinstance(self._controller, StepwiseFlowController):
                    # The [6] baseline is reactive by definition.
                    self._controller.update(tmax, t_end)
                else:
                    self._controller.update(prediction, t_end)

            self._policy.rebalance(queues, core_temps, t_end)
            if isinstance(self._policy, ReactiveMigration):
                migrations_total = self._policy.migration_count

            rec_times[k] = t_end
            rec_tmax[k] = tmax
            rec_tmax_cell[k] = tmax_cell
            rec_core_t[k] = core_vec
            rec_unit_t[k] = unit_vec
            rec_chip_p[k] = float(unit_powers.sum())
            if self._pump_state is not None:
                rec_pump_p[k] = self._pump_state.electrical_power()
                rec_setting[k] = self._pump_state.commanded_index
            rec_completed[k] = completed_in_interval
            rec_forecast[k] = prediction
            rec_migrations[k] = migrations_total

        return SimulationResult(
            times=rec_times,
            tmax=rec_tmax,
            tmax_cell=rec_tmax_cell,
            core_temperatures=rec_core_t,
            unit_temperatures=rec_unit_t,
            unit_names=[f"{d}:{name}" for d, name in unit_keys],
            core_names=core_names,
            chip_power=rec_chip_p,
            pump_power=rec_pump_p,
            flow_setting=rec_setting,
            completed_threads=rec_completed,
            forecast_tmax=rec_forecast,
            migrations=rec_migrations,
            retrain_count=forecaster.retrain_count,
            sojourn_sum=sojourn_sum,
            sojourn_count=sojourn_count,
        )


def simulate(
    config: SimulationConfig,
    trace: Optional[ThreadTrace] = None,
    cache: Optional[CharacterizationCache] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config, trace=trace, cache=cache).run()
