"""The co-simulation engine (Figure 4's loop), stepped per interval.

Each control interval (100 ms):

1. the scheduler substrate runs at a 10 ms quantum — thread arrivals
   are dispatched, per-core queues execute, DPM updates sleep states;
2. the interval's per-unit power map is computed (dynamic + leakage at
   the previous interval's temperatures);
3. the thermal RC network advances one backward-Euler step at the
   effective pump setting;
4. per-core sensors are sampled, the forecaster observes the new
   maximum temperature and predicts 500 ms ahead;
5. the flow-rate controller commands the pump (variable-flow mode);
6. the scheduling policy rebalances the queues.

The loop is exposed one interval at a time: :meth:`Simulator.step`
executes stages 1-6 once and returns an :class:`IntervalState`;
:meth:`Simulator.run` is a thin loop over it that also notifies
registered observers (:class:`IntervalObserver`), any of which can
stream, probe, or stop the run early. There is **no type dispatch** in
the loop: the policy, flow controller, and forecaster are built from
the string-keyed component registries (:mod:`repro.registry`) named by
the config, and behavioral differences are declared capabilities —
``FlowController.reacts_to_forecast`` selects the controller's input
signal, ``SchedulerPolicy.migration_count`` is recorded uniformly.

The engine caches flow-table characterizations and TALB weight sets per
thermal-system signature, since these are offline pre-processing steps
in the paper. The cache is an explicit
:class:`~repro.sim.cache.CharacterizationCache`: a process-wide default
instance backs the module-level helpers below, and a pre-warmed cache
can be injected per :class:`Simulator` (or installed with
:func:`set_default_cache` in a worker process) for batch fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Protocol, runtime_checkable

import numpy as np

from repro.constants import CONTROL
from repro.control.flow_table import FlowRateTable
from repro.errors import ConfigurationError, SchedulingError
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.dpm import DpmPolicy
from repro.pump.laing_ddc import PumpState
from repro.registry import (
    ControllerContext,
    FacilityContext,
    ForecasterContext,
    PolicyContext,
    controller_registry,
    facility_registry,
    forecaster_registry,
    policy_registry,
)
from repro.sched.base import CoreQueues
from repro.sched.weights import ThermalWeights
from repro.sim.cache import CharacterizationCache, system_for
from repro.sim.config import CoolingMode, SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.system import ThermalSystem
from repro.telemetry import trace as _trace
from repro.workload.generator import ThreadTrace

_default_cache = CharacterizationCache()


def default_cache() -> CharacterizationCache:
    """The process-wide characterization cache."""
    return _default_cache


def set_default_cache(cache: CharacterizationCache) -> None:
    """Replace the process-wide cache (e.g. with a pre-warmed one
    shipped to a :class:`repro.runner.BatchRunner` worker)."""
    global _default_cache
    _default_cache = cache


def characterized_table(
    system: ThermalSystem,
    power_model: PowerModel,
    config: SimulationConfig,
    cache: Optional[CharacterizationCache] = None,
) -> FlowRateTable:
    """The (cached) offline characterization for a system (Figure 5)."""
    return (cache or _default_cache).table(system, power_model, config)


def burst_floor_setting(
    system: ThermalSystem,
    power_model: PowerModel,
    config: SimulationConfig,
    cache: Optional[CharacterizationCache] = None,
) -> int:
    """Lowest setting that holds one fully loaded core below the target.

    See :meth:`repro.sim.cache.CharacterizationCache.floor`.
    """
    return (cache or _default_cache).floor(system, power_model, config)


def thermal_weights(
    system: ThermalSystem,
    setting_index: int,
    config: SimulationConfig,
    cooling: CoolingKind,
    cache: Optional[CharacterizationCache] = None,
) -> ThermalWeights:
    """The (cached) pre-processed TALB weights for one cooling condition."""
    return (cache or _default_cache).thermal_weights(
        system, setting_index, config, cooling
    )


@dataclass(frozen=True)
class IntervalState:
    """What one control interval produced — the observer's view.

    Attributes
    ----------
    index:
        Zero-based interval index just executed.
    n_intervals:
        Total intervals the configured run spans.
    time:
        Simulation time at the interval's end, s.
    tmax:
        Maximum sensor (unit-mean) temperature, degC.
    tmax_cell:
        Maximum cell-level die temperature (ground truth), degC.
    forecast_tmax:
        The temperature the controller decision was based on (forecast,
        or the measured value when forecasting is disabled).
    core_temperatures:
        Per-core sensor temperatures, degC.
    chip_power:
        Total chip power over the interval, W.
    pump_power:
        Pump electrical power (0 for air cooling), W.
    flow_setting:
        Commanded pump setting index (-1 for air cooling).
    completed_threads:
        Threads that finished during this interval.
    migrations:
        Cumulative running-thread migrations so far.
    facility_inlet_temperature:
        Coolant inlet temperature the interval's solve used, degC (NaN
        when no facility loop is co-simulated — the fixed-inlet run).
    facility_cooling_power:
        Facility cooling power (chiller + tower fans + facility pumps)
        this interval at aggregate scale, W (NaN without a facility).
    """

    index: int
    n_intervals: int
    time: float
    tmax: float
    tmax_cell: float
    forecast_tmax: float
    core_temperatures: Mapping[str, float]
    chip_power: float
    pump_power: float
    flow_setting: int
    completed_threads: int
    migrations: int
    facility_inlet_temperature: float = float("nan")
    facility_cooling_power: float = float("nan")

    @property
    def done(self) -> bool:
        """Whether this was the configured run's final interval."""
        return self.index + 1 >= self.n_intervals


@dataclass(frozen=True)
class PendingInterval:
    """One control interval paused between stages 1-2 and 3-6.

    :meth:`Simulator.step_begin` runs the scheduler substrate and the
    power model (stages 1-2) and returns this: everything the thermal
    solve needs, with the solve itself left to the caller. Feeding the
    solved field to :meth:`Simulator.step_finish` completes the
    interval (stages 4-6). The cohort runner uses the split to batch
    many runs' solves into one multi-RHS call against the shared LU;
    :meth:`Simulator.step` composes the same pieces with a per-run
    solve.

    Attributes
    ----------
    index:
        Zero-based interval index being executed.
    t_end:
        Simulation time at the interval's end, s.
    setting:
        Pump setting the solve must use (-1 for air cooling).
    temperatures:
        Node temperature field entering the solve, degC.
    node_power:
        Per-node power injection for the interval, W.
    unit_powers:
        Per-unit power map (recorded by ``step_finish``), W.
    completed_threads:
        Threads that finished during the interval's quanta.
    inlet_temperature:
        Coolant inlet temperature folded into ``node_power`` for this
        interval's solve (NaN for fixed-inlet runs, where the inlet
        lives in the network's assembled boundary vector).
    """

    index: int
    t_end: float
    setting: int
    temperatures: np.ndarray
    node_power: np.ndarray
    unit_powers: np.ndarray
    completed_threads: int
    inlet_temperature: float = float("nan")


@runtime_checkable
class IntervalObserver(Protocol):
    """A streaming hook :meth:`Simulator.run` invokes per interval.

    Returning a truthy value stops the run early (after every observer
    has seen the interval); the simulator then returns the truncated
    result. Plain callables with the same signature work too.
    """

    def on_interval(self, state: IntervalState) -> Optional[bool]:
        """Observe one executed interval; return True to stop the run."""
        ...


class _RunState:
    """Mutable per-run loop state (everything `run()` used to keep in
    locals), so the loop can advance one `step()` at a time."""

    __slots__ = (
        "n_intervals", "steps", "queues", "dpm", "forecaster", "spec",
        "temperatures", "unit_vec", "core_vec", "core_temps", "unit_keys",
        "arrivals", "arrival_ptr", "sojourn_sum", "sojourn_count", "k",
        "rec_times", "rec_tmax", "rec_tmax_cell", "rec_core_t", "rec_unit_t",
        "rec_chip_p", "rec_pump_p", "rec_setting", "rec_completed",
        "rec_forecast", "rec_migrations",
        "rec_fac_inlet", "rec_fac_cooling", "rec_fac_water", "rec_fac_free",
    )


class Simulator:
    """One configured simulation run.

    Parameters
    ----------
    config:
        The run configuration. Its ``policy``, ``controller``,
        ``forecaster``, and ``workload`` registry keys (plus their
        params) decide which components this simulator builds.
    trace:
        Optional pre-built thread trace; defaults to the trace the
        config's ``workload`` registry key builds (the Table II
        synthetic generator unless configured otherwise).
    cache:
        Optional :class:`~repro.sim.cache.CharacterizationCache` to
        draw offline characterizations from (defaults to the
        process-wide cache).
    observers:
        :class:`IntervalObserver`\\ s notified per interval by
        :meth:`run` (more can be added with :meth:`add_observer`).

    A simulator is one-shot: :meth:`step` walks the configured
    intervals exactly once (``run()`` is a thin loop over it), and
    :meth:`result` can snapshot the series at any point along the way.
    """

    def __init__(
        self,
        config: SimulationConfig,
        trace: Optional[ThreadTrace] = None,
        cache: Optional[CharacterizationCache] = None,
        observers: Iterable[IntervalObserver] = (),
    ) -> None:
        self.config = config
        self.cache = cache if cache is not None else _default_cache
        self.system, self.power_model = system_for(config)
        cooling = self.system.cooling
        self.trace = (
            trace if trace is not None else self.cache.thread_trace(config)
        )
        self._cooling_kind = cooling
        self._observers = list(observers)
        self._policy = policy_registry().create(
            config.policy,
            config.policy_params,
            PolicyContext(
                config=config,
                system=self.system,
                power_model=self.power_model,
                cache=self.cache,
                weight_provider=self._talb_weights,
            ),
        )
        self._pump_state: Optional[PumpState] = None
        self._controller = None
        if config.cooling.is_liquid:
            initial = self.system.pump.n_settings - 1  # Start safe (max flow).
            self._pump_state = PumpState(self.system.pump, current_index=initial)
            if config.cooling is CoolingMode.LIQUID_VARIABLE:
                self._controller = controller_registry().create(
                    config.controller,
                    config.controller_params,
                    ControllerContext(
                        config=config,
                        pump_state=self._pump_state,
                        system=self.system,
                        power_model=self.power_model,
                        cache=self.cache,
                    ),
                )
        self._facility = facility_registry().create(
            config.facility,
            config.facility_params,
            FacilityContext(
                config=config,
                initial_inlet_temperature=config.thermal_params.inlet_temperature,
                system=self.system,
            ),
        )
        if self._facility is not None and not config.cooling.is_liquid:
            raise ConfigurationError(
                f"facility {config.facility!r} co-simulates the liquid "
                "cooling loop; air-cooled runs reject no coolant heat "
                "(use facility='none')"
            )
        self._state: Optional[_RunState] = None
        self._initial_temperatures: Optional[np.ndarray] = None
        self._pending = False

    def add_observer(self, observer: IntervalObserver) -> None:
        """Register another per-interval observer."""
        self._observers.append(observer)

    def _talb_weights(self, tmax: float) -> ThermalWeights:
        """Weight provider: the pre-processed set for the current
        cooling condition (pump setting or air)."""
        if self._cooling_kind is CoolingKind.AIR:
            setting = -1
        else:
            setting = self._pump_state.current_index if self._pump_state else -1
        return self.cache.thermal_weights(
            self.system, setting, self.config, self._cooling_kind
        )

    # --- stepped execution -------------------------------------------------

    @property
    def interval_count(self) -> int:
        """Control intervals the configured run spans."""
        return int(round(self.config.duration / self.config.sampling_interval))

    @property
    def intervals_completed(self) -> int:
        """Intervals executed so far."""
        return self._state.k if self._state is not None else 0

    @property
    def finished(self) -> bool:
        """Whether every configured interval has executed."""
        return self.intervals_completed >= self.interval_count

    # --- shared steady-state initialization --------------------------------

    def initial_condition_key(self) -> tuple:
        """Identity of the steady-state field this run starts from.

        Two simulators of one cohort (same :class:`ThermalSystem`) with
        equal keys start from bit-identical initial fields, so the
        cohort runner computes the steady solve once per key and
        installs it with :meth:`set_initial_temperatures`.
        """
        setting0 = self._pump_state.current_index if self._pump_state else -1
        return (self.config.spec.utilization, setting0)

    def steady_initial_temperatures(self) -> np.ndarray:
        """The steady-state initial field — exactly the computation the
        first :meth:`step` performs when nothing was injected."""
        setting0 = self._pump_state.current_index if self._pump_state else -1
        return self.system.initial_temperatures(
            self.power_model, self.config.spec.utilization, setting_index=setting0
        )

    def set_initial_temperatures(self, temperatures: np.ndarray) -> None:
        """Install a pre-computed steady-state initial field.

        Must equal what :meth:`steady_initial_temperatures` would
        return (same system, utilization, initial pump setting) — the
        cohort runner shares one steady solve across runs this way,
        keeping results bit-identical to each run solving for itself.
        Only valid before the first step.
        """
        if self._state is not None:
            raise ConfigurationError(
                "initial temperatures must be installed before the first step"
            )
        self._initial_temperatures = np.array(temperatures, dtype=float, copy=True)

    def _ensure_state(self) -> _RunState:
        if self._state is not None:
            return self._state
        config = self.config
        grid = self.system.grid
        interval = config.sampling_interval
        core_names = self.system.core_names

        st = _RunState()
        st.n_intervals = self.interval_count
        st.steps = int(round(interval / config.quantum))
        st.queues = CoreQueues(core_names)
        st.dpm = DpmPolicy(core_names, enabled=config.dpm_enabled)
        st.spec = config.spec

        if self._initial_temperatures is not None:
            st.temperatures = self._initial_temperatures
        else:
            setting0 = self._pump_state.current_index if self._pump_state else -1
            st.temperatures = self.system.initial_temperatures(
                self.power_model, st.spec.utilization, setting_index=setting0
            )
        # Vector-native per-interval state: unit/core temperatures live
        # in arrays aligned to the grid's stable unit ordering; the
        # small per-core dict is rebuilt only for the policy interface.
        st.unit_keys = list(grid.unit_keys)
        st.unit_vec = grid.unit_temperature_vector(st.temperatures)
        st.core_vec = st.unit_vec[grid.core_index]
        st.core_temps = dict(zip(core_names, st.core_vec.tolist()))
        st.forecaster = forecaster_registry().create(
            config.forecaster,
            config.forecaster_params,
            ForecasterContext(
                config=config,
                horizon_steps=int(round(CONTROL.forecast_horizon / interval)),
            ),
        )

        st.arrivals = list(self.trace.threads)
        st.arrival_ptr = 0
        st.sojourn_sum = 0.0
        st.sojourn_count = 0
        st.k = 0

        n = st.n_intervals
        st.rec_times = np.zeros(n)
        st.rec_tmax = np.zeros(n)
        st.rec_tmax_cell = np.zeros(n)
        st.rec_core_t = np.zeros((n, len(core_names)))
        st.rec_unit_t = np.zeros((n, len(st.unit_keys)))
        st.rec_chip_p = np.zeros(n)
        st.rec_pump_p = np.zeros(n)
        st.rec_setting = np.full(n, -1, dtype=int)
        st.rec_completed = np.zeros(n, dtype=int)
        st.rec_forecast = np.full(n, np.nan)
        st.rec_migrations = np.zeros(n, dtype=int)
        if self._facility is not None:
            st.rec_fac_inlet = np.zeros(n)
            st.rec_fac_cooling = np.zeros(n)
            st.rec_fac_water = np.zeros(n)
            st.rec_fac_free = np.zeros(n, dtype=bool)
        else:
            st.rec_fac_inlet = None
            st.rec_fac_cooling = None
            st.rec_fac_water = None
            st.rec_fac_free = None
        self._state = st
        return st

    def step_begin(self) -> PendingInterval:
        """Stages 1-2 of one control interval: scheduler quanta + power.

        Returns the thermal solve's inputs; the caller performs the
        backward-Euler step — alone, or batched across a cohort sharing
        this system's LU — and hands the solved field to
        :meth:`step_finish`. :meth:`step` is the fused per-run form.
        """
        with _trace.span("step_begin") as sb_span:
            pending = self._step_begin_impl()
            sb_span.set_attrs(index=pending.index)
            return pending

    def _step_begin_impl(self) -> PendingInterval:
        st = self._ensure_state()
        if self._pending:
            raise ConfigurationError(
                "step_begin called with an interval still pending; feed "
                "the solved field to step_finish first"
            )
        if st.k >= st.n_intervals:
            raise ConfigurationError(
                "simulation already ran its configured duration; build a "
                "new Simulator to run again"
            )
        config = self.config
        grid = self.system.grid
        interval = config.sampling_interval
        core_names = self.system.core_names
        k = st.k

        t_start = k * interval
        busy_time = {name: 0.0 for name in core_names}
        completed_in_interval = 0
        states = st.dpm.states()

        for s in range(st.steps):
            now = t_start + s * config.quantum
            # Dispatch arrivals that landed in this quantum.
            while (
                st.arrival_ptr < len(st.arrivals)
                and st.arrivals[st.arrival_ptr].arrival < now + config.quantum
            ):
                thread = st.arrivals[st.arrival_ptr]
                target = self._policy.dispatch_target(st.queues, st.core_temps)
                st.queues.enqueue(target, thread)
                st.dpm.wake(target, now)
                st.arrival_ptr += 1
            # Execute queue heads. A thread dispatched mid-quantum
            # only gets the post-arrival fraction of the quantum:
            # without the clamp it would execute before its own
            # arrival and could complete with a negative sojourn.
            busy = {}
            for name in core_names:
                q = st.queues.queue(name)
                if q:
                    head = q[0]
                    start = now if head.arrival <= now else head.arrival
                    available = max(0.0, (now + config.quantum) - start)
                    used = head.execute(available)
                    busy_time[name] += used
                    busy[name] = used > 0.0
                    if head.done:
                        finished = q.popleft()
                        completed_in_interval += 1
                        sojourn = (start + used) - finished.arrival
                        if sojourn < 0.0:
                            raise SchedulingError(
                                f"negative sojourn {sojourn:.6f}s for thread "
                                f"{finished.thread_id} (arrival "
                                f"{finished.arrival:.6f}s)"
                            )
                        st.sojourn_sum += sojourn
                        st.sojourn_count += 1
                else:
                    busy[name] = False
            states = st.dpm.observe(now + config.quantum, busy)

        t_end = t_start + interval
        if self._pump_state is not None:
            self._pump_state.advance(t_end)

        core_util = {
            name: min(1.0, busy_time[name] / interval) for name in core_names
        }
        unit_powers = self.power_model.unit_power_vector(
            st.unit_keys, core_util, states, st.spec.memory_intensity, st.unit_vec
        )
        # The solve setting: the commanded pump setting for liquid
        # cooling, -1 (the air network) otherwise.
        setting = (
            self._pump_state.current_index
            if self._pump_state is not None
            and self._cooling_kind is CoolingKind.LIQUID
            else -1
        )
        node_power = grid.power_vector_from_array(unit_powers)
        inlet_temperature = float("nan")
        if self._facility is not None:
            # Closed-loop coupling: the facility's current loop
            # temperature is this interval's coolant inlet. The inlet
            # enters the ODE only through the (linear) boundary term,
            # so the change is folded into the right-hand side here —
            # the memoized network and its factorization are reused
            # untouched, on the fused, cohort-batched, and krylov solve
            # paths alike.
            inlet_temperature = self._facility.inlet_temperature
            delta = self.system.network(setting).inlet_boundary_delta(
                inlet_temperature
            )
            if delta is not None:
                node_power = node_power + delta
        self._pending = True
        return PendingInterval(
            index=k,
            t_end=t_end,
            setting=setting,
            temperatures=st.temperatures,
            node_power=node_power,
            unit_powers=unit_powers,
            completed_threads=completed_in_interval,
            inlet_temperature=inlet_temperature,
        )

    def step_finish(
        self, pending: PendingInterval, new_temperatures: np.ndarray
    ) -> IntervalState:
        """Stages 4-6: sensors, forecast, control, rebalance, record.

        ``new_temperatures`` is the solved field for ``pending`` (what
        ``transient_solver(pending.setting, dt).step(...)`` returns, or
        one column of the cohort's :meth:`~repro.thermal.solver.
        TransientSolver.step_many` block).
        """
        with _trace.span("step_finish", index=pending.index):
            return self._step_finish_impl(pending, new_temperatures)

    def _step_finish_impl(
        self, pending: PendingInterval, new_temperatures: np.ndarray
    ) -> IntervalState:
        st = self._state
        if st is None or not self._pending:
            raise ConfigurationError(
                "step_finish called without a pending step_begin"
            )
        if pending.index != st.k:
            raise ConfigurationError(
                f"pending interval {pending.index} does not match run "
                f"state at interval {st.k}"
            )
        self._pending = False
        config = self.config
        grid = self.system.grid
        core_names = self.system.core_names
        k = pending.index
        t_end = pending.t_end
        completed_in_interval = pending.completed_threads
        unit_powers = pending.unit_powers

        st.temperatures = new_temperatures
        st.unit_vec = grid.unit_temperature_vector(st.temperatures)
        st.core_vec = st.unit_vec[grid.core_index]
        st.core_temps = dict(zip(core_names, st.core_vec.tolist()))
        # Runtime policies observe sensors (unit means), as in the
        # paper; the cell-level peak is recorded as ground truth.
        tmax = float(st.unit_vec.max())
        tmax_cell = grid.max_die_temperature(st.temperatures)

        st.forecaster.observe(tmax)
        if config.forecast_enabled:
            # The controller acts on the forecast, guarded by the
            # current reading: a prediction below an already-high
            # temperature must not postpone an upshift.
            prediction = max(st.forecaster.predict(), tmax)
        else:
            # Ablation: a purely reactive controller sees only the
            # current temperature and eats the full pump delay.
            prediction = tmax
        if self._controller is not None:
            # Declared capability, not type dispatch: proactive
            # controllers consume the forecast, reactive ones the
            # measured temperature.
            signal = prediction if self._controller.reacts_to_forecast else tmax
            self._controller.update(signal, t_end)

        self._policy.rebalance(st.queues, st.core_temps, t_end)

        st.rec_times[k] = t_end
        st.rec_tmax[k] = tmax
        st.rec_tmax_cell[k] = tmax_cell
        st.rec_core_t[k] = st.core_vec
        st.rec_unit_t[k] = st.unit_vec
        st.rec_chip_p[k] = float(unit_powers.sum())
        if self._pump_state is not None:
            st.rec_pump_p[k] = self._pump_state.electrical_power()
            st.rec_setting[k] = self._pump_state.commanded_index
        st.rec_completed[k] = completed_in_interval
        st.rec_forecast[k] = prediction
        st.rec_migrations[k] = self._policy.migration_count

        fac_inlet = float("nan")
        fac_cooling = float("nan")
        if self._facility is not None:
            # Close the loop: the heat the coolant carried out this
            # interval (sensible-heat balance over the channel rows)
            # drives the facility energy balance, whose new loop
            # temperature becomes the next interval's inlet.
            network = self.system.network(pending.setting)
            q_chip = network.coolant_heat_rejected(
                st.temperatures, pending.inlet_temperature
            )
            fac_state = self._facility.advance(
                config.sampling_interval,
                q_chip,
                float(st.rec_chip_p[k]),
                float(st.rec_pump_p[k]),
            )
            st.rec_fac_inlet[k] = pending.inlet_temperature
            st.rec_fac_cooling[k] = fac_state.cooling_power
            st.rec_fac_water[k] = fac_state.water_use
            st.rec_fac_free[k] = fac_state.free_cooling
            fac_inlet = pending.inlet_temperature
            fac_cooling = fac_state.cooling_power
        st.k = k + 1

        return IntervalState(
            index=k,
            n_intervals=st.n_intervals,
            time=t_end,
            tmax=tmax,
            tmax_cell=tmax_cell,
            forecast_tmax=prediction,
            core_temperatures=dict(st.core_temps),
            chip_power=float(st.rec_chip_p[k]),
            pump_power=float(st.rec_pump_p[k]),
            flow_setting=int(st.rec_setting[k]),
            completed_threads=completed_in_interval,
            migrations=int(st.rec_migrations[k]),
            facility_inlet_temperature=fac_inlet,
            facility_cooling_power=fac_cooling,
        )

    def step(self) -> IntervalState:
        """Execute one control interval (stages 1-6) and record it."""
        with _trace.span("step") as step_span:
            pending = self.step_begin()
            step_span.set_attrs(index=pending.index, setting=pending.setting)
            solver = self.system.transient_solver(
                pending.setting, self.config.sampling_interval
            )
            new_temperatures = solver.step(pending.temperatures, pending.node_power)
            return self.step_finish(pending, new_temperatures)

    def result(self) -> SimulationResult:
        """The recorded series through the last executed interval.

        Callable at any point — mid-run (a probe), after an observer
        stopped the run early (a truncated but fully consistent
        series), or at completion (the full run).
        """
        st = self._ensure_state()
        k = st.k
        return SimulationResult(
            times=st.rec_times[:k].copy(),
            tmax=st.rec_tmax[:k].copy(),
            tmax_cell=st.rec_tmax_cell[:k].copy(),
            core_temperatures=st.rec_core_t[:k].copy(),
            unit_temperatures=st.rec_unit_t[:k].copy(),
            unit_names=[f"{d}:{name}" for d, name in st.unit_keys],
            core_names=self.system.core_names,
            chip_power=st.rec_chip_p[:k].copy(),
            pump_power=st.rec_pump_p[:k].copy(),
            flow_setting=st.rec_setting[:k].copy(),
            completed_threads=st.rec_completed[:k].copy(),
            forecast_tmax=st.rec_forecast[:k].copy(),
            migrations=st.rec_migrations[:k].copy(),
            retrain_count=st.forecaster.retrain_count,
            sojourn_sum=st.sojourn_sum,
            sojourn_count=st.sojourn_count,
            facility_inlet=(
                st.rec_fac_inlet[:k].copy() if st.rec_fac_inlet is not None else None
            ),
            facility_cooling_power=(
                st.rec_fac_cooling[:k].copy()
                if st.rec_fac_cooling is not None
                else None
            ),
            facility_water_use=(
                st.rec_fac_water[:k].copy() if st.rec_fac_water is not None else None
            ),
            facility_free_cooling=(
                st.rec_fac_free[:k].copy() if st.rec_fac_free is not None else None
            ),
            facility_scale=(
                float(self._facility.scale) if self._facility is not None else 1.0
            ),
        )

    def run(self) -> SimulationResult:
        """Execute the remaining intervals, notifying observers.

        Every observer sees every interval (no short-circuiting); if
        any returned True the run stops after that interval and the
        truncated series is returned.
        """
        while not self.finished:
            state = self.step()
            stop = False
            for observer in self._observers:
                hook = getattr(observer, "on_interval", observer)
                if hook(state):
                    stop = True
            if stop:
                break
        return self.result()


def simulate(
    config: SimulationConfig,
    trace: Optional[ThreadTrace] = None,
    cache: Optional[CharacterizationCache] = None,
    observers: Iterable[IntervalObserver] = (),
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config, trace=trace, cache=cache, observers=observers).run()
