"""Explicit, picklable cache of offline characterizations.

The paper's controller and TALB policy both rely on offline
pre-processing: the flow-rate look-up table (Figure 5), the burst-floor
setting (DESIGN.md section 8), and the per-setting thermal weight sets
(Eq. 8). Historically these lived in module-level dictionaries inside
``repro.sim.engine``, which had two defects:

* the cache key omitted the pump model, so two systems with different
  pumps but otherwise equal configurations would share one
  characterized flow table;
* module globals cannot be handed to worker processes explicitly, so a
  process fan-out re-derived every characterization in every worker.

:class:`CharacterizationCache` fixes both: keys include the pump
signature, and the object holds only plain picklable values
(:class:`~repro.control.flow_table.FlowRateTable`, ints,
:class:`~repro.sched.weights.ThermalWeights`), so a pre-warmed cache
can be shipped to ``ProcessPoolExecutor`` workers by
:class:`repro.runner.BatchRunner`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Optional

from repro.control.flow_table import FlowRateTable
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.registry import (
    WorkloadContext,
    controller_registry,
    policy_registry,
    workload_registry,
)
from repro.sched.weights import ThermalWeights
from repro.sim.config import CoolingMode, SimulationConfig
from repro.telemetry import metrics as _metrics
from repro.workload.generator import ThreadTrace

_CHAR_HITS = _metrics.counter("cache.characterization.hits")
_CHAR_MISSES = _metrics.counter("cache.characterization.misses")
"""Characterization-cache traffic, labeled by artifact kind
(``kind=table|floor|weights|trace``) — the telemetry view of whether a
campaign's workers received finished artifacts or re-derived them."""

_SYSTEM_HITS = _metrics.counter("cache.system.hits")
_SYSTEM_MISSES = _metrics.counter("cache.system.misses")
"""System-memo traffic: a miss is a full network assembly plus
factorization; warm campaigns should be nearly all hits."""

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.system import ThermalSystem


_system_memo: "OrderedDict[tuple, tuple]" = OrderedDict()
_SYSTEM_MEMO_CAPACITY = 4
"""Process-local LRU of (ThermalSystem, PowerModel) pairs keyed by
their config identity. Simulators for the same system share assembled
networks and LU factorizations — sweep/batch runs that revisit a
configuration skip the per-run assembly+factorization cost entirely.
Safe to share: ThermalSystem holds no per-run mutable state (pump
state, controllers, and queues live in the Simulator), and a rebuilt
system is bit-identical to a cached one (canonical assembly +
deterministic factorization), so results never depend on memo hits.
The small capacity bounds resident LU memory at paper-scale grids."""


def clear_system_memo() -> None:
    """Drop all memoized thermal systems (frees their factorizations)."""
    _system_memo.clear()


def _system_memo_key(config: SimulationConfig) -> tuple:
    """Identity of the thermal system a config constructs.

    Must cover every ``SimulationConfig`` field that
    :func:`system_for` feeds into ``ThermalSystem.__init__`` — shared
    by the memo and :meth:`CharacterizationCache.warm` so the two can
    never disagree about which configs share a system.
    """
    return (
        config.n_layers,
        config.cooling is CoolingMode.AIR,
        config.nx,
        config.ny,
        config.thermal_params,
        config.solver,
    )


def system_for(config: SimulationConfig) -> tuple["ThermalSystem", "PowerModel"]:
    """The thermal system and power model a config specifies.

    The single construction path shared by
    :class:`repro.sim.engine.Simulator` and
    :meth:`CharacterizationCache.warm`, so a pre-warmed cache is always
    derived from exactly the system a cold simulator would build.
    Memoized per config identity (see ``_system_memo``).
    """
    from repro.sim.system import ThermalSystem

    key = _system_memo_key(config)
    hit = _system_memo.get(key)
    if hit is not None:
        _system_memo.move_to_end(key)
        _SYSTEM_HITS.inc()
        return hit
    _SYSTEM_MISSES.inc()
    cooling = (
        CoolingKind.AIR if config.cooling is CoolingMode.AIR else CoolingKind.LIQUID
    )
    system = ThermalSystem(
        n_layers=config.n_layers,
        cooling=cooling,
        nx=config.nx,
        ny=config.ny,
        params=config.thermal_params,
        solver=config.solver,
    )
    pair = (system, PowerModel(system.stack, leakage=LeakageModel()))
    _system_memo[key] = pair
    while len(_system_memo) > _SYSTEM_MEMO_CAPACITY:
        _system_memo.popitem(last=False)
    return pair


def system_key(
    config: SimulationConfig,
    cooling: CoolingKind,
    pump_signature: Optional[tuple] = None,
) -> tuple:
    """Hashable identity of a characterized thermal system.

    Includes the pump signature so systems that differ only in their
    pump (setting ladder, cavity split, derating) never share a cached
    flow table or weight set.
    """
    return (
        config.n_layers,
        cooling,
        config.nx,
        config.ny,
        config.thermal_params,
        config.target_temperature,
        config.characterization_guard,
        pump_signature,
    )


class CharacterizationCache:
    """Caches the offline pre-processing artifacts of the paper.

    All values are plain data (numpy arrays, dicts of floats, ints), so
    instances pickle cleanly; the sparse LU factorizations stay inside
    :class:`~repro.sim.system.ThermalSystem` and are rebuilt per
    process.
    """

    def __init__(self) -> None:
        self.tables: dict[tuple, FlowRateTable] = {}
        self.floors: dict[tuple, int] = {}
        self.weight_sets: dict[tuple, ThermalWeights] = {}
        self.traces: dict[tuple, ThreadTrace] = {}

    # --- key helpers ---------------------------------------------------------

    @staticmethod
    def _key(config: SimulationConfig, cooling: CoolingKind, system) -> tuple:
        pump = getattr(system, "pump", None)
        return system_key(
            config, cooling, pump.signature() if pump is not None else None
        )

    # --- cached characterizations -------------------------------------------

    def table(
        self,
        system: "ThermalSystem",
        power_model: "PowerModel",
        config: SimulationConfig,
    ) -> FlowRateTable:
        """The (cached) offline flow-table characterization (Figure 5)."""
        key = self._key(config, CoolingKind.LIQUID, system)
        if key in self.tables:
            _CHAR_HITS.inc(kind="table")
        else:
            _CHAR_MISSES.inc(kind="table")
            self.tables[key] = FlowRateTable.characterize(
                steady_tmax_batch=lambda setting, utils: system.steady_tmax_batch(
                    power_model, utils, setting_index=setting
                ),
                n_settings=system.pump.n_settings,
                per_cavity_flows=system.pump.per_cavity_flows(),
                target=config.target_temperature - config.characterization_guard,
            )
        return self.tables[key]

    def floor(
        self,
        system: "ThermalSystem",
        power_model: "PowerModel",
        config: SimulationConfig,
    ) -> int:
        """Lowest setting that holds one fully loaded core below target.

        The characterization assumes uniform utilization; a single long
        thread concentrates its core's power and runs locally hotter,
        so the controller never drops below this floor (DESIGN.md
        section 8).
        """
        key = self._key(config, CoolingKind.LIQUID, system)
        if key in self.floors:
            _CHAR_HITS.inc(kind="floor")
        else:
            _CHAR_MISSES.inc(kind="floor")
            floor = system.pump.n_settings - 1
            for k in range(system.pump.n_settings):
                tmax = system.steady_tmax_concentrated(power_model, setting_index=k)
                if tmax <= config.target_temperature - 0.5:
                    floor = k
                    break
            self.floors[key] = floor
        return self.floors[key]

    def thermal_weights(
        self,
        system: "ThermalSystem",
        setting_index: int,
        config: SimulationConfig,
        cooling: CoolingKind,
    ) -> ThermalWeights:
        """The (cached) pre-processed TALB weights for one cooling
        condition (pump setting, or -1 for air)."""
        key = self._key(config, cooling, system) + (
            setting_index,
            config.talb_weight_target,
        )
        if key in self.weight_sets:
            _CHAR_HITS.inc(kind="weights")
        else:
            _CHAR_MISSES.inc(kind="weights")
            self.weight_sets[key] = ThermalWeights.from_network(
                system.network(setting_index),
                target_temperature=config.talb_weight_target,
                # Probe with the non-core units at a representative power
                # so crossbar/L2 heating is reflected in the per-core
                # budgets.
                background_power=1.0,
            )
        return self.weight_sets[key]

    # --- workload traces ------------------------------------------------------

    @staticmethod
    def _trace_key(config: SimulationConfig) -> tuple:
        """Identity of the thread trace a config builds — every config
        field the workload context exposes to the model."""
        return (
            config.workload,
            config.workload_params,
            config.benchmark_name,
            config.n_cores,
            config.duration,
            config.seed,
        )

    @staticmethod
    def _build_trace(config: SimulationConfig) -> ThreadTrace:
        ctx = WorkloadContext(
            spec=config.spec,
            n_cores=config.n_cores,
            duration=config.duration,
            seed=config.seed,
            config=config,
        )
        model = workload_registry().create(
            config.workload, config.workload_params, ctx
        )
        return model.build_trace(ctx)

    def thread_trace(self, config: SimulationConfig) -> ThreadTrace:
        """The thread trace a config's workload model builds.

        Models declaring the ``cache_trace`` trait (file-backed ones
        like ``trace-replay``) are built once per identity and reused —
        a warmed cache parses the trace file in the parent and ships
        the finished trace to every worker. Everything else is rebuilt
        per call (deterministic, cheap, and a sweep of distinct seeds
        would only bloat the cache).
        """
        if not workload_registry().get(config.workload).trait("cache_trace"):
            return self._build_trace(config)
        key = self._trace_key(config)
        if key in self.traces:
            _CHAR_HITS.inc(kind="trace")
        else:
            _CHAR_MISSES.inc(kind="trace")
            self.traces[key] = self._build_trace(config)
        # Always a pristine copy: the scheduler mutates Thread objects,
        # so the cached original must never run.
        return self.traces[key].pristine()

    # --- warm-up and composition ----------------------------------------------

    def warm(self, configs: Iterable[SimulationConfig]) -> "CharacterizationCache":
        """Pre-derive every characterization a set of runs will need.

        Builds each unique thermal system once in the calling process
        (through the same :func:`system_for` path a cold
        :class:`~repro.sim.engine.Simulator` uses) and populates the
        flow table, burst floor, and thermal weight sets, so worker
        processes receive finished artifacts instead of re-deriving
        them. Which artifacts a config needs is read from its
        components' registry traits (``needs_flow_table`` on
        controllers, ``uses_thermal_weights`` on policies), so a
        user-registered component warms correctly without this method
        knowing it exists. Returns ``self``.
        """
        systems: dict[tuple, tuple["ThermalSystem", "PowerModel"]] = {}
        for config in configs:
            sys_id = _system_memo_key(config)
            if sys_id not in systems:
                systems[sys_id] = system_for(config)
            system, power_model = systems[sys_id]
            cooling = system.cooling
            needs_lut = (
                config.cooling is CoolingMode.LIQUID_VARIABLE
                and controller_registry().get(config.controller)
                .trait("needs_flow_table")
            )
            if needs_lut:
                self.table(system, power_model, config)
                self.floor(system, power_model, config)
            if policy_registry().get(config.policy).trait("uses_thermal_weights"):
                if cooling is CoolingKind.AIR:
                    self.thermal_weights(system, -1, config, cooling)
                elif config.cooling is CoolingMode.LIQUID_MAX:
                    # The pump never leaves the top setting.
                    top = system.pump.n_settings - 1
                    self.thermal_weights(system, top, config, cooling)
                else:
                    for k in range(system.pump.n_settings):
                        self.thermal_weights(system, k, config, cooling)
            if workload_registry().get(config.workload).trait("cache_trace"):
                self.thread_trace(config)
        return self

    def merge(self, other: "CharacterizationCache") -> None:
        """Fold another cache's entries into this one (first writer wins)."""
        for name in ("tables", "floors", "weight_sets", "traces"):
            mine, theirs = getattr(self, name), getattr(other, name)
            for key, value in theirs.items():
                mine.setdefault(key, value)

    def clear(self) -> None:
        """Drop every cached characterization."""
        self.tables.clear()
        self.floors.clear()
        self.weight_sets.clear()
        self.traces.clear()

    def __len__(self) -> int:
        return (
            len(self.tables)
            + len(self.floors)
            + len(self.weight_sets)
            + len(self.traces)
        )

    def stats(self) -> dict[str, int]:
        """Entry counts per artifact kind (for logging/tests)."""
        return {
            "tables": len(self.tables),
            "floors": len(self.floors),
            "weight_sets": len(self.weight_sets),
            "traces": len(self.traces),
        }
