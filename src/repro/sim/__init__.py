"""Co-simulation of workload, scheduling, power, thermal, and control."""

from repro.sim.cache import CharacterizationCache
from repro.sim.config import (
    ControllerKind,
    CoolingMode,
    PolicyKind,
    SimulationConfig,
)
from repro.sim.engine import IntervalObserver, IntervalState, Simulator, simulate
from repro.sim.results import SimulationResult
from repro.sim.system import ThermalSystem

__all__ = [
    "CharacterizationCache",
    "SimulationConfig",
    "CoolingMode",
    "PolicyKind",
    "ControllerKind",
    "Simulator",
    "simulate",
    "IntervalState",
    "IntervalObserver",
    "SimulationResult",
    "ThermalSystem",
]
