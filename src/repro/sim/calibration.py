"""Calibration sweeps that produced the default resistance scales.

DESIGN.md section 5 documents the two calibrated knobs:

* ``resistance_scale`` — scales the BEOL + convective-film resistances
  of the liquid path so the hottest Table II workload (Web-high,
  ~93 % utilization) sits *just below* the 80 degC target at the
  maximum pump setting and near 90 degC at the minimum, reproducing
  Figure 5's 70-90 degC operating band;
* ``air_resistance_scale`` — scales the BEOL + TIM resistances of the
  air path so the same workload reaches the high-80s on the air-cooled
  2-layer stack (Figure 6's hot-spot regime).

Run :func:`calibrate_liquid_scale` / :func:`calibrate_air_scale` to
re-derive the defaults after changing any physical parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.system import ThermalSystem
from repro.thermal.rc_network import ThermalParams

#: Web-high's Table II utilization, the calibration workload.
_CAL_UTILIZATION = 0.9287

#: Web-high's memory intensity (most memory-intensive workload).
_CAL_MEMORY_INTENSITY = 1.0


@dataclass(frozen=True)
class CalibrationTargets:
    """Temperatures the calibration drives the model towards."""

    liquid_tmax_at_max_flow: float = 77.7
    air_tmax: float = 85.1
    tolerance: float = 0.25


def _liquid_tmax(scale: float, n_layers: int, setting_index: int) -> float:
    params = ThermalParams(resistance_scale=scale)
    system = ThermalSystem(n_layers, CoolingKind.LIQUID, params=params)
    model = PowerModel(system.stack, leakage=LeakageModel())
    return system.steady_tmax(
        model,
        _CAL_UTILIZATION,
        setting_index=setting_index,
        memory_intensity=_CAL_MEMORY_INTENSITY,
    )


def _air_tmax(scale: float, n_layers: int) -> float:
    params = ThermalParams(air_resistance_scale=scale)
    system = ThermalSystem(n_layers, CoolingKind.AIR, params=params)
    model = PowerModel(system.stack, leakage=LeakageModel())
    return system.steady_tmax(
        model, _CAL_UTILIZATION, memory_intensity=_CAL_MEMORY_INTENSITY
    )


def _bisect(fn, target: float, lo: float, hi: float, tolerance: float, iters: int = 40) -> float:
    """Find scale with fn(scale) ~= target; fn must be increasing."""
    f_lo = fn(lo)
    f_hi = fn(hi)
    if not f_lo <= target <= f_hi:
        raise ConfigurationError(
            f"target {target} outside achievable range [{f_lo:.1f}, {f_hi:.1f}]"
        )
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        f_mid = fn(mid)
        if abs(f_mid - target) <= tolerance:
            return mid
        if f_mid < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def calibrate_liquid_scale(
    n_layers: int = 2,
    targets: CalibrationTargets = CalibrationTargets(),
    lo: float = 1.0,
    hi: float = 12.0,
) -> float:
    """Derive ``resistance_scale``: Web-high at max flow hits the target.

    The returned value reproduces ``DEFAULT_RESISTANCE_SCALE`` (4.5)
    for the 2-layer stack with the shipped physical parameters.
    """
    max_setting = ThermalSystem(n_layers, CoolingKind.LIQUID).pump.n_settings - 1
    return _bisect(
        lambda s: _liquid_tmax(s, n_layers, max_setting),
        targets.liquid_tmax_at_max_flow,
        lo,
        hi,
        targets.tolerance,
    )


def calibrate_air_scale(
    n_layers: int = 2,
    targets: CalibrationTargets = CalibrationTargets(),
    lo: float = 0.5,
    hi: float = 8.0,
) -> float:
    """Derive ``air_resistance_scale``: Web-high in the hot-spot regime.

    The returned value reproduces ``DEFAULT_AIR_RESISTANCE_SCALE`` (3.0)
    for the 2-layer stack with the shipped physical parameters.
    """
    return _bisect(
        lambda s: _air_tmax(s, n_layers),
        targets.air_tmax,
        lo,
        hi,
        targets.tolerance,
    )
