"""On-disk formats of the distributed campaign subsystem.

A campaign directory (usually on a filesystem shared by every worker
host) is laid out as::

    campaign/
      ledger.jsonl          # the work ledger: header + one shard line each
      shards/<shard>.jsonl  # per-shard result journals (run rows + fold payloads)
      leases/<shard>.json   # live leases (exclusive-create claim files)

The **ledger** is written once by the planner (:mod:`repro.dist.plan`)
and embeds the full sweep-spec payload, so a worker needs nothing but
the directory to reconstruct exactly the campaign's expansion. Shard
identities are fingerprints derived from the spec's SHA-256
fingerprint plus the shard's run-index range, so journals and leases
can never be attached to the wrong campaign or the wrong slice of it.

A **shard journal** is an append-only JSONL file written through
:class:`repro.io.jsonl.JsonlAppender` (flush+fsync per record): a
header, one ``run`` line per executed run — carrying the deterministic
export row *and* the per-aggregator fold payloads the merger replays —
and a final ``complete`` line. No ``complete`` line means the writing
worker died; the shard is re-executed from scratch after its lease
goes stale, so torn partial journals are simply overwritten.

A **lease** is claimed by `O_CREAT|O_EXCL` file creation — atomic on
POSIX local filesystems and NFSv3+ — and carries the worker id and a
wall-clock deadline. Workers refresh their lease between runs; any
worker may reclaim (rename away + delete) a lease whose deadline has
passed, which is how crashed workers' chunks return to the pool.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.io.jsonl import JsonlAppender, json_line, read_jsonl

LEDGER_NAME = "ledger.jsonl"
SHARDS_DIR = "shards"
LEASES_DIR = "leases"

LEDGER_FORMAT = "repro-dist-ledger"
SHARD_FORMAT = "repro-dist-shard"
DIST_VERSION = 1


def shard_fingerprint(spec_fingerprint: str, start: int, stop: int) -> str:
    """A shard's identity: spec fingerprint x run-index range.

    Sixteen hex chars of SHA-256 — collision-safe within a campaign
    (shards of one campaign differ in their ranges by construction)
    and across campaigns (different spec fingerprints).
    """
    digest = hashlib.sha256(
        f"{spec_fingerprint}:{start}:{stop}".encode()
    ).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class Shard:
    """One leased unit of campaign work: runs ``[start, stop)``."""

    index: int
    shard_id: str
    start: int
    stop: int

    @property
    def n_runs(self) -> int:
        return self.stop - self.start


@dataclass
class Ledger:
    """A parsed campaign ledger (header + ordered shards)."""

    directory: Path
    header: dict
    shards: list[Shard]

    @property
    def name(self) -> str:
        return str(self.header.get("name", ""))

    @property
    def fingerprint(self) -> str:
        return str(self.header.get("fingerprint", ""))

    @property
    def n_runs(self) -> int:
        return int(self.header.get("n_runs", 0))

    @property
    def chunk_size(self) -> int:
        return int(self.header.get("chunk_size", 0))

    @property
    def spec_payload(self) -> dict:
        return self.header.get("spec", {})

    @property
    def aggregator_specs(self) -> list[dict]:
        return list(self.header.get("aggregators", []))

    def shard_journal_path(self, shard: Shard) -> Path:
        return self.directory / SHARDS_DIR / f"{shard.shard_id}.jsonl"

    def lease_path(self, shard: Shard) -> Path:
        return self.directory / LEASES_DIR / f"{shard.shard_id}.json"


def write_ledger(directory: Union[str, Path], header: dict, shards: list[Shard]) -> None:
    """Create a campaign directory and write its ledger atomically."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / SHARDS_DIR).mkdir(exist_ok=True)
    (directory / LEASES_DIR).mkdir(exist_ok=True)
    lines = [json_line(header)]
    lines.extend(
        json_line(
            {
                "kind": "shard",
                "index": shard.index,
                "shard": shard.shard_id,
                "start": shard.start,
                "stop": shard.stop,
            }
        )
        for shard in shards
    )
    tmp = directory / (LEDGER_NAME + ".tmp")
    tmp.write_text("\n".join(lines) + "\n")
    os.replace(tmp, directory / LEDGER_NAME)


def read_ledger(directory: Union[str, Path]) -> Ledger:
    """Parse a campaign directory's ledger, validating its format."""
    directory = Path(directory)
    path = directory / LEDGER_NAME
    if not path.is_file():
        raise ConfigurationError(
            f"{directory} is not a campaign directory (no {LEDGER_NAME}); "
            "create one with 'repro dist plan'"
        )
    document = read_jsonl(path)
    if not document.entries:
        raise ConfigurationError(f"ledger {path} is empty")
    header = document.entries[0]
    if (
        header.get("kind") != "header"
        or header.get("format") != LEDGER_FORMAT
    ):
        raise ConfigurationError(f"{path} is not a repro dist ledger")
    if header.get("version") != DIST_VERSION:
        raise ConfigurationError(
            f"unsupported ledger version {header.get('version')!r}"
        )
    shards = [
        Shard(
            index=int(entry["index"]),
            shard_id=str(entry["shard"]),
            start=int(entry["start"]),
            stop=int(entry["stop"]),
        )
        for entry in document.entries[1:]
        if entry.get("kind") == "shard"
    ]
    shards.sort(key=lambda shard: shard.start)
    expected = 0
    for shard in shards:
        if shard.start != expected:
            raise ConfigurationError(
                f"ledger {path} shards do not tile the run range: "
                f"expected a shard starting at {expected}, got {shard.start}"
            )
        expected = shard.stop
    if expected != int(header.get("n_runs", 0)):
        raise ConfigurationError(
            f"ledger {path} shards cover {expected} runs "
            f"but the header declares {header.get('n_runs')}"
        )
    return Ledger(directory=directory, header=header, shards=shards)


# --- shard journals --------------------------------------------------------


@dataclass
class ShardJournal:
    """A parsed per-shard result journal."""

    shard_id: str
    worker: str
    rows: list[dict] = field(default_factory=list)
    payloads: list[dict] = field(default_factory=list)  # per-run agg payloads
    elapsed: list[float] = field(default_factory=list)
    complete: bool = False
    torn: bool = False
    #: Metric snapshot-diff journaled by a telemetry-enabled worker
    #: (``None`` for the historical, telemetry-off journal format).
    telemetry: Optional[dict] = None

    @property
    def n_runs(self) -> int:
        return len(self.rows)

    @property
    def elapsed_s(self) -> float:
        """Total journaled run wall time for this shard."""
        return sum(self.elapsed)


def shard_journal_header(
    campaign_fingerprint: str, shard: Shard, worker: str
) -> dict:
    return {
        "kind": "header",
        "format": SHARD_FORMAT,
        "version": DIST_VERSION,
        "campaign": campaign_fingerprint,
        "shard": shard.shard_id,
        "start": shard.start,
        "stop": shard.stop,
        "worker": worker,
    }


def open_shard_journal(
    path: Union[str, Path],
    campaign_fingerprint: str,
    shard: Shard,
    worker: str,
) -> JsonlAppender:
    """Start a shard journal fresh (truncating any dead worker's partial
    attempt) and return the appender for its run/complete records."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(
            json_line(shard_journal_header(campaign_fingerprint, shard, worker))
            + "\n"
        )
        handle.flush()
        os.fsync(handle.fileno())
    return JsonlAppender(path)


def read_shard_journal(
    path: Union[str, Path],
    shard: Optional[Shard] = None,
    campaign_fingerprint: Optional[str] = None,
) -> Optional[ShardJournal]:
    """Parse a shard journal; ``None`` when the file does not exist.

    Tolerates a torn trailing line (the writer was killed mid-append).
    When ``shard``/``campaign_fingerprint`` are given, a journal that
    belongs to a different shard or campaign is a hard error — results
    must never silently merge across campaigns.
    """
    path = Path(path)
    if not path.is_file():
        return None
    document = read_jsonl(path)
    if not document.entries:
        return ShardJournal(shard_id="", worker="", torn=document.torn)
    header = document.entries[0]
    if (
        header.get("kind") != "header"
        or header.get("format") != SHARD_FORMAT
    ):
        raise ConfigurationError(f"{path} is not a repro dist shard journal")
    if shard is not None and header.get("shard") != shard.shard_id:
        raise ConfigurationError(
            f"shard journal {path} belongs to shard "
            f"{header.get('shard')!r}, not {shard.shard_id!r}"
        )
    if (
        campaign_fingerprint is not None
        and header.get("campaign") != campaign_fingerprint
    ):
        raise ConfigurationError(
            f"shard journal {path} belongs to a different campaign "
            f"(fingerprint {str(header.get('campaign'))[:12]}... vs "
            f"{campaign_fingerprint[:12]}...)"
        )
    journal = ShardJournal(
        shard_id=str(header.get("shard", "")),
        worker=str(header.get("worker", "")),
        torn=document.torn,
    )
    for entry in document.entries[1:]:
        kind = entry.get("kind")
        if kind == "run":
            journal.rows.append(entry["row"])
            journal.payloads.append(entry.get("agg", {}))
            journal.elapsed.append(float(entry.get("elapsed_s", 0.0)))
        elif kind == "telemetry":
            journal.telemetry = entry.get("metrics", {})
        elif kind == "complete":
            journal.complete = True
    return journal


# --- leases ----------------------------------------------------------------


@dataclass
class LeaseInfo:
    """A parsed lease file (``parseable=False`` means torn content)."""

    worker: str = ""
    acquired: float = 0.0
    ttl: float = 0.0
    deadline: float = 0.0
    parseable: bool = True

    def stale(self, now: float) -> bool:
        """Expired — or torn, which only a crashed claimer leaves behind
        (claims are tiny single-write files)."""
        return not self.parseable or now >= self.deadline

    def heartbeat_age(self, now: float) -> Optional[float]:
        """Seconds since the holder last refreshed (claimed or extended)
        this lease, or ``None`` for a torn lease. Refreshes rewrite the
        deadline as ``refresh_time + ttl``, so the last heartbeat is
        recoverable as ``deadline - ttl`` without a new field."""
        if not self.parseable:
            return None
        return max(0.0, now - (self.deadline - self.ttl))


def read_lease(path: Union[str, Path]) -> Optional[LeaseInfo]:
    """Parse a lease file; ``None`` when it does not exist."""
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return LeaseInfo(parseable=False)
    return LeaseInfo(
        worker=str(payload.get("worker", "")),
        acquired=float(payload.get("acquired", 0.0)),
        ttl=float(payload.get("ttl", 0.0)),
        deadline=float(payload.get("deadline", 0.0)),
    )


def _lease_payload(worker: str, ttl: float, now: float) -> dict:
    return {"worker": worker, "acquired": now, "ttl": ttl, "deadline": now + ttl}


def try_claim_lease(
    path: Union[str, Path], worker: str, ttl: float, now: Optional[float] = None
) -> Optional[LeaseInfo]:
    """Claim a shard by exclusive-creating its lease file.

    Returns the claimed lease, or ``None`` when another worker already
    holds it (the single atomic arbitration point of the protocol).
    """
    now = time.time() if now is None else now
    payload = _lease_payload(worker, ttl, now)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None
    with os.fdopen(fd, "w") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    return LeaseInfo(
        worker=worker, acquired=now, ttl=ttl, deadline=now + ttl
    )


def refresh_lease(
    path: Union[str, Path], worker: str, ttl: float, now: Optional[float] = None
) -> bool:
    """Extend a held lease's deadline (atomic rewrite).

    Returns ``False`` — without touching the file — when the lease is
    gone or now belongs to another worker (it expired and was
    reclaimed), in which case the caller must abandon the shard: the
    new owner is re-executing it.
    """
    now = time.time() if now is None else now
    path = Path(path)
    current = read_lease(path)
    if current is None or (current.parseable and current.worker != worker):
        return False
    tmp = path.with_name(path.name + f".refresh.{os.getpid()}")
    tmp.write_text(json.dumps(_lease_payload(worker, ttl, now)))
    os.replace(tmp, path)
    return True


def release_lease(path: Union[str, Path], worker: Optional[str] = None) -> None:
    """Drop a held lease (idempotent).

    With ``worker`` given, the lease is removed only while it still
    belongs to that worker — a lease that expired and was reclaimed by
    someone else must NOT be deleted out from under its new owner (that
    would expose the shard to a third claimer while it is being
    re-executed).
    """
    path = Path(path)
    if worker is not None:
        current = read_lease(path)
        if current is None or not current.parseable or current.worker != worker:
            return
    path.unlink(missing_ok=True)


def reclaim_stale_lease(
    path: Union[str, Path], now: Optional[float] = None
) -> bool:
    """Remove a stale lease so its shard can be re-claimed.

    Rename-away-then-delete, so two workers racing to reclaim the same
    lease cannot both think they removed it: the loser's rename raises
    ``FileNotFoundError`` and reports failure. Returns whether *this*
    caller retired the lease (it should then try to claim).
    """
    now = time.time() if now is None else now
    path = Path(path)
    lease = read_lease(path)
    if lease is None or not lease.stale(now):
        return False
    tombstone = path.with_name(
        f"{path.name}.stale.{os.getpid()}.{os.urandom(4).hex()}"
    )
    try:
        os.rename(path, tombstone)
    except FileNotFoundError:
        return False  # Lost the reclaim race; someone else retired it.
    tombstone.unlink(missing_ok=True)
    return True
