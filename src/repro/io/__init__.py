"""Result and trace serialization (JSON summaries, CSV time series),
for single runs (:mod:`repro.io.serialize`), batches
(:mod:`repro.io.batch`), and streaming sweep exports
(:mod:`repro.io.sweep`)."""

from repro.io.batch import config_descriptor, save_batch, write_batch_csv
from repro.io.serialize import (
    load_result,
    result_from_payload,
    result_payload,
    result_summary,
    save_result,
    write_timeseries_csv,
)
from repro.io.sweep import (
    SweepCsvWriter,
    save_sweep_json,
    sweep_row,
    write_sweep_csv,
)

__all__ = [
    "result_summary",
    "result_payload",
    "result_from_payload",
    "save_result",
    "load_result",
    "write_timeseries_csv",
    "config_descriptor",
    "save_batch",
    "write_batch_csv",
    "sweep_row",
    "SweepCsvWriter",
    "write_sweep_csv",
    "save_sweep_json",
]
