"""Result and trace serialization (JSON summaries, CSV time series),
for single runs (:mod:`repro.io.serialize`), batches
(:mod:`repro.io.batch`), streaming sweep exports
(:mod:`repro.io.sweep`), crash-consistent JSONL journals
(:mod:`repro.io.jsonl`), and distributed campaign ledgers/shard
journals/leases (:mod:`repro.io.dist`)."""

from repro.io.batch import config_descriptor, save_batch, write_batch_csv
from repro.io.jsonl import JsonlAppender, json_line, read_jsonl, truncate_to_consistent
from repro.io.serialize import (
    load_result,
    result_from_payload,
    result_payload,
    result_summary,
    save_result,
    write_timeseries_csv,
)
from repro.io.sweep import (
    SweepCsvWriter,
    save_sweep_json,
    sweep_row,
    write_sweep_csv,
)

__all__ = [
    "result_summary",
    "result_payload",
    "result_from_payload",
    "save_result",
    "load_result",
    "write_timeseries_csv",
    "config_descriptor",
    "save_batch",
    "write_batch_csv",
    "sweep_row",
    "SweepCsvWriter",
    "write_sweep_csv",
    "save_sweep_json",
    "JsonlAppender",
    "json_line",
    "read_jsonl",
    "truncate_to_consistent",
]
