"""Result and trace serialization (JSON summaries, CSV time series),
for single runs (:mod:`repro.io.serialize`) and batch sweeps
(:mod:`repro.io.batch`)."""

from repro.io.batch import config_descriptor, save_batch, write_batch_csv
from repro.io.serialize import (
    load_result,
    result_from_payload,
    result_payload,
    result_summary,
    save_result,
    write_timeseries_csv,
)

__all__ = [
    "result_summary",
    "result_payload",
    "result_from_payload",
    "save_result",
    "load_result",
    "write_timeseries_csv",
    "config_descriptor",
    "save_batch",
    "write_batch_csv",
]
