"""Result and trace serialization (JSON summaries, CSV time series)."""

from repro.io.serialize import (
    load_result,
    result_summary,
    save_result,
    write_timeseries_csv,
)

__all__ = [
    "result_summary",
    "save_result",
    "load_result",
    "write_timeseries_csv",
]
