"""Streaming serialization of sweep results.

Sweep exports must satisfy two constraints the batch exporters
(:mod:`repro.io.batch`) do not:

* **streaming** — rows are written as runs fold, not from an in-memory
  list of results, so hour-long campaigns export at O(1) result memory;
* **determinism** — a checkpoint-resumed sweep must export
  *byte-identical* files to an uninterrupted one, so rows carry only
  run-determined values (no wall-clock timings) and floats are printed
  with one repr everywhere.

:class:`SweepCsvWriter` appends one row per fold; on resume it first
rewrites the journaled prefix so the final file never depends on where
the interruption happened. :func:`save_sweep_json` writes the complete
export (rows + aggregate tables) once a sweep finishes.
"""

from __future__ import annotations

import csv
import json
import math
import os
from pathlib import Path
from typing import IO, Iterable, Mapping, Optional, Union

from repro.io.batch import config_descriptor
from repro.io.serialize import result_summary
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

_SWEEP_FORMAT_VERSION = 1


def sweep_row(
    index: int,
    key: str,
    config: SimulationConfig,
    result: SimulationResult,
) -> dict:
    """The deterministic export row for one folded run.

    Config descriptor columns, then the scalar result summary.
    Wall-clock quantities are deliberately excluded: the row must be
    identical however (and however often) the run was scheduled.
    """
    row = {"run": index, "key": key}
    row.update(config_descriptor(config))
    row.update(result_summary(result))
    return row


def _csv_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


class SweepCsvWriter:
    """Appends sweep rows to a CSV file as they fold.

    The header (and, on resume, the already-journaled prefix rows) is
    written on the first :meth:`write`; each row is flushed so an
    interrupted sweep leaves a valid, truncation-only CSV behind.
    """

    def __init__(
        self,
        path: Union[str, Path],
        prefix_rows: Iterable[Mapping] = (),
    ) -> None:
        self.path = Path(path)
        self._prefix = list(prefix_rows)
        self._handle: Optional[IO[str]] = None
        self._writer = None
        self._columns: Optional[list[str]] = None

    def _open(self, first_row: Mapping) -> None:
        self._handle = open(self.path, "w", newline="")
        self._writer = csv.writer(self._handle)
        self._columns = list(self._prefix[0] if self._prefix else first_row)
        self._writer.writerow(self._columns)
        for row in self._prefix:
            self._write_row(row)
        self._prefix = []

    def _write_row(self, row: Mapping) -> None:
        self._writer.writerow(
            [_csv_cell(row.get(column)) for column in self._columns]
        )

    def write(self, row: Mapping) -> None:
        """Append one row (opens the file and writes the header first)."""
        if self._handle is None:
            self._open(row)
        self._write_row(row)
        self._handle.flush()

    def finish(self) -> None:
        """Flush pending prefix rows even if nothing new was written
        (a resume of an already-complete sweep still gets its CSV)."""
        if self._handle is None and self._prefix:
            self._open(self._prefix[0])
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepCsvWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_sweep_csv(rows: Iterable[Mapping], path: Union[str, Path]) -> None:
    """Write already-collected sweep rows as CSV in one call.

    Produces byte-identical output to streaming the same rows through
    :class:`SweepCsvWriter` (the equivalence the resume tests pin).
    """
    rows = list(rows)
    if not rows:
        raise ValueError("sweep has no rows to write")
    with SweepCsvWriter(path, prefix_rows=rows[:-1]) as writer:
        writer.write(rows[-1])


def _json_safe(value):
    """NaN has no JSON encoding: export it as null."""
    if isinstance(value, float) and math.isnan(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def save_sweep_json(
    rows: Iterable[Mapping],
    aggregates: Mapping[str, Iterable[Mapping]],
    path: Union[str, Path],
    name: str = "",
    fingerprint: str = "",
) -> None:
    """Write the complete sweep export: per-run rows + aggregate tables.

    Deterministic by construction — the payload contains only
    run-determined values, so fresh and resumed sweeps produce
    byte-identical files.
    """
    rows = list(rows)
    payload = {
        "format_version": _SWEEP_FORMAT_VERSION,
        "name": name,
        "fingerprint": fingerprint,
        "n_runs": len(rows),
        "rows": _json_safe(rows),
        "aggregates": {
            agg_name: _json_safe(list(agg_rows))
            for agg_name, agg_rows in aggregates.items()
        },
    }
    Path(path).write_text(json.dumps(payload))


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename.

    Checkpoint rewrites go through this so a crash mid-write leaves
    either the old journal or the new one, never a torn file.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
