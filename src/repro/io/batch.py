"""Serialization of batch results (:class:`repro.runner.BatchResult`).

Two forms, matching how sweeps get consumed:

* :func:`save_batch` — JSON with one entry per run (config descriptor +
  scalar summary, optionally the full time series), for archiving a
  sweep and reloading individual runs;
* :func:`write_batch_csv` — one CSV row per run (config columns then
  summary columns), for spreadsheets and plotting tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.sim.config import SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.runner.batch import BatchResult

_BATCH_FORMAT_VERSION = 1


def _params_cell(params) -> str:
    """Component params as a canonical compact JSON string column
    (empty string when the mapping is empty, for clean CSV)."""
    if not params:
        return ""
    return json.dumps(dict(sorted(params.items())), sort_keys=True,
                      separators=(",", ":"))


def config_descriptor(config: SimulationConfig) -> dict:
    """Flat, JSON-friendly identity of a run configuration.

    Captures the experiment-matrix axes (benchmark, policy registry key
    + params, cooling, controller key + params, workload model key +
    params, layers, duration, seed,
    DPM); thermal/grid parameters are omitted because they are constant
    across a sweep — archive the code revision for those. Component
    parameter mappings render as canonical JSON strings so two runs
    differing only in a swept gain stay distinguishable in exports and
    aggregator groupings.
    """
    return {
        "benchmark": config.benchmark_name,
        "policy": config.policy,
        "policy_params": _params_cell(config.policy_params),
        "cooling": config.cooling.value,
        "controller": config.controller,
        "controller_params": _params_cell(config.controller_params),
        "workload": config.workload,
        "workload_params": _params_cell(config.workload_params),
        "facility": config.facility,
        "facility_params": _params_cell(config.facility_params),
        "n_layers": config.n_layers,
        "duration": config.duration,
        "seed": config.seed,
        "dpm": config.dpm_enabled,
        "label": config.label(),
    }


def save_batch(
    batch: "BatchResult",
    path: Union[str, Path],
    include_series: bool = False,
) -> None:
    """Write a batch as JSON (summaries; full series when requested)."""
    from repro.io.serialize import result_payload, result_summary

    entries = []
    for run in batch.runs:
        entry = {
            "run": run.index,
            "config": config_descriptor(run.config),
            "summary": result_summary(run.result),
            "elapsed_s": run.elapsed,
        }
        if include_series:
            # The single-result schema, so runs reload via
            # :func:`repro.io.serialize.result_from_payload`.
            entry["result"] = result_payload(run.result)
        entries.append(entry)
    payload = {
        "format_version": _BATCH_FORMAT_VERSION,
        "n_runs": len(batch.runs),
        "n_workers": batch.n_workers,
        "wall_time_s": batch.wall_time,
        "warm_time_s": batch.warm_time,
        "runs": entries,
    }
    Path(path).write_text(json.dumps(payload))


def write_batch_csv(batch: "BatchResult", path: Union[str, Path]) -> None:
    """Write one CSV row per run: config columns then summary columns."""
    rows = batch.summary_rows()
    if not rows:
        raise ValueError("batch has no runs to write")
    header = list(rows[0])
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow([_cell(row.get(column)) for column in header])


def _cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
