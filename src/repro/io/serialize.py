"""Serialization of simulation results.

Three forms, matching how results get consumed:

* :func:`result_summary` — the scalar digest (energies, peaks,
  hot-spot percentages) as a plain dict, for tables and dashboards;
* :func:`save_result` / :func:`load_result` — lossless JSON round-trip
  of the full time series, for archiving runs and offline analysis;
* :func:`write_timeseries_csv` — the per-interval series as CSV, for
  spreadsheets/plotting tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.constants import CONTROL
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult

_FORMAT_VERSION = 1


def result_summary(result: SimulationResult) -> dict:
    """Scalar digest of a run (JSON-serializable)."""
    return {
        "duration_s": result.duration,
        "intervals": len(result.times),
        "peak_temperature_sensor": result.peak_temperature(),
        "peak_temperature_cell": float(result.tmax_cell.max())
        if len(result.tmax_cell)
        else float("nan"),
        "hotspot_pct": 100.0 * result.time_above(CONTROL.hotspot_threshold),
        "above_target_pct": 100.0 * result.time_above(CONTROL.target_temperature),
        "chip_energy_j": result.chip_energy(),
        "pump_energy_j": result.pump_energy(),
        "total_energy_j": result.total_energy(),
        "throughput_tps": result.throughput(),
        "completed_threads": result.total_completed(),
        "mean_sojourn_s": _nan_to_none(result.mean_sojourn_time()),
        "mean_flow_setting": _nan_to_none(result.mean_flow_setting()),
        "arma_retrains": result.retrain_count,
        # Facility co-simulation metrics: None for fixed-inlet runs
        # (facility="none"), where no plant is modeled.
        "pue": _nan_to_none(result.pue()),
        "wue_l_per_kwh": _nan_to_none(result.wue()),
        "total_cooling_power_w": _nan_to_none(result.total_cooling_power()),
        "cooling_energy_j": _nan_to_none(result.cooling_energy()),
        "mean_inlet_temperature": _nan_to_none(result.mean_inlet_temperature()),
        "free_cooling_pct": _nan_to_none(
            100.0 * result.free_cooling_fraction()
        ),
    }


def result_payload(result: SimulationResult) -> dict:
    """The full JSON-serializable payload (summary + time series).

    Still format version 1: facility runs add an *optional*
    ``facility`` block (and non-None facility summary keys) that
    pre-facility readers never look at, and fixed-inlet payloads omit
    it, so old files load unchanged.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "summary": result_summary(result),
        "core_names": result.core_names,
        "unit_names": result.unit_names,
        "retrain_count": result.retrain_count,
        "sojourn_sum": result.sojourn_sum,
        "sojourn_count": result.sojourn_count,
        "series": {
            "times": result.times.tolist(),
            "tmax": result.tmax.tolist(),
            "tmax_cell": result.tmax_cell.tolist(),
            "core_temperatures": result.core_temperatures.tolist(),
            "unit_temperatures": result.unit_temperatures.tolist(),
            "chip_power": result.chip_power.tolist(),
            "pump_power": result.pump_power.tolist(),
            "flow_setting": result.flow_setting.tolist(),
            "completed_threads": result.completed_threads.tolist(),
            "forecast_tmax": _nan_safe(result.forecast_tmax),
            "migrations": result.migrations.tolist(),
        },
    }
    if result.has_facility:
        payload["facility"] = {
            "scale": result.facility_scale,
            "inlet": result.facility_inlet.tolist(),
            "cooling_power": result.facility_cooling_power.tolist(),
            "water_use": result.facility_water_use.tolist(),
            "free_cooling": [bool(v) for v in result.facility_free_cooling],
        }
    return payload


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write the full result (summary + time series) as JSON."""
    Path(path).write_text(json.dumps(result_payload(result)))


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result written by :func:`save_result`."""
    return result_from_payload(json.loads(Path(path).read_text()))


def result_from_payload(payload: dict) -> SimulationResult:
    """Rebuild a result from a :func:`result_payload` dict."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported result format version {version!r}"
        )
    series = payload["series"]
    return SimulationResult(
        times=np.asarray(series["times"], dtype=float),
        tmax=np.asarray(series["tmax"], dtype=float),
        tmax_cell=np.asarray(series["tmax_cell"], dtype=float),
        core_temperatures=np.asarray(series["core_temperatures"], dtype=float),
        unit_temperatures=np.asarray(series["unit_temperatures"], dtype=float),
        unit_names=list(payload["unit_names"]),
        core_names=list(payload["core_names"]),
        chip_power=np.asarray(series["chip_power"], dtype=float),
        pump_power=np.asarray(series["pump_power"], dtype=float),
        flow_setting=np.asarray(series["flow_setting"], dtype=int),
        completed_threads=np.asarray(series["completed_threads"], dtype=int),
        forecast_tmax=_from_nan_safe(series["forecast_tmax"]),
        migrations=np.asarray(series["migrations"], dtype=int),
        retrain_count=int(payload["retrain_count"]),
        sojourn_sum=float(payload.get("sojourn_sum", 0.0)),
        sojourn_count=int(payload.get("sojourn_count", 0)),
        **_facility_kwargs(payload.get("facility")),
    )


def _facility_kwargs(block: Union[dict, None]) -> dict:
    """Constructor kwargs for the optional facility block."""
    if block is None:
        return {}
    return {
        "facility_scale": float(block["scale"]),
        "facility_inlet": np.asarray(block["inlet"], dtype=float),
        "facility_cooling_power": np.asarray(
            block["cooling_power"], dtype=float
        ),
        "facility_water_use": np.asarray(block["water_use"], dtype=float),
        "facility_free_cooling": np.asarray(block["free_cooling"], dtype=bool),
    }


def write_timeseries_csv(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write the per-interval series as CSV (one row per interval).

    Facility runs append the co-simulated columns (inlet temperature,
    plant cooling power, water use, free-cooling flag); fixed-inlet
    CSVs keep the classic column set.
    """
    header = (
        ["time_s", "tmax", "tmax_cell", "chip_power_w", "pump_power_w",
         "flow_setting", "completed", "forecast_tmax", "migrations"]
        + [f"T[{name}]" for name in result.core_names]
    )
    if result.has_facility:
        header += [
            "facility_inlet_c",
            "facility_cooling_power_w",
            "facility_water_kg_s",
            "free_cooling",
        ]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for k in range(len(result.times)):
            row = [
                f"{result.times[k]:.3f}",
                f"{result.tmax[k]:.4f}",
                f"{result.tmax_cell[k]:.4f}",
                f"{result.chip_power[k]:.4f}",
                f"{result.pump_power[k]:.4f}",
                int(result.flow_setting[k]),
                int(result.completed_threads[k]),
                "" if np.isnan(result.forecast_tmax[k])
                else f"{result.forecast_tmax[k]:.4f}",
                int(result.migrations[k]),
            ]
            row += [f"{t:.4f}" for t in result.core_temperatures[k]]
            if result.has_facility:
                row += [
                    f"{result.facility_inlet[k]:.4f}",
                    f"{result.facility_cooling_power[k]:.4f}",
                    f"{result.facility_water_use[k]:.6g}",
                    int(bool(result.facility_free_cooling[k])),
                ]
            writer.writerow(row)


def _nan_safe(values: np.ndarray) -> list:
    """JSON has no NaN: encode as None."""
    return [None if np.isnan(v) else float(v) for v in values]


def _from_nan_safe(values: list) -> np.ndarray:
    return np.asarray(
        [np.nan if v is None else float(v) for v in values], dtype=float
    )


def _nan_to_none(value: float):
    return None if np.isnan(value) else value
