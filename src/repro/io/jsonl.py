"""Hardened JSON-lines plumbing shared by every journal in the repo.

Both the sweep checkpoint (:mod:`repro.sweep.runner`) and the
distributed campaign ledgers/shard journals (:mod:`repro.io.dist`) are
append-only JSONL files that must survive being killed mid-write:

* :class:`JsonlAppender` writes each batch of lines as **one** buffered
  write followed by flush + fsync, so a crash can tear at most the
  final line of the file — never interleave or reorder lines;
* :func:`read_jsonl` parses a journal back, stopping at (and
  reporting) a torn trailing line instead of crashing, so resume and
  merge paths recover from kills without manual surgery.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Optional, Union


def json_line(payload: dict) -> str:
    """One canonical compact JSONL line (no trailing newline)."""
    return json.dumps(payload, separators=(",", ":"))


class JsonlAppender:
    """Appends whole JSONL records to a journal, crash-consistently.

    Every :meth:`append` call joins its payloads into a single string
    and hands it to the OS as one write, then flushes and fsyncs — so
    a kill between two appends leaves a clean journal, and a kill
    *during* an append tears only the trailing line (which
    :func:`read_jsonl` detects and discards). Grouping related records
    into one ``append`` (e.g. a run line and its snapshot) makes them
    land atomically-together or not at all on all mainstream
    filesystems.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = open(self.path, "a")

    def append(self, *payloads: dict) -> None:
        """Write the payload lines as one flush+fsync'd write."""
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        if not payloads:
            return
        text = "".join(json_line(payload) + "\n" for payload in payloads)
        self._handle.write(text)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JsonlDocument:
    """A parsed journal: clean entries plus what (if anything) was torn."""

    entries: list[dict]
    torn: bool = False
    torn_line: str = ""

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def read_jsonl(path: Union[str, Path]) -> JsonlDocument:
    """Read a JSONL journal, tolerating a torn trailing line.

    A record that fails to parse ends the journal: it (and anything
    after it, which a single-writer append-only journal cannot have
    produced cleanly) is discarded and reported via ``torn`` so callers
    can log, truncate, or re-execute as appropriate.
    """
    document = JsonlDocument(entries=[])
    with open(path) as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except json.JSONDecodeError:
                document.torn = True
                document.torn_line = stripped
                break
            document.entries.append(entry)
    return document


def truncate_to_consistent(path: Union[str, Path]) -> JsonlDocument:
    """Drop a torn trailing line from a journal in place.

    Reads the journal tolerantly and, when a torn line is found,
    rewrites the file to its clean prefix (same-directory temp +
    rename, so the repair itself cannot tear). Returns the parsed
    clean document either way.
    """
    path = Path(path)
    document = read_jsonl(path)
    if document.torn:
        text = "".join(json_line(entry) + "\n" for entry in document.entries)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
    return document
