"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch one type to handle any library failure distinctly from
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class GeometryError(ReproError):
    """A floorplan or stack description is geometrically invalid."""


class ModelError(ReproError):
    """A physical model was evaluated outside its domain of validity."""


class SolverError(ReproError):
    """The thermal solver failed to assemble or solve the network."""


class ControlError(ReproError):
    """A controller component (ARMA, SPRT, LUT) was misused or failed."""


class WorkloadError(ReproError):
    """A workload description or trace is invalid."""


class SchedulingError(ReproError):
    """A scheduling operation was invalid (unknown core, bad queue op)."""
