"""repro.telemetry — unified metrics registry and span tracing.

The one instrumentation layer every subsystem reports through instead
of growing new module globals (ROADMAP policy since PR 9):

* :mod:`repro.telemetry.metrics` — process-wide named counters,
  gauges, and timer histograms with labeled series, a snapshot/diff
  API, and cross-process merge;
* :mod:`repro.telemetry.trace` — ``span()`` context managers feeding a
  bounded ring buffer, JSONL export, and schema validation. Disabled
  by default at near-zero overhead.

Typical use::

    from repro import telemetry

    telemetry.counter("solver.factorizations").inc()
    with telemetry.span("factorize", n_nodes=n) as sp:
        lu = splu(matrix)
        sp.set_attrs(nnz=int(matrix.nnz))

Metric naming convention: dotted ``subsystem.event`` names
(``solver.factorizations``, ``cache.characterization.hits``), labels
for dimensions (``tier=krylov``, ``mode=block``); span-derived timers
are automatically published as ``span.<name>``.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    merge,
    registry,
    reset,
    snapshot,
    snapshot_diff,
    timer,
)
from repro.telemetry.trace import (
    DEFAULT_CAPACITY,
    SPAN_REQUIRED_KEYS,
    TRACE_FORMAT,
    TRACE_VERSION,
    Span,
    TraceReport,
    clear,
    disable,
    enable,
    enabled,
    events,
    export_trace,
    install_trace_context,
    span,
    trace_context,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "counter",
    "gauge",
    "merge",
    "registry",
    "reset",
    "snapshot",
    "snapshot_diff",
    "timer",
    "DEFAULT_CAPACITY",
    "SPAN_REQUIRED_KEYS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Span",
    "TraceReport",
    "clear",
    "disable",
    "enable",
    "enabled",
    "events",
    "export_trace",
    "install_trace_context",
    "span",
    "trace_context",
    "validate_trace",
]
