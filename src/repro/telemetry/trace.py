"""Span tracing: bounded in-memory ring buffer + JSONL export.

Disabled by default and near-zero overhead when disabled —
:func:`span` then returns a shared no-op context manager after one
module-flag check, so instrumented hot loops (``Simulator.step``,
GMRES solves) cost one function call per site. Enabling
(:func:`enable`, or the ``--trace PATH`` CLI flags) makes each span
record a structured event::

    {"kind": "span", "name": "factorize", "span": 7, "parent": 3,
     "t_start": <perf_counter>, "duration_s": 0.0123,
     "pid": 1234, "thread": 5678, "attrs": {...}}

into a bounded ``deque`` (oldest events drop past ``capacity``) and
feed a ``span.<name>`` timer histogram in the metrics registry. Parent
ids come from a thread-local stack, so spans nest naturally within a
thread; events are appended on span *exit*, so children precede their
parents in the buffer and in exported files.

Export (:func:`export_trace`) writes a self-describing JSONL file via
:mod:`repro.io.jsonl` — a header line, one line per span, and a final
``metrics`` line carrying the registry snapshot. :func:`validate_trace`
re-reads such a file and checks the documented schema: every line
parses, required keys present, ids unique, and every span's interval
nested within its parent's. Tracing never touches simulation state, so
outputs are byte-identical with tracing on or off.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.telemetry import metrics as _metrics

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Ring-buffer capacity when :func:`enable` is called without one.
DEFAULT_CAPACITY = 65536

#: Keys every exported span line must carry (``attrs`` is optional).
SPAN_REQUIRED_KEYS = (
    "name", "span", "parent", "t_start", "duration_s", "pid", "thread",
)

#: Slack (seconds) allowed when checking child-within-parent nesting;
#: covers perf_counter quantization, not real misnesting.
NESTING_TOLERANCE_S = 1.0e-6

_lock = threading.Lock()
_enabled = False
_events: Optional[deque] = None
_next_id = 1
_worker_label = ""
_tls = threading.local()


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attrs(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


def enabled() -> bool:
    """Whether span tracing is currently recording."""
    return _enabled


def enable(capacity: int = DEFAULT_CAPACITY, worker: str = "") -> None:
    """Start recording spans into a ring buffer of ``capacity`` events."""
    global _enabled, _events, _worker_label
    if capacity < 1:
        raise ValueError("trace capacity must be >= 1")
    with _lock:
        if _events is None or _events.maxlen != capacity:
            _events = deque(_events or (), maxlen=capacity)
        if worker:
            _worker_label = worker
        _enabled = True


def disable() -> None:
    """Stop recording (buffered events remain until :func:`clear`)."""
    global _enabled
    _enabled = False


def clear() -> None:
    """Drop every buffered event."""
    with _lock:
        if _events is not None:
            _events.clear()


def events() -> list[dict]:
    """A copy of the buffered span events (oldest first)."""
    with _lock:
        return list(_events or ())


def _alloc_id() -> int:
    global _next_id
    with _lock:
        span_id = _next_id
        _next_id += 1
        return span_id


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    try:  # numpy scalars and friends
        return _jsonable(value.item())
    except AttributeError:
        return str(value)


class Span:
    """A live span; use via ``with telemetry.span(name, **attrs):``."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_start", "_t0")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None

    def set_attrs(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. GMRES iterations)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        self.span_id = _alloc_id()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._t0 = self.t_start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._t0
        stack = getattr(_tls, "stack", None)
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "t_start": self.t_start,
            "duration_s": duration,
            "pid": os.getpid(),
            "thread": threading.get_ident(),
        }
        if self.attrs:
            event["attrs"] = {
                key: _jsonable(value) for key, value in self.attrs.items()
            }
        with _lock:
            if _enabled and _events is not None:
                _events.append(event)
        _metrics.timer("span." + self.name).observe(duration)
        return False


def span(name: str, **attrs) -> Union[Span, _NullSpan]:
    """A tracing span, or the shared no-op when tracing is disabled."""
    if not _enabled:
        return _NULL_SPAN
    return Span(name, attrs)


# --- cross-process propagation ------------------------------------------------


def trace_context() -> Optional[dict]:
    """Picklable context shipped to worker processes (None = tracing off).

    Workers call :func:`install_trace_context` with it; their spans
    feed their own ring buffers and ``span.*`` timers, and their metric
    deltas travel back alongside fold payloads for the coordinating
    process to :func:`repro.telemetry.metrics.merge`.
    """
    if not _enabled:
        return None
    with _lock:
        capacity = _events.maxlen if _events is not None else DEFAULT_CAPACITY
    return {"enabled": True, "capacity": capacity, "worker": _worker_label}


def install_trace_context(context: Optional[dict]) -> None:
    """Activate a :func:`trace_context` inside a worker process."""
    if context and context.get("enabled"):
        enable(
            capacity=int(context.get("capacity") or DEFAULT_CAPACITY),
            worker=str(context.get("worker") or ""),
        )


# --- export -------------------------------------------------------------------


def export_trace(path: Union[str, Path], worker: str = "") -> Path:
    """Write header + buffered spans + metrics snapshot as JSONL.

    Atomic (same-directory temp + rename); re-exporting overwrites.
    """
    from repro.io.jsonl import json_line

    recorded = events()
    header = {
        "kind": "header",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "pid": os.getpid(),
        "worker": worker or _worker_label,
        "n_spans": len(recorded),
        "unix_time": time.time(),
    }
    metrics_line = {
        "kind": "metrics",
        "pid": os.getpid(),
        "snapshot": _metrics.snapshot(),
    }
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    lines = [header]
    lines.extend({"kind": "span", **event} for event in recorded)
    lines.append(metrics_line)
    text = "".join(json_line(payload) + "\n" for payload in lines)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


# --- validation / summary -----------------------------------------------------


@dataclass
class TraceReport:
    """Result of validating (and summarizing) a trace JSONL file."""

    path: Path
    n_spans: int = 0
    errors: list = field(default_factory=list)
    #: per span-name aggregate: {"count": int, "total_s": float}
    span_totals: dict = field(default_factory=dict)
    #: the final metrics snapshot line, if present
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_trace(path: Union[str, Path]) -> TraceReport:
    """Check a trace file against the documented schema.

    Collects (rather than raises) every violation: unparseable lines,
    missing header, unknown line kinds, missing span keys, duplicate
    span ids, dangling parents, and spans not nested within their
    parent's interval.
    """
    from repro.io.jsonl import read_jsonl

    path = Path(path)
    report = TraceReport(path=path)
    document = read_jsonl(path)
    if document.torn:
        report.errors.append(f"unparseable line: {document.torn_line[:80]!r}")
    entries = document.entries
    if not entries:
        report.errors.append("empty trace file")
        return report
    header = entries[0]
    if header.get("kind") != "header" or header.get("format") != TRACE_FORMAT:
        report.errors.append("first line is not a repro-trace header")
    elif header.get("version") != TRACE_VERSION:
        report.errors.append(
            f"unsupported trace version {header.get('version')!r}"
        )
    spans: dict[int, dict] = {}
    for lineno, entry in enumerate(entries[1:], start=2):
        kind = entry.get("kind")
        if kind == "metrics":
            snapshot = entry.get("snapshot")
            if not isinstance(snapshot, dict):
                report.errors.append(f"line {lineno}: metrics line has no snapshot")
            else:
                report.metrics = snapshot
            continue
        if kind != "span":
            report.errors.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        missing = [key for key in SPAN_REQUIRED_KEYS if key not in entry]
        if missing:
            report.errors.append(
                f"line {lineno}: span missing keys {', '.join(missing)}"
            )
            continue
        span_id = entry["span"]
        if span_id in spans:
            report.errors.append(f"line {lineno}: duplicate span id {span_id}")
            continue
        spans[span_id] = entry
        name = entry["name"]
        agg = report.span_totals.setdefault(name, {"count": 0, "total_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += float(entry["duration_s"])
    report.n_spans = len(spans)
    for entry in spans.values():
        parent_id = entry["parent"]
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            # The ring buffer may have evicted an old parent; only flag
            # parents that could never have been exported (>= own id).
            if parent_id >= entry["span"]:
                report.errors.append(
                    f"span {entry['span']}: dangling parent {parent_id}"
                )
            continue
        if (parent["pid"], parent["thread"]) != (entry["pid"], entry["thread"]):
            report.errors.append(
                f"span {entry['span']}: parent {parent_id} on another thread"
            )
            continue
        child_start = float(entry["t_start"])
        child_end = child_start + float(entry["duration_s"])
        parent_start = float(parent["t_start"])
        parent_end = parent_start + float(parent["duration_s"])
        if (
            child_start < parent_start - NESTING_TOLERANCE_S
            or child_end > parent_end + NESTING_TOLERANCE_S
        ):
            report.errors.append(
                f"span {entry['span']} ({entry['name']}) not nested within"
                f" parent {parent_id} ({parent['name']})"
            )
    return report
