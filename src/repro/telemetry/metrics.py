"""Process-wide metrics registry: counters, gauges, timer histograms.

One registry per process (module-level default, accessible through
:func:`registry`), holding three metric families:

* **counters** — monotonic integers (``solver.factorizations``);
* **gauges** — last-write-wins floats (``cache.systems``);
* **timers** — duration histograms (``span.step``): count, total,
  min/max, and fixed log-spaced buckets.

Metric handles are cheap named views onto the registry; every mutation
takes the registry lock, so increments are safe from any thread (the
planned async digital-twin service constructs solvers concurrently).
Series are keyed by ``name`` plus optional labels
(``counter("runs").inc(tier="krylov")`` writes the
``runs{tier=krylov}`` series), so one metric can carry dimensions such
as solver tier, cohort mode, or grid shape without new globals.

Measurement is snapshot-based: :func:`snapshot` returns a plain,
deterministically-ordered JSON-able dict, :func:`snapshot_diff`
subtracts two of them, and :meth:`MetricsRegistry.merge` folds a diff
from another process back in — the transport the batch runner and
``repro.dist`` use to aggregate worker counters into one campaign
report.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

#: Upper bounds (seconds) of the timer histogram buckets; observations
#: beyond the last bound land in the implicit ``+inf`` bucket.
TIMER_BUCKET_BOUNDS = (
    1.0e-5, 1.0e-4, 1.0e-3, 1.0e-2, 1.0e-1, 1.0, 10.0, 100.0,
)

_BUCKET_KEYS = tuple(f"{bound:g}" for bound in TIMER_BUCKET_BOUNDS) + ("+inf",)


def series_key(name: str, labels: dict) -> str:
    """The storage key for a metric series: ``name{k=v,...}``.

    Labels are sorted so the key (and therefore every snapshot) is
    deterministic regardless of call-site keyword order.
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class _TimerState:
    """Mutable histogram accumulator for one timer series."""

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.buckets = [0] * len(_BUCKET_KEYS)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds
        for i, bound in enumerate(TIMER_BUCKET_BOUNDS):
            if seconds <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.minimum,
            "max_s": self.maximum,
            "buckets": {
                key: n for key, n in zip(_BUCKET_KEYS, self.buckets) if n
            },
        }


class Counter:
    """A named monotonic counter (a view onto its registry)."""

    __slots__ = ("name", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry

    def inc(self, amount: int = 1, **labels) -> None:
        """Add ``amount`` to the series selected by ``labels``."""
        self._registry._add_counter(series_key(self.name, labels), amount)

    def value(self, **labels) -> int:
        """Current value of one series (0 if never incremented)."""
        return self._registry._counter_value(series_key(self.name, labels))

    def total(self) -> int:
        """Sum across every label series of this counter."""
        return self._registry._counter_total(self.name)


class Gauge:
    """A named last-write-wins float."""

    __slots__ = ("name", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry

    def set(self, value: float, **labels) -> None:
        self._registry._set_gauge(series_key(self.name, labels), float(value))

    def value(self, **labels) -> float:
        return self._registry._gauge_value(series_key(self.name, labels))


class Timer:
    """A named duration histogram."""

    __slots__ = ("name", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry

    def observe(self, seconds: float, **labels) -> None:
        self._registry._observe_timer(series_key(self.name, labels), seconds)

    def time(self, **labels) -> "_TimerContext":
        """Context manager observing the wrapped block's duration."""
        return _TimerContext(self, labels)

    def stats(self, **labels) -> Optional[dict]:
        """Histogram dict for one series, or ``None`` if never observed."""
        return self._registry._timer_stats(series_key(self.name, labels))


class _TimerContext:
    __slots__ = ("_timer", "_labels", "_t0")

    def __init__(self, timer: Timer, labels: dict) -> None:
        self._timer = timer
        self._labels = labels

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._timer.observe(time.perf_counter() - self._t0, **self._labels)
        return False


class MetricsRegistry:
    """Thread-safe store behind the counter/gauge/timer handles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, _TimerState] = {}
        self._handles: dict[tuple[str, str], object] = {}

    # --- handle factories -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._handle("counter", name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._handle("gauge", name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._handle("timer", name, Timer)

    def _handle(self, kind: str, name: str, cls):
        key = (kind, name)
        handle = self._handles.get(key)
        if handle is None:
            with self._lock:
                handle = self._handles.setdefault(key, cls(name, self))
        return handle

    # --- mutation (called by handles) -----------------------------------------

    def _add_counter(self, key: str, amount: int) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + int(amount)

    def _counter_value(self, key: str) -> int:
        with self._lock:
            return self._counters.get(key, 0)

    def _counter_total(self, name: str) -> int:
        prefix = name + "{"
        with self._lock:
            return sum(
                value for key, value in self._counters.items()
                if key == name or key.startswith(prefix)
            )

    def _set_gauge(self, key: str, value: float) -> None:
        with self._lock:
            self._gauges[key] = value

    def _gauge_value(self, key: str) -> float:
        with self._lock:
            return self._gauges.get(key, 0.0)

    def _observe_timer(self, key: str, seconds: float) -> None:
        with self._lock:
            state = self._timers.get(key)
            if state is None:
                state = self._timers[key] = _TimerState()
            state.observe(float(seconds))

    def _timer_stats(self, key: str) -> Optional[dict]:
        with self._lock:
            state = self._timers.get(key)
            return None if state is None else state.to_dict()

    # --- snapshot / merge / reset ---------------------------------------------

    def snapshot(self) -> dict:
        """Plain JSON-able copy of every series, deterministically ordered.

        Two snapshots of the same state compare equal; keys are sorted
        so serialized snapshots are byte-stable.
        """
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "timers": {
                    k: self._timers[k].to_dict() for k in sorted(self._timers)
                },
            }

    def merge(self, delta: dict) -> None:
        """Fold a snapshot (or snapshot diff) from another process in.

        Counters and timer histograms add; gauges last-write-win. This
        is how per-worker metric deltas shipped alongside fold payloads
        aggregate into the coordinating process's registry.
        """
        with self._lock:
            for key, value in (delta.get("counters") or {}).items():
                self._counters[key] = self._counters.get(key, 0) + int(value)
            for key, value in (delta.get("gauges") or {}).items():
                self._gauges[key] = float(value)
            for key, stats in (delta.get("timers") or {}).items():
                state = self._timers.get(key)
                if state is None:
                    state = self._timers[key] = _TimerState()
                state.count += int(stats.get("count", 0))
                state.total += float(stats.get("total_s", 0.0))
                state.minimum = min(state.minimum, float(stats.get("min_s", float("inf"))))
                state.maximum = max(state.maximum, float(stats.get("max_s", 0.0)))
                for i, bucket_key in enumerate(_BUCKET_KEYS):
                    state.buckets[i] += int((stats.get("buckets") or {}).get(bucket_key, 0))

    def reset(self) -> None:
        """Zero every series (tests and benchmark scopes only)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


def snapshot_diff(before: dict, after: dict) -> dict:
    """The metric activity between two snapshots, as a snapshot-shaped
    dict suitable for :meth:`MetricsRegistry.merge`.

    Counters and timer histograms subtract (zero-delta series are
    dropped); gauges take the ``after`` value. Deterministic: sorted
    keys, plain numbers.
    """
    counters = {}
    for key in sorted(after.get("counters", {})):
        delta = after["counters"][key] - before.get("counters", {}).get(key, 0)
        if delta:
            counters[key] = delta
    timers = {}
    for key in sorted(after.get("timers", {})):
        cur = after["timers"][key]
        prev = before.get("timers", {}).get(key)
        if prev is None:
            if cur.get("count"):
                timers[key] = dict(cur, buckets=dict(cur.get("buckets", {})))
            continue
        count = cur["count"] - prev["count"]
        if not count:
            continue
        buckets = {}
        for bucket_key in _BUCKET_KEYS:
            n = cur.get("buckets", {}).get(bucket_key, 0) - prev.get("buckets", {}).get(bucket_key, 0)
            if n:
                buckets[bucket_key] = n
        timers[key] = {
            "count": count,
            "total_s": cur["total_s"] - prev["total_s"],
            # Min/max are not differencable; report the window's bounds
            # conservatively as the after-side observations.
            "min_s": cur["min_s"],
            "max_s": cur["max_s"],
            "buckets": buckets,
        }
    gauges = {key: after["gauges"][key] for key in sorted(after.get("gauges", {}))}
    return {"counters": counters, "gauges": gauges, "timers": timers}


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _registry


def counter(name: str) -> Counter:
    """Named counter on the process registry."""
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    """Named gauge on the process registry."""
    return _registry.gauge(name)


def timer(name: str) -> Timer:
    """Named timer histogram on the process registry."""
    return _registry.timer(name)


def snapshot() -> dict:
    """Snapshot of the process registry (see :meth:`MetricsRegistry.snapshot`)."""
    return _registry.snapshot()


def merge(delta: dict) -> None:
    """Fold another process's snapshot diff into the process registry."""
    _registry.merge(delta)


def reset() -> None:
    """Zero the process registry (tests and benchmark scopes only)."""
    _registry.reset()
