"""Batch simulation runner with process fan-out.

The paper's evaluation is inherently a batch problem — Table II
workloads x policies x cooling modes x 2/4-layer stacks — and every
design-space sweep built on top of it (hysteresis, inlet-temperature,
stack-depth studies) multiplies that matrix further. This module runs
such batches:

* :class:`BatchRunner` takes a list of
  :class:`~repro.sim.config.SimulationConfig` (plus optional
  pre-generated traces), pre-warms one
  :class:`~repro.sim.cache.CharacterizationCache` in the parent
  process, and fans the runs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* results come back as a structured :class:`BatchResult` in input
  order, bit-identical to serial execution: every run is fully
  determined by its config (the trace is generated from
  ``config.seed`` inside the worker) and the characterizations are
  finished artifacts shipped to the workers, never re-derived;
* :mod:`repro.io.batch` exports a :class:`BatchResult` as JSON or CSV.

Deterministic per-run seeding: configs carry their own seeds; when a
sweep wants distinct stochastic instances of one scenario,
:func:`reseeded` derives ``seed = base_seed + index`` replacements so a
batch is reproducible run-for-run regardless of worker scheduling.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim import engine
from repro.sim.cache import CharacterizationCache
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.workload.generator import ThreadTrace


def reseeded(
    configs: Sequence[SimulationConfig], base_seed: int
) -> list[SimulationConfig]:
    """Copies of ``configs`` with deterministic per-run seeds.

    Run ``i`` gets ``seed = base_seed + i``, so a batch of otherwise
    identical configs becomes distinct-but-reproducible stochastic
    instances (and the assignment never depends on worker scheduling).
    """
    return [replace(config, seed=base_seed + i) for i, config in enumerate(configs)]


@dataclass
class BatchRun:
    """One completed run of a batch.

    Attributes
    ----------
    index:
        Position in the submitted config list.
    config:
        The run's configuration.
    result:
        The simulation output.
    elapsed:
        Wall-clock seconds the run took in its process (excludes
        queueing and transport).
    """

    index: int
    config: SimulationConfig
    result: SimulationResult
    elapsed: float


@dataclass
class BatchResult:
    """All runs of a batch, in submission order.

    Attributes
    ----------
    runs:
        One :class:`BatchRun` per submitted config.
    wall_time:
        Wall-clock seconds for the whole batch (excluding cache
        warm-up, which is shared and reported separately).
    warm_time:
        Seconds spent pre-warming the characterization cache.
    n_workers:
        Worker processes used (1 = serial in-process execution).
    """

    runs: list[BatchRun]
    wall_time: float
    warm_time: float
    n_workers: int

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def results(self) -> list[SimulationResult]:
        """The bare simulation results, in submission order."""
        return [run.result for run in self.runs]

    @property
    def configs(self) -> list[SimulationConfig]:
        """The run configurations, in submission order."""
        return [run.config for run in self.runs]

    def summary_rows(self) -> list[dict]:
        """One flat dict per run: config descriptor + scalar digest.

        The row layout feeds :func:`repro.io.batch.write_batch_csv`
        and the ``repro batch`` CLI table.
        """
        from repro.io.batch import config_descriptor
        from repro.io.serialize import result_summary

        rows = []
        for run in self.runs:
            row = {"run": run.index}
            row.update(config_descriptor(run.config))
            row.update(result_summary(run.result))
            row["elapsed_s"] = run.elapsed
            rows.append(row)
        return rows


@dataclass
class ReducedRun:
    """One completed run, collapsed to its reducer payload.

    What :meth:`BatchRunner.iter_reduced` yields instead of a
    :class:`BatchRun`: the full :class:`SimulationResult` (megabytes of
    time series) is reduced *in the worker process* and only the
    payload crosses the pool boundary — the transport the sweep and
    distributed layers use, since their folds never need the series.
    """

    index: int
    config: SimulationConfig
    payload: Any
    elapsed: float


#: A worker-side reducer: ``(tag, config, result) -> payload``. Must be
#: picklable (a module-level function or a class instance) and pure —
#: it runs on whatever process executed the run.
RunReducer = Callable[[Any, SimulationConfig, Any], Any]


def _execute_one(
    task: tuple[int, SimulationConfig, Optional[ThreadTrace]],
) -> BatchRun:
    """Run one configured simulation (worker side and serial path)."""
    index, config, trace = task
    start = time.perf_counter()
    with _trace.span("run", index=index, policy=config.policy, solver=config.solver):
        result = engine.Simulator(config, trace=trace).run()
    return BatchRun(
        index=index,
        config=config,
        result=result,
        elapsed=time.perf_counter() - start,
    )


def _execute_group(
    task: tuple[list[tuple], bool, Optional[RunReducer]],
) -> list:
    """Run one task group (a cohort slice, or a singleton).

    ``task`` is ``(group, block, reducer)`` with ``group`` a list of
    ``(index, config, trace, tag)``. Multi-member groups share their
    thermal kernel through :func:`repro.runner.cohort.execute_cohort`;
    singletons take the plain path. With a reducer, results collapse
    to :class:`ReducedRun` before leaving the process.
    """
    group, block, reducer = task
    if len(group) == 1:
        index, config, trace, _ = group[0]
        runs = [_execute_one((index, config, trace))]
        _metrics.counter("runner.runs").inc(mode="single")
    else:
        from repro.runner.cohort import execute_cohort

        runs = execute_cohort(
            [(index, config, trace) for index, config, trace, _ in group],
            block=block,
        )
        _metrics.counter("runner.runs").inc(
            len(runs), mode="block" if block else "exact"
        )
    if reducer is None:
        return runs
    return [
        ReducedRun(
            index=run.index,
            config=run.config,
            payload=reducer(tag, run.config, run.result),
            elapsed=run.elapsed,
        )
        for run, (_, _, _, tag) in zip(runs, group)
    ]


def _execute_group_remote(task: tuple) -> tuple[list, dict]:
    """Pool entrypoint: run a group and ship its metric delta back.

    Workers snapshot the telemetry registry around the group so only
    the group's *own* activity travels back (under ``fork`` the child
    inherits the parent's counter values; the diff cancels them). The
    parent merges every delta, so campaign counters aggregate across
    the pool exactly as they do serially.
    """
    before = _metrics.snapshot()
    items = _execute_group(task)
    return items, _metrics.snapshot_diff(before, _metrics.snapshot())


def _worker_init(
    cache: CharacterizationCache, trace_context: Optional[dict] = None
) -> None:
    """Install the parent's pre-warmed cache as the worker's default.

    Redundant under the ``fork`` start method (the child inherits the
    parent's module state) but required for ``spawn``/``forkserver``.
    Also activates the parent's trace context, so worker-side spans
    feed the worker's ``span.*`` timers (merged back per group).
    """
    engine.set_default_cache(cache)
    _trace.install_trace_context(trace_context)


class BatchRunner:
    """Runs a list of simulation configs, serially or across processes.

    Parameters
    ----------
    configs:
        The runs to execute, in order.
    traces:
        Optional pre-generated traces, one per config (``None`` entries
        fall back to the config's own seeded generator). Useful for
        replayed mpstat traces or the diurnal scenario shared across
        policies.
    max_workers:
        ``None`` or ``<= 1`` executes serially in-process; otherwise a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        workers is used (capped at the batch size).
    cache:
        The characterization cache to warm and ship to workers;
        defaults to the process-wide engine cache so batches share
        characterizations with prior in-process runs.
    warm:
        Pre-derive all needed characterizations in the parent before
        fanning out (strongly recommended for parallel runs: the
        artifacts are computed once instead of once per worker).
    cohort:
        Thermal-cohort grouping (see :mod:`repro.runner.cohort`):
        ``"off"`` (the default — one task per run, the historical
        behavior), ``"exact"``/``"auto"`` (group runs sharing a
        thermal kernel and execute each cohort against one shared
        system + steady init; bit-identical to ``"off"``), or
        ``"block"`` (additionally batch same-setting solves into one
        multi-RHS call — fastest, LU-roundoff-equivalent rather than
        byte-identical). In parallel mode cohorts are split into
        balanced per-worker slices so one big cohort still fills the
        pool.
    """

    _COHORT_MODES = ("off", "auto", "exact", "block")

    def __init__(
        self,
        configs: Sequence[SimulationConfig],
        traces: Optional[Sequence[Optional[ThreadTrace]]] = None,
        max_workers: Optional[int] = None,
        cache: Optional[CharacterizationCache] = None,
        warm: bool = True,
        cohort: str = "off",
    ) -> None:
        if not configs:
            raise ConfigurationError("a batch needs at least one config")
        if cohort not in self._COHORT_MODES:
            raise ConfigurationError(
                f"unknown cohort mode {cohort!r}; expected one of "
                f"{self._COHORT_MODES}"
            )
        self.cohort = "exact" if cohort == "auto" else cohort
        if traces is not None and len(traces) != len(configs):
            raise ConfigurationError(
                f"got {len(traces)} traces for {len(configs)} configs"
            )
        self.configs = list(configs)
        self.traces: list[Optional[ThreadTrace]] = (
            list(traces) if traces is not None else [None] * len(configs)
        )
        self.cache = cache if cache is not None else engine.default_cache()
        self.warm = warm
        if max_workers is None:
            self.max_workers = 1
        elif max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        else:
            self.max_workers = min(max_workers, len(self.configs))

    @classmethod
    def suggested_workers(cls) -> int:
        """A sensible default worker count for this machine."""
        return max(1, os.cpu_count() or 1)

    def warm_cache(self) -> float:
        """Pre-warm the cache for every config; returns elapsed seconds."""
        start = time.perf_counter()
        self.cache.warm(self.configs)
        return time.perf_counter() - start

    def _plan_groups(self) -> list[list[int]]:
        """The task groups this batch executes, as index lists.

        Cohort off: one singleton per run. Cohort on: the
        :func:`repro.runner.cohort.group_cohorts` partition, with each
        cohort further split into balanced slices in parallel mode so
        a single large cohort still occupies every worker (exact-mode
        members are independent, so slicing never changes results).
        Groups are ordered by first member; members keep submission
        order.
        """
        if self.cohort == "off":
            return [[i] for i in range(len(self.configs))]
        from repro.runner.cohort import group_cohorts, split_cohort

        # neighbors=True: krylov-solver configs differing only in
        # thermal_params group into one cohort so they execute back to
        # back and reuse each other's preconditioner LUs; exact-solver
        # configs partition exactly as before.
        groups = group_cohorts(self.configs, neighbors=True)
        if self.max_workers > 1:
            groups = [
                part
                for members in groups
                for part in split_cohort(members, self.max_workers)
            ]
        return groups

    def _iter_grouped(
        self,
        reducer: Optional[RunReducer],
        tags: Optional[Sequence],
    ) -> Iterator:
        """Shared engine behind :meth:`iter_runs` / :meth:`iter_reduced`.

        Executes the planned groups and re-emits their members in
        global submission order: a group's results are buffered until
        every earlier index has landed, so downstream folds stay
        deterministic however runs were grouped or scheduled.
        """
        if self.warm:
            self.warm_cache()
        block = self.cohort == "block"
        groups = [
            [
                (
                    i,
                    self.configs[i],
                    self.traces[i],
                    None if tags is None else tags[i],
                )
                for i in members
            ]
            for members in self._plan_groups()
        ]
        tasks = [(group, block, reducer) for group in groups]
        buffered: dict[int, Any] = {}
        emit_next = 0

        def ready():
            nonlocal emit_next
            while emit_next in buffered:
                yield buffered.pop(emit_next)
                emit_next += 1

        if self.max_workers <= 1:
            # Serial path: run in-process against the (now warm) cache.
            previous = engine.default_cache()
            engine.set_default_cache(self.cache)
            try:
                for task in tasks:
                    for item in _execute_group(task):
                        buffered[item.index] = item
                    yield from ready()
            finally:
                engine.set_default_cache(previous)
        else:
            pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_worker_init,
                initargs=(self.cache, _trace.trace_context()),
            )
            try:
                # pool.map yields groups in submission order as they land.
                for items, delta in pool.map(
                    _execute_group_remote, tasks, chunksize=1
                ):
                    _metrics.merge(delta)
                    for item in items:
                        buffered[item.index] = item
                    yield from ready()
            finally:
                pool.shutdown(wait=True, cancel_futures=True)

    def iter_runs(self) -> Iterator[BatchRun]:
        """Stream completed runs in submission order.

        The workhorse behind :meth:`run` and the sweep layer
        (:class:`repro.sweep.SweepRunner`): each :class:`BatchRun` is
        yielded as soon as it (and everything before it) has finished,
        so a consumer holds O(in-flight) results instead of O(batch)
        (cohort grouping raises the in-flight bound to O(cohort
        slice)). Yield order is always submission order — downstream
        folds (aggregators, journals) are therefore deterministic
        regardless of worker scheduling. Closing the generator early
        cancels the unconsumed remainder of a parallel batch.
        """
        return self._iter_grouped(None, None)

    def iter_reduced(
        self, reducer: RunReducer, tags: Optional[Sequence] = None
    ) -> Iterator[ReducedRun]:
        """Stream runs collapsed to reducer payloads, in submission order.

        ``reducer(tag, config, result)`` executes on whatever process
        ran the simulation, so a parallel batch ships only its payload
        (an export row, fold payloads — kilobytes) back to the parent
        instead of pickling full result arrays. ``tags`` optionally
        aligns one opaque value per config (e.g. a sweep point's
        ``(index, key)``) for the reducer's benefit. Identical math to
        :meth:`iter_runs` + reducing in the parent — the reducer must
        be pure, and fold payloads are defined to be state-independent.
        """
        if tags is not None and len(tags) != len(self.configs):
            raise ConfigurationError(
                f"got {len(tags)} tags for {len(self.configs)} configs"
            )
        return self._iter_grouped(reducer, tags)

    def run(self) -> BatchResult:
        """Execute the batch; results come back in submission order."""
        warm_time = self.warm_cache() if self.warm else 0.0
        was_warm, self.warm = self.warm, False
        start = time.perf_counter()
        try:
            runs = list(self.iter_runs())
        finally:
            self.warm = was_warm
        return BatchResult(
            runs=runs,
            wall_time=time.perf_counter() - start,
            warm_time=warm_time,
            n_workers=self.max_workers,
        )
