"""Cohort execution: many runs, one thermal network, one numeric kernel.

A sweep over policies, controllers, workloads, or seeds revisits the
*same* 3D stack run after run — every config maps to one assembled
:class:`~repro.sim.system.ThermalSystem` and its cached LU
factorizations. This module groups a batch's configs by that identity
(:func:`cohort_signature`) and executes each cohort against a single
shared system:

* the steady-state initialization (the paper starts every run "with
  steady state temperature values", a leakage fixed-point costing six
  sparse solves) is computed once per distinct initial condition and
  installed into every member via
  :meth:`~repro.sim.engine.Simulator.set_initial_temperatures`;
* the assembled networks and LU factorizations are shared through the
  process-wide system memo, so a cohort factorizes each (setting, dt)
  system at most once however many members step through it;
* per-run state — scheduler queues, DPM, controller, forecaster,
  workload trace, recorders — stays fully independent per member.

Two execution modes:

``exact`` (the default)
    Every member performs its own per-column ``TransientSolver.step``
    against the shared LU. Bit-identical to serial execution by
    construction: the same float operations in the same order per run.
    This is the mode :class:`repro.sweep.SweepRunner` and the
    distributed workers route through.

``block``
    Members are stepped per control interval in lockstep
    (:meth:`~repro.sim.engine.Simulator.step_begin` /
    :meth:`~repro.sim.engine.Simulator.step_finish`), and all members
    at the same pump setting advance through one multi-RHS
    :meth:`~repro.thermal.solver.TransientSolver.step_many` solve.
    Fastest, but SuperLU's blocked multi-RHS kernels round differently
    than its single-vector path (~1e-14 K), so block results are
    LU-roundoff-equivalent to serial, not byte-identical — which is
    why it is opt-in and never the default for checkpointed sweeps.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.sim import engine
from repro.sim.cache import _system_memo_key
from repro.sim.config import SimulationConfig
from repro.telemetry import trace as _trace
from repro.thermal.rc_network import ThermalParams
from repro.workload.generator import ThreadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch imports us)
    from repro.runner.batch import BatchRun


def cohort_signature(config: SimulationConfig) -> tuple:
    """The thermal-kernel identity of a config.

    The projection of the config onto the fields that decide which
    assembled network *and* which backward-Euler system matrix a run
    steps through: the system-memo key (layers, cooling kind, grid,
    thermal params — see :func:`repro.sim.cache._system_memo_key`)
    plus the sampling interval (the LU depends on dt). Configs with
    equal signatures share every factorization; nothing else about
    them (policy, controller, workload, seed, duration) matters to the
    numeric kernel.
    """
    return _system_memo_key(config) + (config.sampling_interval,)


def structural_signature(config: SimulationConfig) -> tuple:
    """The *structural* thermal identity of a config.

    :func:`cohort_signature` with the swept thermal-parameter values
    projected out: layers, cooling kind, grid resolution, solver tier,
    and sampling interval — everything that decides the sparsity
    structure of the system matrices, but not their values. Configs
    that agree here but differ in ``thermal_params`` build *different*
    networks of the *same* shape, which is exactly the neighborhood a
    ``solver="krylov"`` run preconditions across.
    """
    return tuple(
        part
        for part in _system_memo_key(config)
        if not isinstance(part, ThermalParams)
    ) + (config.sampling_interval,)


def group_cohorts(
    configs: Sequence[SimulationConfig], neighbors: bool = False
) -> list[list[int]]:
    """Partition config indices into cohorts sharing one thermal kernel.

    Returns index lists: every index appears in exactly one cohort (a
    true partition — property-tested over arbitrary sweep expansions),
    all members of a cohort agree on :func:`cohort_signature`, cohorts
    are ordered by first appearance, and members keep submission
    order.

    With ``neighbors=True``, ``solver="krylov"`` configs group by
    :func:`structural_signature` instead, so design points that differ
    only in ``thermal_params`` values land in one *neighbor cohort*
    and share the preconditioner pool (and the in-process LRU caches)
    by running back to back. Exact-solver configs always group by the
    full :func:`cohort_signature` — the default partition is unchanged,
    which keeps the byte-identity guarantee of exact mode trivially
    intact.
    """
    with _trace.span(
        "cohort.plan", n_configs=len(configs), neighbors=neighbors
    ) as plan_span:
        groups: dict[tuple, list[int]] = {}
        for i, config in enumerate(configs):
            if neighbors and config.solver == "krylov":
                key: tuple = ("structural",) + structural_signature(config)
            else:
                key = ("exact",) + cohort_signature(config)
            groups.setdefault(key, []).append(i)
        plan_span.set_attrs(n_cohorts=len(groups))
        return list(groups.values())


def split_cohort(members: list[int], parts: int) -> list[list[int]]:
    """Split one cohort into up to ``parts`` balanced, ordered slices.

    The parallel batch path uses this so a single large cohort still
    occupies every pool worker; exact-mode members are independent, so
    slicing never changes results. Slice sizes differ by at most one
    and concatenate back to ``members``.
    """
    parts = max(1, min(parts, len(members)))
    base, extra = divmod(len(members), parts)
    out, at = [], 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append(members[at:at + size])
        at += size
    return out


def _share_initial_state(sims: Sequence[engine.Simulator]) -> None:
    """Compute each distinct steady initial field once, install it in
    every member that starts from it (bit-identical to each member
    solving for itself — same system instance, same LU, same ops)."""
    fields: dict[tuple, np.ndarray] = {}
    for sim in sims:
        key = sim.initial_condition_key()
        if key not in fields:
            fields[key] = sim.steady_initial_temperatures()
        sim.set_initial_temperatures(fields[key])


def _run_block(sims: Sequence[engine.Simulator]) -> None:
    """Step all members per control interval, batching same-setting
    solves into one multi-RHS call against the shared LU."""
    active = [sim for sim in sims if not sim.finished]
    while active:
        pendings = [(sim, sim.step_begin()) for sim in active]
        by_setting: dict[int, list] = {}
        for sim, pending in pendings:
            by_setting.setdefault(pending.setting, []).append((sim, pending))
        for setting, members in by_setting.items():
            system = members[0][0].system
            dt = members[0][0].config.sampling_interval
            solver = system.transient_solver(setting, dt)
            if len(members) == 1:
                sim, pending = members[0]
                solved = solver.step(pending.temperatures, pending.node_power)
                sim.step_finish(pending, solved)
            else:
                temps = np.stack(
                    [pending.temperatures for _, pending in members], axis=1
                )
                powers = np.stack(
                    [pending.node_power for _, pending in members], axis=1
                )
                out = solver.step_many(temps, powers)
                for j, (sim, pending) in enumerate(members):
                    sim.step_finish(
                        pending, np.ascontiguousarray(out[:, j])
                    )
        active = [sim for sim in active if not sim.finished]


def execute_cohort(
    tasks: Sequence[tuple[int, SimulationConfig, Optional[ThreadTrace]]],
    block: bool = False,
) -> "list[BatchRun]":
    """Execute one cohort of same-signature configs; returns
    :class:`~repro.runner.batch.BatchRun` entries in task order.

    Singleton cohorts fall back to the plain serial path (nothing to
    share beyond what the system memo already provides). Per-run
    ``elapsed`` is the cohort's wall time split evenly — members
    advance through shared solves, so finer attribution would be
    arbitrary.
    """
    from repro.runner.batch import BatchRun

    start = time.perf_counter()
    with _trace.span(
        "cohort.execute", n_members=len(tasks), mode="block" if block else "exact"
    ):
        sims = _execute_cohort_sims(tasks, block)
    elapsed = (time.perf_counter() - start) / len(sims)
    return [
        BatchRun(index=index, config=config, result=sim.result(), elapsed=elapsed)
        for (index, config, _), sim in zip(tasks, sims)
    ]


def _execute_cohort_sims(
    tasks: Sequence[tuple[int, SimulationConfig, Optional[ThreadTrace]]],
    block: bool,
) -> "list[engine.Simulator]":
    sims = [
        engine.Simulator(config, trace=trace) for _, config, trace in tasks
    ]
    if len(sims) > 1:
        # A neighbor cohort (krylov mode) mixes members whose networks
        # differ in thermal-parameter values; initial-state sharing and
        # block stepping are only valid between members with identical
        # kernels, so both operate per full-signature subgroup. A
        # uniform cohort is one subgroup — the historical behavior,
        # bit for bit.
        subgroups: dict[tuple, list[engine.Simulator]] = {}
        for sim, (_, config, _) in zip(sims, tasks):
            subgroups.setdefault(cohort_signature(config), []).append(sim)
        for members in subgroups.values():
            if len(members) > 1:
                _share_initial_state(members)
        if block:
            for members in subgroups.values():
                _run_block(members)
        else:
            for sim in sims:
                sim.run()
    else:
        sims[0].run()
    return sims


class CohortRunner:
    """Batch execution with cohort grouping always on.

    A thin, discoverable face over :class:`repro.runner.BatchRunner`'s
    cohort mode: ``CohortRunner(configs).run()`` groups the configs by
    :func:`cohort_signature`, shares each cohort's thermal kernel, and
    returns a normal :class:`~repro.runner.batch.BatchResult` in
    submission order — byte-identical to ``BatchRunner(configs).run()``
    unless ``block=True`` trades bitwise identity for the multi-RHS
    kernel.
    """

    def __init__(
        self,
        configs: Sequence[SimulationConfig],
        traces: Optional[Sequence[Optional[ThreadTrace]]] = None,
        max_workers: Optional[int] = None,
        cache=None,
        warm: bool = True,
        block: bool = False,
    ) -> None:
        from repro.runner.batch import BatchRunner

        self._batch = BatchRunner(
            configs,
            traces=traces,
            max_workers=max_workers,
            cache=cache,
            warm=warm,
            cohort="block" if block else "exact",
        )

    @property
    def cohorts(self) -> list[list[int]]:
        """The cohort partition of the submitted configs."""
        return group_cohorts(self._batch.configs)

    def iter_runs(self):
        """Stream completed runs in submission order (see
        :meth:`repro.runner.BatchRunner.iter_runs`)."""
        return self._batch.iter_runs()

    def run(self):
        """Execute every cohort; results in submission order."""
        return self._batch.run()
