"""Batch orchestration: run many simulations, serially or in parallel.

See :mod:`repro.runner.batch` for the design; the experiments layer
(:func:`repro.experiments.common.run_matrix`), the ``repro batch`` CLI
command, and ``benchmarks/bench_batch.py`` all route multi-run work
through :class:`BatchRunner`. :mod:`repro.runner.cohort` adds
thermal-cohort grouping — runs sharing one network advance through one
shared numeric kernel (:class:`CohortRunner`, or ``cohort=`` on
:class:`BatchRunner`).
"""

from repro.runner.batch import (
    BatchResult,
    BatchRun,
    BatchRunner,
    ReducedRun,
    reseeded,
)
from repro.runner.cohort import (
    CohortRunner,
    cohort_signature,
    group_cohorts,
    structural_signature,
)

__all__ = [
    "BatchRunner",
    "BatchResult",
    "BatchRun",
    "CohortRunner",
    "ReducedRun",
    "cohort_signature",
    "group_cohorts",
    "structural_signature",
    "reseeded",
]
