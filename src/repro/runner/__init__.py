"""Batch orchestration: run many simulations, serially or in parallel.

See :mod:`repro.runner.batch` for the design; the experiments layer
(:func:`repro.experiments.common.run_matrix`), the ``repro batch`` CLI
command, and ``benchmarks/bench_batch.py`` all route multi-run work
through :class:`BatchRunner`.
"""

from repro.runner.batch import BatchResult, BatchRun, BatchRunner, reseeded

__all__ = [
    "BatchRunner",
    "BatchResult",
    "BatchRun",
    "reseeded",
]
