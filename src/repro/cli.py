"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's entry points so the whole evaluation can
be driven without writing Python:

* ``simulate`` — one configured run, with optional JSON/CSV export;
* ``batch`` — a (workload x policy x cooling) sweep through the
  :class:`repro.runner.BatchRunner`, optionally fanned out over worker
  processes, with JSON/CSV export of the whole batch;
* ``sweep run | resume | status`` — declarative checkpointed campaigns
  through :class:`repro.sweep.SweepRunner`: ``--spec`` names a built-in
  declaration (``fig6``, ``fig7``, ``fig8``, ``fourlayer``,
  ``headline``, ``ablations``, ``hysteresis``, ``workloads``,
  ``facility``) or a JSON/YAML spec
  file, progress streams (rate-limited) as runs fold, and an
  interrupted campaign resumes from its checkpoint with bit-identical
  aggregates and exports;
* ``dist plan | work | merge | status`` — the same campaigns sharded
  across worker processes and hosts (:mod:`repro.dist`): ``plan``
  writes the leased work ledger, any number of ``work`` loops execute
  shards (with stale-lease reclaim when a worker crashes), and
  ``merge`` folds the shard journals into aggregates/CSV/JSON
  byte-identical to a single-host ``sweep run``;
* ``telemetry summary | validate`` — inspect the trace JSONL files the
  ``--trace`` flags (on ``simulate``, ``sweep run|resume``, and ``dist
  work``) export: per-span timing breakdowns, the final metrics
  snapshot, and schema validation for CI gating;
* ``list policies | controllers | forecasters | workloads |
  facilities`` — the registered component keys
  (:mod:`repro.registry`), each with its aliases and declared
  parameter schema; any key shown here is a valid
  ``--policy``/``--controller``/``--forecaster``/``--workload``/
  ``--facility`` value and a valid sweep-spec axis value, and its
  parameters are settable via ``--policy-param NAME=VALUE``
  (repeatable) or the dotted ``policy_params.<name>`` /
  ``controller_params.<name>`` / ``workload_params.<name>`` /
  ``facility_params.<name>`` sweep axes;
* ``fig3 | fig5 | fig6 | fig7 | fig8 | table2 | headline | ablations``
  — regenerate a table/figure and print its rows (the multi-run
  figures accept ``--workers`` for process fan-out);
* ``calibrate`` — re-derive the documented resistance scales;
* ``workloads`` — list the Table II benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.dist.plan import DEFAULT_CHUNK_SIZE
from repro.dist.worker import DEFAULT_LEASE_TTL
from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    common,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fourlayer,
    headline,
    sweeps as experiment_sweeps,
    table2,
)
from repro.progress import ProgressReporter
from repro.io.serialize import result_summary, save_result, write_timeseries_csv
from repro.registry import (
    Registry,
    controller_registry,
    facility_registry,
    forecaster_registry,
    policy_registry,
    workload_registry,
)
from repro.sim.config import CoolingMode, SimulationConfig
from repro.sim.engine import simulate
from repro.workload.benchmarks import TABLE_II

#: Built-in sweep declarations ``repro sweep run --spec <name>`` and
#: ``repro dist plan --spec <name>`` accept.
BUILTIN_SPECS = {
    "fig6": fig6.sweep_spec,
    "fig7": fig7.sweep_spec,
    "fig8": fig8.sweep_spec,
    "fourlayer": fourlayer.sweep_spec,
    "headline": headline.sweep_spec,
    "ablations": ablations.controller_ablation_spec,
    "hysteresis": experiment_sweeps.hysteresis_spec,
    "controllers": experiment_sweeps.controller_family_spec,
    "workloads": experiment_sweeps.workload_family_spec,
    "facility": experiment_sweeps.facility_headline_spec,
}


def _registry_choices(registry: Registry) -> list[str]:
    """Accepted argparse values: canonical keys plus declared aliases."""
    return sorted(set(registry.keys()) | set(registry.known_names()))


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-efficient variable-flow liquid cooling "
        "in 3D stacked architectures (DATE 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one simulation")
    sim.add_argument("--benchmark", default="Web-med", help="Table II workload")
    sim.add_argument(
        "--policy",
        default="TALB",
        choices=_registry_choices(policy_registry()),
        help="scheduling policy (registry key; see 'repro list policies')",
    )
    sim.add_argument(
        "--policy-param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="set one declared policy parameter (repeatable)",
    )
    sim.add_argument(
        "--cooling",
        default="Var",
        choices=[c.value for c in CoolingMode],
        help="Air, Max (worst-case flow), or Var (the controller)",
    )
    sim.add_argument(
        "--controller",
        default="lut",
        choices=_registry_choices(controller_registry()),
        help="variable-flow controller (registry key; see "
        "'repro list controllers')",
    )
    sim.add_argument(
        "--controller-param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="set one declared controller parameter (repeatable)",
    )
    sim.add_argument(
        "--forecaster",
        default="arma",
        choices=_registry_choices(forecaster_registry()),
        help="maximum-temperature forecaster (registry key)",
    )
    sim.add_argument(
        "--forecaster-param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="set one declared forecaster parameter (repeatable)",
    )
    sim.add_argument(
        "--workload",
        default="table2",
        choices=_registry_choices(workload_registry()),
        help="workload model building the thread trace (registry key; "
        "see 'repro list workloads')",
    )
    sim.add_argument(
        "--workload-param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="set one declared workload-model parameter (repeatable), "
        "e.g. --workload-param path=trace.csv for trace-replay",
    )
    sim.add_argument(
        "--facility",
        default="none",
        choices=_registry_choices(facility_registry()),
        help="facility cooling plant co-simulated with the chip "
        "(registry key; see 'repro list facilities'); 'none' keeps "
        "the classic fixed-inlet boundary",
    )
    sim.add_argument(
        "--facility-param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="set one declared facility parameter (repeatable), "
        "e.g. --facility-param wet_bulb_c=14",
    )
    sim.add_argument("--layers", type=int, default=2, choices=(2, 4))
    sim.add_argument(
        "--solver",
        default="exact",
        choices=("exact", "krylov"),
        help="thermal linear-solver tier: exact (sparse LU, "
        "bit-reproducible) or krylov (neighbor-preconditioned GMRES, "
        "reuses nearby design points' factorizations; see README)",
    )
    sim.add_argument("--duration", type=float, default=20.0, help="simulated seconds")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--dpm", action="store_true", help="enable the 200 ms DPM policy")
    sim.add_argument(
        "--trace-csv",
        metavar="PATH",
        help="replay an mpstat-style utilization trace (second,"
        "utilization_pct CSV) instead of the stationary generator; "
        "the run length becomes the trace length (shorthand for "
        "--workload trace-replay --workload-param path=...)",
    )
    sim.add_argument("--save-json", metavar="PATH", help="write the full result as JSON")
    sim.add_argument("--save-csv", metavar="PATH", help="write the time series as CSV")
    sim.add_argument(
        "--trace", metavar="PATH",
        help="record span telemetry and export it as trace JSONL "
        "(inspect with 'repro telemetry summary')",
    )

    batch = sub.add_parser(
        "batch",
        help="run a (workload x policy x cooling) sweep, optionally in parallel",
        description="Cross-product sweep through the BatchRunner: every "
        "combination of --workloads, --policies, and --cooling becomes one "
        "run. Characterizations are derived once in the parent and shipped "
        "to the workers; results are identical for any --workers value.",
    )
    batch.add_argument(
        "--workloads",
        default="all",
        help="comma-separated Table II benchmarks, or 'all' (default)",
    )
    batch.add_argument(
        "--policies",
        default="TALB",
        help="comma-separated policy registry keys (%s), or 'all' for "
        "every registered policy" % ",".join(policy_registry().keys()),
    )
    batch.add_argument(
        "--cooling",
        default="Var",
        help="comma-separated cooling modes (%s), or 'all'"
        % ",".join(c.value for c in CoolingMode),
    )
    batch.add_argument("--layers", type=int, default=2, choices=(2, 4))
    batch.add_argument("--duration", type=float, default=common.DEFAULT_DURATION)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--dpm", action="store_true", help="enable the 200 ms DPM policy")
    batch.add_argument(
        "--reseed",
        type=int,
        metavar="BASE",
        help="give run i the seed BASE+i (distinct stochastic instances)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    batch.add_argument(
        "--save-json", metavar="PATH", help="write the batch summaries as JSON"
    )
    batch.add_argument(
        "--save-csv", metavar="PATH", help="write one CSV row per run"
    )

    sweep = sub.add_parser(
        "sweep",
        help="declarative checkpointed sweeps (run / resume / status)",
        description="Declarative sweep campaigns: a spec (built-in name or "
        "JSON/YAML file) expands to runs, results stream into incremental "
        "aggregators, and progress journals to a checkpoint so interrupted "
        "campaigns resume without recomputation (bit-identical exports).",
    )
    swsub = sweep.add_subparsers(dest="sweep_command", required=True)

    def _sweep_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker processes (1 = serial; results are identical)",
        )
        p.add_argument(
            "--checkpoint", metavar="PATH",
            help="journal file for checkpoint/resume",
        )
        p.add_argument(
            "--stop-after", type=int, metavar="K",
            help="fold at most K runs this session, then checkpoint and exit",
        )
        p.add_argument(
            "--snapshot-every", type=int, default=1, metavar="K",
            help="aggregator snapshot cadence in the journal (default 1)",
        )
        p.add_argument(
            "--save-json", metavar="PATH",
            help="write rows + aggregates as JSON when the sweep completes",
        )
        p.add_argument(
            "--save-csv", metavar="PATH",
            help="stream one CSV row per run as the sweep folds",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress per-run progress"
        )
        p.add_argument(
            "--cohort", choices=("auto", "off", "block"), default="auto",
            help="thermal-cohort batching: auto shares each cohort's "
            "kernel byte-identically (default), off restores the "
            "per-run path, block enables the multi-RHS kernel "
            "(LU-roundoff-equivalent, not byte-identical)",
        )
        p.add_argument(
            "--trace", metavar="PATH",
            help="record span telemetry during the sweep and export it "
            "as trace JSONL (results stay byte-identical)",
        )

    sw_run = swsub.add_parser(
        "run",
        help="start a sweep",
        description="Start a declared sweep. --spec is a built-in name "
        f"({', '.join(BUILTIN_SPECS)}) or a JSON/YAML spec file with "
        "base/grid/zip/points/reseed keys.",
    )
    sw_run.add_argument("--spec", required=True, metavar="NAME|FILE")
    sw_run.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds per run (built-in specs only)",
    )
    sw_run.add_argument(
        "--seed", type=int, default=None, help="base seed (built-in specs only)"
    )
    sw_run.add_argument(
        "--resume", action="store_true",
        help="continue from --checkpoint if it already exists",
    )
    sw_run.add_argument(
        "--solver", default=None, choices=("exact", "krylov"),
        help="override the base config's thermal-solver tier; changes "
        "the sweep fingerprint, so exact and krylov checkpoints never "
        "mix (resume with the same --solver)",
    )
    _sweep_exec_args(sw_run)

    sw_resume = swsub.add_parser(
        "resume",
        help="continue an interrupted sweep from its checkpoint",
    )
    sw_resume.add_argument("--spec", required=True, metavar="NAME|FILE")
    sw_resume.add_argument("--duration", type=float, default=None)
    sw_resume.add_argument("--seed", type=int, default=None)
    sw_resume.add_argument(
        "--solver", default=None, choices=("exact", "krylov"),
        help="must match the --solver the sweep was started with",
    )
    _sweep_exec_args(sw_resume)

    sw_status = swsub.add_parser(
        "status", help="report a checkpoint's progress"
    )
    sw_status.add_argument("--checkpoint", required=True, metavar="PATH")

    dist = sub.add_parser(
        "dist",
        help="distributed campaigns (plan / work / merge / status)",
        description="Shard a sweep campaign across worker processes and "
        "hosts over a shared campaign directory: 'plan' writes the leased "
        "work ledger, any number of 'work' loops claim and execute shards "
        "(crashed workers' leases go stale and are reclaimed), and 'merge' "
        "folds the shard journals into aggregates, CSV, and completion "
        "JSON byte-identical to a single-host 'repro sweep run'.",
    )
    dsub = dist.add_subparsers(dest="dist_command", required=True)

    d_plan = dsub.add_parser(
        "plan",
        help="shard a sweep spec into a campaign work ledger",
        description="Write a campaign ledger. --spec is a built-in name "
        f"({', '.join(BUILTIN_SPECS)}) or a JSON/YAML spec file. "
        "Re-planning the identical campaign is a no-op.",
    )
    d_plan.add_argument("--spec", required=True, metavar="NAME|FILE")
    d_plan.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds per run (built-in specs only)",
    )
    d_plan.add_argument(
        "--seed", type=int, default=None, help="base seed (built-in specs only)"
    )
    d_plan.add_argument(
        "--dir", required=True, metavar="DIR",
        help="campaign directory (must be shared by every worker host)",
    )
    d_plan.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE, metavar="N",
        help=f"runs per leased shard (default {DEFAULT_CHUNK_SIZE})",
    )

    d_work = dsub.add_parser(
        "work",
        help="claim and execute shard leases until the campaign is done",
    )
    d_work.add_argument("--dir", required=True, metavar="DIR")
    d_work.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="identity recorded in leases/journals (default host:pid)",
    )
    d_work.add_argument(
        "--workers", type=int, default=1,
        help="process fan-out within each shard (results are identical)",
    )
    d_work.add_argument(
        "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL, metavar="S",
        help="seconds before an unrefreshed lease counts as stale "
        f"(default {DEFAULT_LEASE_TTL:.0f}; must exceed one run)",
    )
    d_work.add_argument(
        "--max-shards", type=int, default=None, metavar="K",
        help="execute at most K shards this session, then exit",
    )
    d_work.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="S",
        help="seconds between scans while other workers hold all shards",
    )
    d_work.add_argument(
        "--no-wait", action="store_true",
        help="exit when nothing is claimable instead of waiting "
        "for other workers to finish",
    )
    d_work.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    d_work.add_argument(
        "--cohort", choices=("auto", "off", "block"), default="auto",
        help="thermal-cohort batching within each shard (see "
        "'repro sweep run --cohort')",
    )
    d_work.add_argument(
        "--solver", default=None, choices=("exact", "krylov"),
        help="override every run's thermal-solver tier for this worker "
        "(krylov reuses neighbor factorizations across thermal_params "
        "design points; results match exact within the documented "
        "tolerance but the merged campaign loses the bitwise "
        "guarantee, like --cohort block)",
    )
    d_work.add_argument(
        "--trace", metavar="PATH",
        help="record span telemetry for this worker session, export it "
        "as trace JSONL, and journal per-shard metric deltas for "
        "'repro dist merge' to aggregate (journals and results stay "
        "byte-identical without this flag)",
    )

    d_merge = dsub.add_parser(
        "merge",
        help="fold finished shard journals into the final aggregates",
    )
    d_merge.add_argument("--dir", required=True, metavar="DIR")
    d_merge.add_argument(
        "--save-json", metavar="PATH",
        help="write rows + aggregates as completion JSON "
        "(byte-identical to a single-host run's)",
    )
    d_merge.add_argument(
        "--save-csv", metavar="PATH", help="write one CSV row per run"
    )
    d_merge.add_argument(
        "--partial", action="store_true",
        help="merge the contiguous finished prefix even if shards are missing",
    )

    d_status = dsub.add_parser(
        "status", help="report a campaign directory's progress"
    )
    d_status.add_argument("--dir", required=True, metavar="DIR")

    tel = sub.add_parser(
        "telemetry",
        help="inspect and validate trace JSONL files",
        description="Work with the trace JSONL files the --trace flags "
        "export: 'summary' prints the per-span timing breakdown and the "
        "final metrics snapshot, 'validate' checks the file against the "
        "documented schema (every line parses, required span keys "
        "present, ids unique, children nested within parents) and exits "
        "non-zero on any violation — CI uses it as the telemetry gate.",
    )
    tsub = tel.add_subparsers(dest="telemetry_command", required=True)
    t_summary = tsub.add_parser(
        "summary", help="per-span timing breakdown of a trace file"
    )
    t_summary.add_argument("path", metavar="PATH", help="trace JSONL file")
    t_validate = tsub.add_parser(
        "validate", help="check a trace file against the schema"
    )
    t_validate.add_argument("path", metavar="PATH", help="trace JSONL file")

    for name, help_text in (
        ("fig3", "pump power and per-cavity flows"),
        ("fig6", "hot spots and energy, all policies"),
        ("fig7", "thermal variations (DPM on)"),
        ("fig8", "performance and energy"),
        ("table2", "workload characteristics"),
        ("headline", "energy savings vs maximum flow"),
    ):
        p = sub.add_parser(name, help=help_text)
        if name != "fig3":
            p.add_argument("--duration", type=float, default=common.DEFAULT_DURATION)
            p.add_argument("--seed", type=int, default=0)
        if name in ("fig6", "fig7", "fig8", "headline"):
            # table2 is generator statistics only — nothing to fan out.
            p.add_argument(
                "--workers",
                type=int,
                default=1,
                help="worker processes for the sweep (results are identical)",
            )

    f5 = sub.add_parser("fig5", help="flow required to cool a given T_max")
    f5.add_argument("--layers", type=int, default=2, choices=(2, 4))
    f5.add_argument(
        "--continuous",
        action="store_true",
        help="also compute the continuous minimum-flow curve (slow)",
    )

    ab = sub.add_parser("ablations", help="controller design-choice ablations")
    ab.add_argument("--duration", type=float, default=15.0)

    cal = sub.add_parser("calibrate", help="re-derive the resistance scales")
    cal.add_argument(
        "--path",
        default="liquid",
        choices=("liquid", "air"),
        help="which cooling path to calibrate",
    )

    lister = sub.add_parser(
        "list",
        help="list registered components "
        "(policies/controllers/forecasters/workloads/facilities)",
        description="Show the component registry: every key in the chosen "
        "role with its aliases, capability traits, and declared parameter "
        "schema. Any key listed here works as a config value, a CLI "
        "--policy/--controller/--forecaster/--workload/--facility choice, "
        "and a sweep-spec axis value; parameters flow through "
        "--policy-param/--controller-param/--workload-param/"
        "--facility-param and the dotted "
        "policy_params.<name>/controller_params.<name>/"
        "workload_params.<name>/facility_params.<name> axes.",
    )
    lister.add_argument(
        "what",
        choices=("policies", "controllers", "forecasters", "workloads",
                 "facilities", "all"),
        nargs="?",
        default="all",
        help="which registry to list (default: all)",
    )

    sub.add_parser("workloads", help="list the Table II benchmarks")
    return parser


def _print_rows(rows: list[dict]) -> None:
    print(common.format_rows(rows))


def _parse_cli_params(items: list, what: str) -> dict:
    """Parse repeated ``NAME=VALUE`` flags into a parameter mapping.

    Values parse as JSON scalars where possible (``kp=1.5`` is a
    float, ``flag=true`` a bool) and fall back to plain strings; the
    registry's declared schema validates them either way.
    """
    import json

    params: dict = {}
    for item in items:
        name, sep, raw = item.partition("=")
        if not sep or not name:
            raise SystemExit(
                f"error: bad {what} {item!r}; expected NAME=VALUE"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        params[name] = value
    return params


def _cmd_simulate(args: argparse.Namespace) -> int:
    _checked_output(args.save_json, "JSON output")
    _checked_output(args.save_csv, "CSV output")
    _trace_enable(args.trace)
    thread_trace = None
    duration = args.duration
    if args.trace_csv:
        from repro.workload.traces import UtilizationTrace, generate_from_utilization

        n_cores = 8 if args.layers == 2 else 16
        profile = UtilizationTrace.from_csv(args.trace_csv, n_cores=n_cores)
        from repro.workload.benchmarks import benchmark as lookup

        thread_trace = generate_from_utilization(
            profile, lookup(args.benchmark), seed=args.seed
        )
        duration = profile.duration
    try:
        config = SimulationConfig(
            benchmark_name=args.benchmark,
            policy=args.policy,
            policy_params=_parse_cli_params(args.policy_param, "--policy-param"),
            cooling=CoolingMode(args.cooling),
            controller=args.controller,
            controller_params=_parse_cli_params(
                args.controller_param, "--controller-param"
            ),
            forecaster=args.forecaster,
            forecaster_params=_parse_cli_params(
                args.forecaster_param, "--forecaster-param"
            ),
            workload=args.workload,
            workload_params=_parse_cli_params(
                args.workload_param, "--workload-param"
            ),
            facility=args.facility,
            facility_params=_parse_cli_params(
                args.facility_param, "--facility-param"
            ),
            n_layers=args.layers,
            duration=duration,
            seed=args.seed,
            dpm_enabled=args.dpm,
            solver=args.solver,
        )
    except ConfigurationError as exc:
        raise SystemExit(f"error: {exc}") from None
    result = simulate(config, trace=thread_trace)
    print(f"run: {config.label()} / {config.benchmark_name} / "
          f"{config.n_layers}-layer / {config.duration:.0f}s")
    for key, value in result_summary(result).items():
        print(f"  {key:26s}: {value}")
    if args.save_json:
        save_result(result, args.save_json)
        print(f"  wrote JSON -> {args.save_json}")
    if args.save_csv:
        write_timeseries_csv(result, args.save_csv)
        print(f"  wrote CSV  -> {args.save_csv}")
    _trace_export(args.trace)
    return 0


def _validated_workers(args: argparse.Namespace) -> int:
    """Uniform --workers validation across batch and figure commands."""
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1 (1 = serial)")
    return args.workers


def _checked_output(path_str: Optional[str], what: str) -> Optional[str]:
    """Fail fast — with a clear message, not a traceback — when an
    output path's parent directory does not exist.

    Validated before any simulation starts, so a typo'd path surfaces
    immediately instead of after an hours-long sweep.
    """
    if path_str is None:
        return None
    parent = Path(path_str).resolve().parent
    if not parent.is_dir():
        raise SystemExit(
            f"error: cannot write {what} {path_str!r}: "
            f"directory {str(parent)!r} does not exist"
        )
    return path_str


def _trace_enable(path_str: Optional[str]) -> Optional[str]:
    """Validate a ``--trace`` output path and switch span tracing on.

    A no-op (tracing stays disabled, zero overhead) when the flag was
    not given.
    """
    if path_str is None:
        return None
    from repro.telemetry import trace

    _checked_output(path_str, "trace output")
    trace.enable()
    return path_str


def _trace_export(path_str: Optional[str]) -> None:
    """Export the buffered spans + metrics snapshot to a ``--trace`` path."""
    if path_str is None:
        return
    from repro.telemetry import trace

    trace.export_trace(path_str)
    print(f"wrote trace -> {path_str}")


def _print_metrics_report(snapshot: dict, indent: str = "  ") -> None:
    """Render a metrics snapshot: counters, then per-span timings."""
    counters = snapshot.get("counters") or {}
    if counters:
        width = max(len(key) for key in counters)
        for key in sorted(counters):
            print(f"{indent}{key:<{width}} {counters[key]}")
    timers = snapshot.get("timers") or {}
    if timers:
        width = max(len(key) for key in timers)
        for key in sorted(timers):
            stats = timers[key]
            print(
                f"{indent}{key:<{width}} count {stats.get('count', 0):>6} "
                f"total {stats.get('total_s', 0.0):.3f}s "
                f"max {stats.get('max_s', 0.0):.4f}s"
            )
    if not counters and not timers:
        print(f"{indent}(no metrics recorded)")


def _split_choices(raw: str, values: list[str], what: str) -> list[str]:
    """Parse a comma-separated choice list ('all' = every value)."""
    if raw.strip().lower() == "all":
        return list(values)
    chosen = [item.strip() for item in raw.split(",") if item.strip()]
    for item in chosen:
        if item not in values:
            raise SystemExit(
                f"unknown {what} {item!r}; choose from {', '.join(values)} or 'all'"
            )
    if not chosen:
        raise SystemExit(f"no {what} selected")
    return chosen


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.io.batch import save_batch, write_batch_csv
    from repro.runner import BatchRunner, reseeded

    _checked_output(args.save_json, "JSON output")
    _checked_output(args.save_csv, "CSV output")
    registry = policy_registry()
    workloads = _split_choices(args.workloads, list(TABLE_II), "workload")
    if args.policies.strip().lower() == "all":
        policies = registry.keys()
    else:
        policies = []
        for item in (p.strip() for p in args.policies.split(",") if p.strip()):
            try:
                policies.append(registry.normalize(item))
            except ConfigurationError as exc:
                raise SystemExit(f"error: {exc}") from None
        if not policies:
            raise SystemExit("no policy selected")
    cooling_modes = _split_choices(
        args.cooling, [c.value for c in CoolingMode], "cooling mode"
    )
    configs = [
        SimulationConfig(
            benchmark_name=workload,
            policy=policy,
            cooling=CoolingMode(cooling),
            n_layers=args.layers,
            duration=args.duration,
            seed=args.seed,
            dpm_enabled=args.dpm,
        )
        for workload in workloads
        for policy in policies
        for cooling in cooling_modes
    ]
    if args.reseed is not None:
        configs = reseeded(configs, args.reseed)
    runner = BatchRunner(configs, max_workers=_validated_workers(args))
    batch = runner.run()
    print(
        f"batch: {len(batch)} runs x {args.duration:.0f}s, "
        f"{batch.n_workers} worker(s), warm {batch.warm_time:.2f}s, "
        f"run {batch.wall_time:.2f}s"
    )
    columns = [
        "run", "label", "benchmark", "seed", "peak_temperature_sensor",
        "hotspot_pct", "total_energy_j", "throughput_tps", "elapsed_s",
    ]
    rows = [
        {k: row[k] for k in columns} for row in batch.summary_rows()
    ]
    _print_rows(rows)
    if args.save_json:
        save_batch(batch, args.save_json)
        print(f"wrote JSON -> {args.save_json}")
    if args.save_csv:
        write_batch_csv(batch, args.save_csv)
        print(f"wrote CSV  -> {args.save_csv}")
    return 0


def _resolve_spec(args: argparse.Namespace):
    """--spec: a built-in declaration name or a JSON/YAML spec file.

    Any declaration problem (missing file, malformed JSON/YAML, unknown
    field, bad value) becomes a clear ``SystemExit`` message — never a
    traceback.
    """
    import json

    from repro.sweep import SweepSpec

    raw = args.spec
    try:
        if raw in BUILTIN_SPECS:
            kwargs = {}
            if args.duration is not None:
                kwargs["duration"] = args.duration
            if args.seed is not None:
                kwargs["seed"] = args.seed
            return BUILTIN_SPECS[raw](**kwargs)
        path = Path(raw)
        if not path.exists():
            raise SystemExit(
                f"error: spec {raw!r} is neither a built-in name "
                f"({', '.join(BUILTIN_SPECS)}) nor an existing file"
            )
        if args.duration is not None or args.seed is not None:
            raise SystemExit(
                "error: --duration/--seed apply to built-in specs only; "
                "set them inside the spec file's 'base' section"
            )
        return SweepSpec.from_file(path)
    except ConfigurationError as exc:
        raise SystemExit(f"error: bad sweep spec {raw!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"error: spec file {raw!r} is not valid JSON: {exc}"
        ) from None
    except OSError as exc:
        raise SystemExit(f"error: cannot read spec {raw!r}: {exc}") from None


def _solver_override(spec, solver: Optional[str]):
    """Rebuild a spec with its base config's solver tier replaced.

    Declared solver axes/points still win over the base (normal
    override semantics). The rebuilt spec fingerprints differently, so
    exact and krylov campaigns keep separate checkpoints/ledgers by
    construction.
    """
    if solver is None:
        return spec
    from dataclasses import replace

    from repro.sweep import SweepSpec

    return SweepSpec(
        base=replace(spec.base, solver=solver),
        grid=spec.grid,
        zip_axes=spec.zip_axes,
        points=spec.points,
        reseed=spec.reseed,
        name=spec.name,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepRunner, read_status

    if args.sweep_command == "status":
        try:
            status = read_status(_existing_file(args.checkpoint, "checkpoint"))
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}") from None
        print(f"sweep:      {status.name or '(unnamed)'}")
        print(f"fingerprint {status.fingerprint[:16]}...")
        print(f"progress:   {status.folded}/{status.n_runs} runs "
              f"({status.pct:.1f}%), {status.remaining} remaining")
        print(f"sim time:   {status.elapsed_s:.1f}s across folded runs")
        if status.last_key:
            print(f"last run:   {status.last_key}")
        return 0

    resume = args.sweep_command == "resume" or args.resume
    if args.sweep_command == "resume":
        if not args.checkpoint:
            raise SystemExit("error: sweep resume needs --checkpoint")
        # A typo'd path must not silently restart an hours-long sweep
        # from scratch (`run --resume` stays permissive by contract:
        # "continue from --checkpoint if it already exists").
        _existing_file(args.checkpoint, "checkpoint")
    spec = _solver_override(_resolve_spec(args), args.solver)
    _checked_output(args.save_json, "JSON output")
    _checked_output(args.save_csv, "CSV output")
    _checked_output(args.checkpoint, "checkpoint")
    _trace_enable(args.trace)
    if args.stop_after is not None and args.stop_after < 1:
        raise SystemExit("--stop-after must be >= 1")
    if args.snapshot_every < 1:
        raise SystemExit("--snapshot-every must be >= 1")

    reporter = ProgressReporter(
        spec.run_count, label=spec.name or "sweep", quiet=args.quiet
    )

    def _progress(folded: int, total: int, point, elapsed: float) -> None:
        reporter.update(folded, detail=f"{point.key} ({elapsed:.1f}s)")

    print(spec.describe())
    runner = SweepRunner(
        spec,
        max_workers=_validated_workers(args),
        checkpoint=args.checkpoint,
        snapshot_every=args.snapshot_every,
        csv_path=args.save_csv,
        progress=None if args.quiet else _progress,
        stop_after=args.stop_after,
        cohort=args.cohort,
    )
    try:
        result = runner.run(resume=resume)
    except ConfigurationError as exc:
        raise SystemExit(f"error: {exc}") from None
    reporter.finish(result.folded)

    executed = result.folded - result.resumed
    print(
        f"sweep: {result.folded}/{result.n_runs} folded "
        f"({result.resumed} restored from checkpoint, {executed} run now) "
        f"in {result.wall_time:.2f}s"
    )
    for kind, rows in result.aggregate_rows().items():
        if rows:
            print(f"\n-- {kind} aggregates --")
            _print_rows(rows)
    if args.save_csv:
        print(f"\nwrote CSV  -> {args.save_csv}")
    if result.complete:
        if args.save_json:
            result.save_json(args.save_json)
            print(f"wrote JSON -> {args.save_json}")
    else:
        left = result.n_runs - result.folded
        if args.checkpoint:
            # Echo every flag that shapes the spec fingerprint or the
            # outputs, so the printed command works verbatim.
            hint = ["repro sweep resume", "--spec", str(args.spec)]
            if args.duration is not None:
                hint += ["--duration", str(args.duration)]
            if args.seed is not None:
                hint += ["--seed", str(args.seed)]
            hint += ["--checkpoint", str(args.checkpoint)]
            if args.workers != 1:
                hint += ["--workers", str(args.workers)]
            if args.snapshot_every != 1:
                hint += ["--snapshot-every", str(args.snapshot_every)]
            if args.save_csv:
                hint += ["--save-csv", str(args.save_csv)]
            if args.save_json:
                hint += ["--save-json", str(args.save_json)]
            print(
                f"sweep incomplete ({left} runs left); continue with: "
                + " ".join(hint)
            )
        else:
            print(
                f"sweep incomplete ({left} runs left) and no --checkpoint "
                "was given, so this session's progress is NOT saved; "
                "rerun with --checkpoint to make the sweep resumable"
            )
        if args.save_json:
            print("JSON export skipped (written only when the sweep completes)")
    _trace_export(args.trace)
    return 0


def _existing_file(path_str: str, what: str) -> str:
    if not Path(path_str).is_file():
        raise SystemExit(f"error: {what} {path_str!r} does not exist")
    return path_str


def _cmd_dist(args: argparse.Namespace) -> int:
    from repro.dist import (
        campaign_status,
        merge_campaign,
        plan_campaign,
        run_worker,
    )

    if args.dist_command == "plan":
        spec = _resolve_spec(args)
        if args.chunk_size < 1:
            raise SystemExit("--chunk-size must be >= 1")
        try:
            plan = plan_campaign(spec, args.dir, chunk_size=args.chunk_size)
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}") from None
        print(plan.describe())
        print(f"fingerprint {plan.fingerprint[:16]}...")
        print(
            "start workers with: repro dist work --dir "
            f"{args.dir}  (any number, any host sharing the directory)"
        )
        return 0

    if args.dist_command == "work":
        _trace_enable(args.trace)
        reporter = ProgressReporter(0, label="dist", quiet=args.quiet)
        runs_seen = 0

        def _progress(point, shard_index, elapsed: float) -> None:
            nonlocal runs_seen
            runs_seen += 1
            reporter.update(
                runs_seen,
                detail=f"shard {shard_index}: {point.key} ({elapsed:.1f}s)",
            )

        try:
            report = run_worker(
                args.dir,
                worker_id=args.worker_id,
                max_workers=_validated_workers(args),
                lease_ttl=args.lease_ttl,
                max_shards=args.max_shards,
                poll_interval=args.poll_interval,
                wait=not args.no_wait,
                progress=None if args.quiet else _progress,
                cohort=args.cohort,
                solver=args.solver,
            )
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}") from None
        reporter.finish(runs_seen, detail=f"{report.wall_time:.1f}s")
        reclaimed = (
            f", reclaimed {len(report.shards_reclaimed)} stale lease(s)"
            if report.shards_reclaimed
            else ""
        )
        print(
            f"worker {report.worker_id}: executed "
            f"{len(report.shards_executed)} shard(s) / "
            f"{report.runs_executed} run(s) in {report.wall_time:.2f}s"
            + reclaimed
        )
        _trace_export(args.trace)
        return 0

    if args.dist_command == "merge":
        _checked_output(args.save_json, "JSON output")
        _checked_output(args.save_csv, "CSV output")
        try:
            merged = merge_campaign(args.dir, allow_partial=args.partial)
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}") from None
        notes = []
        if merged.shards_missing:
            notes.append(f"{len(merged.shards_missing)} shard(s) not finished")
        if merged.shards_skipped:
            notes.append(
                f"{len(merged.shards_skipped)} finished shard(s) beyond the "
                "first gap not merged"
            )
        print(
            f"merge: {merged.folded}/{merged.n_runs} runs from "
            f"{merged.shards_merged} shard(s)"
            + (f" ({'; '.join(notes)})" if notes else "")
        )
        for kind, rows in merged.aggregate_rows().items():
            if rows and kind in ("scalar", "quantile"):
                print(f"\n-- {kind} aggregates --")
                _print_rows(rows)
        if merged.telemetry is not None:
            print("\n-- campaign telemetry --")
            _print_metrics_report(merged.telemetry)
        if args.save_csv:
            merged.save_csv(args.save_csv)
            print(f"wrote CSV  -> {args.save_csv}")
        if args.save_json:
            if merged.complete:
                merged.save_json(args.save_json)
                print(f"wrote JSON -> {args.save_json}")
            else:
                print(
                    "JSON export skipped (written only when every shard "
                    "has merged)"
                )
        return 0

    if args.dist_command == "status":
        try:
            status = campaign_status(args.dir)
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}") from None
        print(f"campaign:   {status.name or '(unnamed)'}")
        print(f"fingerprint {status.fingerprint[:16]}...")
        print(
            f"shards:     {status.count('done')}/{status.n_shards} done, "
            f"{status.count('running')} running, "
            f"{status.count('stale')} stale, "
            f"{status.count('pending')} pending"
        )
        print(f"runs:       {status.runs_done}/{status.n_runs} journaled-complete")
        for state in status.shards:
            holder = f" ({state.worker})" if state.worker else ""
            heartbeat = ""
            if state.heartbeat_age_s is not None:
                heartbeat = f", heartbeat {state.heartbeat_age_s:.0f}s ago"
            print(
                f"  shard {state.shard.index} "
                f"[{state.shard.start},{state.shard.stop}): "
                f"{state.state}{holder}, {state.runs_journaled} journaled, "
                f"{state.elapsed_s:.1f}s run time{heartbeat}"
            )
        if status.count("stale"):
            print(
                "stale leases are reclaimed automatically by the next "
                "'repro dist work' scan"
            )
        return 0
    raise AssertionError(f"unhandled dist command {args.dist_command!r}")


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import validate_trace

    report = validate_trace(_existing_file(args.path, "trace file"))
    if args.telemetry_command == "validate":
        if report.ok:
            print(f"ok: {args.path} ({report.n_spans} spans)")
            return 0
        print(f"invalid: {args.path}")
        for error in report.errors:
            print(f"  {error}")
        return 1

    # summary
    print(f"trace: {args.path} ({report.n_spans} spans)")
    if report.errors:
        print(f"  ({len(report.errors)} schema violation(s); "
              "see 'repro telemetry validate')")
    if report.span_totals:
        print("\n-- span totals --")
        width = max(len(name) for name in report.span_totals)
        ordered = sorted(
            report.span_totals.items(),
            key=lambda item: item[1]["total_s"],
            reverse=True,
        )
        for name, agg in ordered:
            print(
                f"  {name:<{width}} count {agg['count']:>6} "
                f"total {agg['total_s']:.3f}s"
            )
    if report.metrics is not None:
        print("\n-- metrics snapshot --")
        _print_metrics_report(report.metrics)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    roles = {
        "policies": policy_registry(),
        "controllers": controller_registry(),
        "forecasters": forecaster_registry(),
        "workloads": workload_registry(),
        "facilities": facility_registry(),
    }
    chosen = roles if args.what == "all" else {args.what: roles[args.what]}
    first = True
    for role, registry in chosen.items():
        if not first:
            print()
        first = False
        print(f"-- {role} --")
        for entry in registry.entries():
            aliases = (
                f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
            )
            traits = ""
            if len(entry.traits):
                rendered = ", ".join(
                    f"{k}={v}" for k, v in entry.traits.items()
                )
                traits = f" [{rendered}]"
            print(f"{entry.key}{aliases}{traits}")
            if entry.description:
                print(f"    {entry.description}")
            for param in entry.params:
                default = "" if param.default is None else f" = {param.default}"
                bounds = ""
                if param.minimum is not None or param.maximum is not None:
                    lo = "-inf" if param.minimum is None else f"{param.minimum:g}"
                    hi = "+inf" if param.maximum is None else f"{param.maximum:g}"
                    bounds = f" in [{lo}, {hi}]"
                doc = f" — {param.doc}" if param.doc else ""
                print(f"    {param.name}: {param.kind}{default}{bounds}{doc}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.sim.calibration import calibrate_air_scale, calibrate_liquid_scale

    if args.path == "liquid":
        scale = calibrate_liquid_scale()
        print(f"liquid resistance_scale = {scale:.3f}")
    else:
        scale = calibrate_air_scale()
        print(f"air_resistance_scale = {scale:.3f}")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    print("-- controller variants --")
    _print_rows(ablations.run_controller_ablation(duration=args.duration))
    print("\n-- grid resolution --")
    _print_rows(ablations.run_grid_resolution_ablation())
    print("\n-- TALB weight target --")
    _print_rows(ablations.run_weight_sensitivity(duration=args.duration))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    command = args.command
    if command == "simulate":
        return _cmd_simulate(args)
    if command == "batch":
        return _cmd_batch(args)
    if command == "sweep":
        return _cmd_sweep(args)
    if command == "dist":
        return _cmd_dist(args)
    if command == "telemetry":
        return _cmd_telemetry(args)
    if command == "fig3":
        _print_rows(fig3.run())
        return 0
    if command == "fig5":
        _print_rows(
            fig5.run(n_layers=args.layers, include_continuous=args.continuous)
        )
        return 0
    if command == "fig6":
        _print_rows(
            fig6.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "fig7":
        _print_rows(
            fig7.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "fig8":
        _print_rows(
            fig8.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "table2":
        _print_rows(table2.run(duration=max(args.duration, 60.0), seed=args.seed))
        return 0
    if command == "headline":
        _print_rows(
            headline.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "ablations":
        return _cmd_ablations(args)
    if command == "calibrate":
        return _cmd_calibrate(args)
    if command == "list":
        return _cmd_list(args)
    if command == "workloads":
        rows = [
            {
                "benchmark": spec.name,
                "util_pct": spec.avg_utilization,
                "l2_miss_per_100k": spec.total_l2_miss,
                "memory_intensity": spec.memory_intensity,
            }
            for spec in TABLE_II.values()
        ]
        _print_rows(rows)
        return 0
    raise AssertionError(f"unhandled command {command!r}")


if __name__ == "__main__":
    sys.exit(main())
