"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's entry points so the whole evaluation can
be driven without writing Python:

* ``simulate`` — one configured run, with optional JSON/CSV export;
* ``batch`` — a (workload x policy x cooling) sweep through the
  :class:`repro.runner.BatchRunner`, optionally fanned out over worker
  processes, with JSON/CSV export of the whole batch;
* ``fig3 | fig5 | fig6 | fig7 | fig8 | table2 | headline | ablations``
  — regenerate a table/figure and print its rows (the multi-run
  figures accept ``--workers`` for process fan-out);
* ``calibrate`` — re-derive the documented resistance scales;
* ``workloads`` — list the Table II benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import (
    ablations,
    common,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    table2,
)
from repro.io.serialize import result_summary, save_result, write_timeseries_csv
from repro.sim.config import (
    ControllerKind,
    CoolingMode,
    PolicyKind,
    SimulationConfig,
)
from repro.sim.engine import simulate
from repro.workload.benchmarks import TABLE_II


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-efficient variable-flow liquid cooling "
        "in 3D stacked architectures (DATE 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one simulation")
    sim.add_argument("--benchmark", default="Web-med", help="Table II workload")
    sim.add_argument(
        "--policy",
        default="TALB",
        choices=[p.value for p in PolicyKind],
        help="scheduling policy",
    )
    sim.add_argument(
        "--cooling",
        default="Var",
        choices=[c.value for c in CoolingMode],
        help="Air, Max (worst-case flow), or Var (the controller)",
    )
    sim.add_argument(
        "--controller",
        default="lut",
        choices=[c.value for c in ControllerKind],
        help="variable-flow controller: the paper's LUT or the [6] stepwise baseline",
    )
    sim.add_argument("--layers", type=int, default=2, choices=(2, 4))
    sim.add_argument("--duration", type=float, default=20.0, help="simulated seconds")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--dpm", action="store_true", help="enable the 200 ms DPM policy")
    sim.add_argument(
        "--trace-csv",
        metavar="PATH",
        help="replay an mpstat-style utilization trace (second,"
        "utilization_pct CSV) instead of the stationary generator; "
        "the run length becomes the trace length",
    )
    sim.add_argument("--save-json", metavar="PATH", help="write the full result as JSON")
    sim.add_argument("--save-csv", metavar="PATH", help="write the time series as CSV")

    batch = sub.add_parser(
        "batch",
        help="run a (workload x policy x cooling) sweep, optionally in parallel",
        description="Cross-product sweep through the BatchRunner: every "
        "combination of --workloads, --policies, and --cooling becomes one "
        "run. Characterizations are derived once in the parent and shipped "
        "to the workers; results are identical for any --workers value.",
    )
    batch.add_argument(
        "--workloads",
        default="all",
        help="comma-separated Table II benchmarks, or 'all' (default)",
    )
    batch.add_argument(
        "--policies",
        default="TALB",
        help="comma-separated policies (%s), or 'all'"
        % ",".join(p.value for p in PolicyKind),
    )
    batch.add_argument(
        "--cooling",
        default="Var",
        help="comma-separated cooling modes (%s), or 'all'"
        % ",".join(c.value for c in CoolingMode),
    )
    batch.add_argument("--layers", type=int, default=2, choices=(2, 4))
    batch.add_argument("--duration", type=float, default=common.DEFAULT_DURATION)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--dpm", action="store_true", help="enable the 200 ms DPM policy")
    batch.add_argument(
        "--reseed",
        type=int,
        metavar="BASE",
        help="give run i the seed BASE+i (distinct stochastic instances)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    batch.add_argument(
        "--save-json", metavar="PATH", help="write the batch summaries as JSON"
    )
    batch.add_argument(
        "--save-csv", metavar="PATH", help="write one CSV row per run"
    )

    for name, help_text in (
        ("fig3", "pump power and per-cavity flows"),
        ("fig6", "hot spots and energy, all policies"),
        ("fig7", "thermal variations (DPM on)"),
        ("fig8", "performance and energy"),
        ("table2", "workload characteristics"),
        ("headline", "energy savings vs maximum flow"),
    ):
        p = sub.add_parser(name, help=help_text)
        if name != "fig3":
            p.add_argument("--duration", type=float, default=common.DEFAULT_DURATION)
            p.add_argument("--seed", type=int, default=0)
        if name in ("fig6", "fig7", "fig8", "headline"):
            # table2 is generator statistics only — nothing to fan out.
            p.add_argument(
                "--workers",
                type=int,
                default=1,
                help="worker processes for the sweep (results are identical)",
            )

    f5 = sub.add_parser("fig5", help="flow required to cool a given T_max")
    f5.add_argument("--layers", type=int, default=2, choices=(2, 4))
    f5.add_argument(
        "--continuous",
        action="store_true",
        help="also compute the continuous minimum-flow curve (slow)",
    )

    ab = sub.add_parser("ablations", help="controller design-choice ablations")
    ab.add_argument("--duration", type=float, default=15.0)

    cal = sub.add_parser("calibrate", help="re-derive the resistance scales")
    cal.add_argument(
        "--path",
        default="liquid",
        choices=("liquid", "air"),
        help="which cooling path to calibrate",
    )

    sub.add_parser("workloads", help="list the Table II benchmarks")
    return parser


def _print_rows(rows: list[dict]) -> None:
    print(common.format_rows(rows))


def _cmd_simulate(args: argparse.Namespace) -> int:
    thread_trace = None
    duration = args.duration
    if args.trace_csv:
        from repro.workload.traces import UtilizationTrace, generate_from_utilization

        n_cores = 8 if args.layers == 2 else 16
        profile = UtilizationTrace.from_csv(args.trace_csv, n_cores=n_cores)
        from repro.workload.benchmarks import benchmark as lookup

        thread_trace = generate_from_utilization(
            profile, lookup(args.benchmark), seed=args.seed
        )
        duration = profile.duration
    config = SimulationConfig(
        benchmark_name=args.benchmark,
        policy=PolicyKind(args.policy),
        cooling=CoolingMode(args.cooling),
        controller=ControllerKind(args.controller),
        n_layers=args.layers,
        duration=duration,
        seed=args.seed,
        dpm_enabled=args.dpm,
    )
    result = simulate(config, trace=thread_trace)
    print(f"run: {config.label()} / {config.benchmark_name} / "
          f"{config.n_layers}-layer / {config.duration:.0f}s")
    for key, value in result_summary(result).items():
        print(f"  {key:26s}: {value}")
    if args.save_json:
        save_result(result, args.save_json)
        print(f"  wrote JSON -> {args.save_json}")
    if args.save_csv:
        write_timeseries_csv(result, args.save_csv)
        print(f"  wrote CSV  -> {args.save_csv}")
    return 0


def _validated_workers(args: argparse.Namespace) -> int:
    """Uniform --workers validation across batch and figure commands."""
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1 (1 = serial)")
    return args.workers


def _split_choices(raw: str, values: list[str], what: str) -> list[str]:
    """Parse a comma-separated choice list ('all' = every value)."""
    if raw.strip().lower() == "all":
        return list(values)
    chosen = [item.strip() for item in raw.split(",") if item.strip()]
    for item in chosen:
        if item not in values:
            raise SystemExit(
                f"unknown {what} {item!r}; choose from {', '.join(values)} or 'all'"
            )
    if not chosen:
        raise SystemExit(f"no {what} selected")
    return chosen


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.io.batch import save_batch, write_batch_csv
    from repro.runner import BatchRunner, reseeded

    workloads = _split_choices(args.workloads, list(TABLE_II), "workload")
    policies = _split_choices(
        args.policies, [p.value for p in PolicyKind], "policy"
    )
    cooling_modes = _split_choices(
        args.cooling, [c.value for c in CoolingMode], "cooling mode"
    )
    configs = [
        SimulationConfig(
            benchmark_name=workload,
            policy=PolicyKind(policy),
            cooling=CoolingMode(cooling),
            n_layers=args.layers,
            duration=args.duration,
            seed=args.seed,
            dpm_enabled=args.dpm,
        )
        for workload in workloads
        for policy in policies
        for cooling in cooling_modes
    ]
    if args.reseed is not None:
        configs = reseeded(configs, args.reseed)
    runner = BatchRunner(configs, max_workers=_validated_workers(args))
    batch = runner.run()
    print(
        f"batch: {len(batch)} runs x {args.duration:.0f}s, "
        f"{batch.n_workers} worker(s), warm {batch.warm_time:.2f}s, "
        f"run {batch.wall_time:.2f}s"
    )
    columns = [
        "run", "label", "benchmark", "seed", "peak_temperature_sensor",
        "hotspot_pct", "total_energy_j", "throughput_tps", "elapsed_s",
    ]
    rows = [
        {k: row[k] for k in columns} for row in batch.summary_rows()
    ]
    _print_rows(rows)
    if args.save_json:
        save_batch(batch, args.save_json)
        print(f"wrote JSON -> {args.save_json}")
    if args.save_csv:
        write_batch_csv(batch, args.save_csv)
        print(f"wrote CSV  -> {args.save_csv}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.sim.calibration import calibrate_air_scale, calibrate_liquid_scale

    if args.path == "liquid":
        scale = calibrate_liquid_scale()
        print(f"liquid resistance_scale = {scale:.3f}")
    else:
        scale = calibrate_air_scale()
        print(f"air_resistance_scale = {scale:.3f}")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    print("-- controller variants --")
    _print_rows(ablations.run_controller_ablation(duration=args.duration))
    print("\n-- grid resolution --")
    _print_rows(ablations.run_grid_resolution_ablation())
    print("\n-- TALB weight target --")
    _print_rows(ablations.run_weight_sensitivity(duration=args.duration))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    command = args.command
    if command == "simulate":
        return _cmd_simulate(args)
    if command == "batch":
        return _cmd_batch(args)
    if command == "fig3":
        _print_rows(fig3.run())
        return 0
    if command == "fig5":
        _print_rows(
            fig5.run(n_layers=args.layers, include_continuous=args.continuous)
        )
        return 0
    if command == "fig6":
        _print_rows(
            fig6.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "fig7":
        _print_rows(
            fig7.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "fig8":
        _print_rows(
            fig8.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "table2":
        _print_rows(table2.run(duration=max(args.duration, 60.0), seed=args.seed))
        return 0
    if command == "headline":
        _print_rows(
            headline.run(duration=args.duration, seed=args.seed,
                     workers=_validated_workers(args))
        )
        return 0
    if command == "ablations":
        return _cmd_ablations(args)
    if command == "calibrate":
        return _cmd_calibrate(args)
    if command == "workloads":
        rows = [
            {
                "benchmark": spec.name,
                "util_pct": spec.avg_utilization,
                "l2_miss_per_100k": spec.total_l2_miss,
                "memory_intensity": spec.memory_intensity,
            }
            for spec in TABLE_II.values()
        ]
        _print_rows(rows)
        return 0
    raise AssertionError(f"unhandled command {command!r}")


if __name__ == "__main__":
    sys.exit(main())
