"""Coolant pump models (Laing DDC, Section III-B and Figure 3)."""

from repro.pump.laing_ddc import (
    LAING_DDC_SETTINGS_LH,
    FlowSetting,
    PumpModel,
    PumpState,
    laing_ddc,
)

__all__ = [
    "FlowSetting",
    "PumpModel",
    "PumpState",
    "laing_ddc",
    "LAING_DDC_SETTINGS_LH",
]
