"""The Laing DDC 12 V DC pump model (Section III-B, Figure 3).

The paper drives all microchannels from a single impeller pump with
five discrete flow-rate settings (Figure 3's x axis: 75-375 l/h). Pump
power "increases quadratically with the increase in flow rate"; Figure 3
shows roughly 3.7 W at the lowest and 21 W at the highest setting. The
total flow is divided equally among the cavities and, within a cavity,
among the channels, after a global 50 % derating for pump inefficiency
and microchannel pressure-drop losses. Switching settings takes the
impeller 250-300 ms.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro import units
from repro.constants import CONTROL
from repro.errors import ConfigurationError, ModelError

LAING_DDC_SETTINGS_LH: tuple[float, ...] = (75.0, 150.0, 225.0, 300.0, 375.0)
"""Figure 3's five pump flow-rate settings, litres/hour."""

_POWER_FLOOR_W = 3.0
"""Pump electrical power at zero flow extrapolation, W (fit to Figure 3)."""

_POWER_SPAN_W = 18.0
"""Quadratic power span so P(375 l/h) = 21 W (fit to Figure 3)."""


@dataclass(frozen=True)
class FlowSetting:
    """One discrete pump operating point.

    Attributes
    ----------
    index:
        Position in the setting ladder (0 = lowest).
    pump_flow:
        Total pump volumetric flow, m^3/s.
    per_cavity_flow:
        Flow delivered to each cavity after derating, m^3/s.
    power:
        Pump electrical power at this setting, W.
    """

    index: int
    pump_flow: float
    per_cavity_flow: float
    power: float


class PumpModel:
    """A pump with discrete settings feeding ``n_cavities`` equally.

    Parameters
    ----------
    settings_lh:
        Pump flow-rate settings in litres/hour, ascending.
    n_cavities:
        Number of interlayer cavities sharing the flow (3 for the
        2-layer stack, 5 for the 4-layer stack).
    efficiency:
        Fraction of nominal flow that reaches the channels (paper: 0.5,
        a "global reduction in the flow rate by 50 %").
    transition_time:
        Seconds for a setting change to take effect (paper: 250-300 ms).
    power_floor, power_span:
        Quadratic power fit P(f) = floor + span * (f / f_max)^2, W.
    """

    def __init__(
        self,
        settings_lh: tuple[float, ...] = LAING_DDC_SETTINGS_LH,
        n_cavities: int = 3,
        efficiency: float = 0.5,
        transition_time: float = CONTROL.pump_transition_time,
        power_floor: float = _POWER_FLOOR_W,
        power_span: float = _POWER_SPAN_W,
    ) -> None:
        if not settings_lh:
            raise ConfigurationError("pump needs at least one flow setting")
        if list(settings_lh) != sorted(settings_lh):
            raise ConfigurationError("pump settings must be ascending")
        if any(s <= 0.0 for s in settings_lh):
            raise ConfigurationError("pump settings must be positive")
        if n_cavities <= 0:
            raise ConfigurationError("n_cavities must be positive")
        if not 0.0 < efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if transition_time < 0.0:
            raise ConfigurationError("transition time must be non-negative")
        self.n_cavities = n_cavities
        self.efficiency = efficiency
        self.transition_time = transition_time
        self._f_max_lh = settings_lh[-1]
        self._power_floor = power_floor
        self._power_span = power_span
        self.settings: tuple[FlowSetting, ...] = tuple(
            FlowSetting(
                index=i,
                pump_flow=units.litres_per_hour(f_lh),
                per_cavity_flow=self._derated_cavity_flow(f_lh),
                power=self._power_at(f_lh),
            )
            for i, f_lh in enumerate(settings_lh)
        )

    def _derated_cavity_flow(self, flow_lh: float) -> float:
        return units.litres_per_hour(flow_lh) * self.efficiency / self.n_cavities

    def _power_at(self, flow_lh: float) -> float:
        return self._power_floor + self._power_span * (flow_lh / self._f_max_lh) ** 2

    # --- queries ---------------------------------------------------------

    def signature(self) -> tuple:
        """Hashable identity of this pump's physical behaviour.

        Two pumps with the same signature deliver the same flows and
        draw the same power at every setting, so characterizations
        (flow tables, burst floors, TALB weights) derived for one are
        valid for the other. Used as the pump component of
        :func:`repro.sim.cache.system_key`.
        """
        return (
            tuple((s.pump_flow, s.per_cavity_flow, s.power) for s in self.settings),
            self.n_cavities,
            self.efficiency,
            self.transition_time,
        )

    @property
    def n_settings(self) -> int:
        """Number of discrete settings."""
        return len(self.settings)

    @property
    def max_setting(self) -> FlowSetting:
        """The highest (worst-case) setting."""
        return self.settings[-1]

    @property
    def min_setting(self) -> FlowSetting:
        """The lowest setting."""
        return self.settings[0]

    def setting(self, index: int) -> FlowSetting:
        """Setting by ladder index (0 = lowest)."""
        if not 0 <= index < len(self.settings):
            raise ConfigurationError(
                f"pump setting index {index} out of range 0..{len(self.settings) - 1}"
            )
        return self.settings[index]

    def per_cavity_flows(self) -> list[float]:
        """Per-cavity flows (m^3/s) across the ladder (Figure 3 series)."""
        return [s.per_cavity_flow for s in self.settings]

    def powers(self) -> list[float]:
        """Pump powers (W) across the ladder (Figure 3 right axis)."""
        return [s.power for s in self.settings]

    def min_setting_reaching(self, per_cavity_flow: float) -> FlowSetting:
        """Lowest setting whose per-cavity flow is >= the requirement.

        Raises :class:`ModelError` if even the maximum setting falls
        short (the caller should then saturate at maximum and flag the
        thermal violation).
        """
        flows = [s.per_cavity_flow for s in self.settings]
        idx = bisect_right(flows, per_cavity_flow)
        if idx > 0 and flows[idx - 1] >= per_cavity_flow:
            idx -= 1
        if idx >= len(self.settings):
            raise ModelError(
                f"required per-cavity flow {per_cavity_flow:.3e} m^3/s exceeds "
                f"the maximum setting {flows[-1]:.3e} m^3/s"
            )
        return self.settings[idx]


@dataclass
class PumpState:
    """Runtime pump state with the paper's 250-300 ms transition delay.

    A setting change requested at time ``t`` becomes effective at
    ``t + transition_time``; until then the pump keeps delivering the
    old flow. Electrical power follows the *commanded* setting from the
    moment of the request (the impeller spins up immediately).
    """

    pump: PumpModel
    current_index: int = 0
    _pending_index: int = field(default=-1, init=False)
    _pending_effective_at: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.current_index < self.pump.n_settings:
            raise ConfigurationError("initial pump setting out of range")

    @property
    def commanded_index(self) -> int:
        """The most recently commanded setting index."""
        if self._pending_index >= 0:
            return self._pending_index
        return self.current_index

    def command(self, index: int, now: float) -> None:
        """Request a setting change at time ``now`` (seconds)."""
        if not 0 <= index < self.pump.n_settings:
            raise ConfigurationError(f"pump setting index {index} out of range")
        if index == self.commanded_index:
            return
        self._pending_index = index
        self._pending_effective_at = now + self.pump.transition_time

    def advance(self, now: float) -> None:
        """Apply any pending transition whose delay has elapsed."""
        if self._pending_index >= 0 and now >= self._pending_effective_at:
            self.current_index = self._pending_index
            self._pending_index = -1

    def effective_setting(self) -> FlowSetting:
        """The setting whose flow the channels currently receive."""
        return self.pump.setting(self.current_index)

    def electrical_power(self) -> float:
        """Instantaneous pump electrical power, W (commanded setting)."""
        return self.pump.setting(self.commanded_index).power


def laing_ddc(n_cavities: int) -> PumpModel:
    """The paper's pump for a stack with ``n_cavities`` cavities."""
    return PumpModel(n_cavities=n_cavities)
