"""Table II — workload characteristics, regenerated from the generator.

Validates that the synthetic workload substrate reproduces the
published per-benchmark statistics: the offered utilization matches the
"Avg Util (%)" column, and thread lengths stay in the measured "few to
several hundred milliseconds" regime.
"""

from __future__ import annotations

import numpy as np

from repro.registry import WorkloadContext, workload_registry
from repro.workload.benchmarks import TABLE_II


def run(duration: float = 120.0, n_cores: int = 8, seed: int = 0) -> list[dict]:
    """Regenerate Table II with measured generator statistics.

    The traces come through the ``"table2"`` workload-registry entry —
    the same construction path a default-configured simulation uses —
    so this experiment validates what runs actually consume.
    """
    rows = []
    for name, spec in TABLE_II.items():
        ctx = WorkloadContext(
            spec=spec, n_cores=n_cores, duration=duration, seed=seed
        )
        trace = workload_registry().create("table2", None, ctx).build_trace(ctx)
        lengths = np.asarray([t.length for t in trace.threads])
        rows.append(
            {
                "benchmark": name,
                "paper_util_pct": spec.avg_utilization,
                "measured_util_pct": 100.0 * trace.offered_utilization(),
                "l2_i_miss": spec.l2_i_miss,
                "l2_d_miss": spec.l2_d_miss,
                "fp_instr": spec.fp_instructions,
                "memory_intensity": spec.memory_intensity,
                "threads": len(trace.threads),
                "median_len_ms": float(np.median(lengths) * 1000.0) if len(lengths) else 0.0,
                "p95_len_ms": float(np.percentile(lengths, 95) * 1000.0)
                if len(lengths)
                else 0.0,
            }
        )
    return rows
