"""Figure 8 — performance and energy across cooling configurations.

"Figure 8 compares the policies in terms of energy and performance,
both for the air and liquid cooling systems." Energy bars (pump + chip)
are normalized to LB (Air) chip energy; performance is throughput
normalized to LB (Air). The paper's observations to reproduce: thread
migration loses throughput under air cooling (temperature-triggered
migrations), liquid cooling at maximum flow removes that overhead, and
TALB (Var) saves energy "without any effect on the performance".
"""

from __future__ import annotations

import numpy as np

from repro.experiments import common
from repro.metrics.energy import EnergyBreakdown
from repro.sweep import SweepSpec


def sweep_spec(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
) -> SweepSpec:
    """Figure 8's reduced 5-combo x 8-workload comparison sweep."""
    return common.matrix_spec(
        combos=common.FIG8_MATRIX,
        workloads=workloads,
        duration=duration,
        dpm=False,
        seed=seed,
        name="fig8",
    )


def run(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
    workers: "int | None" = None,
) -> list[dict]:
    """Regenerate Figure 8's bars."""
    results = common.run_matrix(
        combos=common.FIG8_MATRIX,
        workloads=workloads,
        duration=duration,
        dpm=False,
        seed=seed,
        workers=workers,
    )
    baseline_label = common.combo_label(*common.FIG8_MATRIX[0])  # LB (Air)
    baseline_chip = float(
        np.mean([results[(baseline_label, w)].chip_energy() for w in workloads])
    )
    baseline_throughput = float(
        np.mean([results[(baseline_label, w)].throughput() for w in workloads])
    )
    baseline = EnergyBreakdown(chip=baseline_chip, pump=0.0)

    rows = []
    for policy, cooling in common.FIG8_MATRIX:
        label = common.combo_label(policy, cooling)
        chip = float(np.mean([results[(label, w)].chip_energy() for w in workloads]))
        pump = float(np.mean([results[(label, w)].pump_energy() for w in workloads]))
        throughput = float(
            np.mean([results[(label, w)].throughput() for w in workloads])
        )
        normalized = EnergyBreakdown(chip=chip, pump=pump).normalized(baseline)
        rows.append(
            {
                "policy": label,
                "energy_chip": normalized.chip,
                "energy_pump": normalized.pump,
                "energy_total": normalized.chip + normalized.pump,
                "performance": throughput / baseline_throughput,
            }
        )
    return rows
