"""Figure 7 — thermal variations with DPM enabled.

"Figure 7 shows the average and maximum frequency of spatial and
temporal variations in temperature ... In the experiments in Figure 7,
we run DPM in addition to the thermal management policy." Spatial
gradients are counted when the unit-to-unit spread exceeds 15 degC;
thermal cycles when a per-core swing exceeds 20 degC (sliding window).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import common
from repro.metrics.thermal_metrics import (
    spatial_gradient_frequency,
    thermal_cycle_frequency,
)
from repro.sweep import SweepSpec


def sweep_spec(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
) -> SweepSpec:
    """Figure 7's sweep (the Figure 6 matrix with DPM enabled)."""
    return common.matrix_spec(
        combos=common.POLICY_MATRIX,
        workloads=workloads,
        duration=duration,
        dpm=True,
        seed=seed,
        name="fig7",
    )


def run(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
    workers: "int | None" = None,
) -> list[dict]:
    """Regenerate Figure 7's bars (DPM on)."""
    results = common.run_matrix(
        combos=common.POLICY_MATRIX,
        workloads=workloads,
        duration=duration,
        dpm=True,
        seed=seed,
        workers=workers,
    )
    rows = []
    for policy, cooling in common.POLICY_MATRIX:
        label = common.combo_label(policy, cooling)
        gradients = [
            spatial_gradient_frequency(results[(label, w)]) for w in workloads
        ]
        cycles = [thermal_cycle_frequency(results[(label, w)]) for w in workloads]
        rows.append(
            {
                "policy": label,
                "spatial_gradients_pct": float(np.mean(gradients)),
                "thermal_cycles_pct": float(np.mean(cycles)),
            }
        )
    return rows
