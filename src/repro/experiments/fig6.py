"""Figure 6 — hot spots and energy for all policies (2-layer system).

"Figure 6 shows the average percentage of time spent above the
threshold across all the workloads, percentage of time spent above
threshold for the hottest workload, and energy for the 2-layered 3D
system. ... The energy consumption values are normalized with respect
to the load balancing policy on a system with air cooling."

One row per policy/cooling combination with:

* ``hotspots_avg_pct`` — mean % of samples above 85 degC across the
  eight workloads;
* ``hotspots_max_pct`` — the same for the hottest workload;
* ``energy_chip`` / ``energy_pump`` — normalized to LB (Air) chip
  energy (fan energy of the air system excluded, as in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import common
from repro.metrics.energy import EnergyBreakdown
from repro.metrics.thermal_metrics import hotspot_frequency
from repro.sweep import SweepSpec


def sweep_spec(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
) -> SweepSpec:
    """Figure 6's 7-combo x 8-workload sweep as a declarative spec."""
    return common.matrix_spec(
        combos=common.POLICY_MATRIX,
        workloads=workloads,
        duration=duration,
        dpm=False,
        seed=seed,
        name="fig6",
    )


def run(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
    workers: "int | None" = None,
) -> list[dict]:
    """Regenerate Figure 6's bars."""
    results = common.run_matrix(
        combos=common.POLICY_MATRIX,
        workloads=workloads,
        duration=duration,
        dpm=False,
        seed=seed,
        workers=workers,
    )
    baseline_label = common.combo_label(*common.POLICY_MATRIX[0])  # LB (Air)
    baseline_chip = np.mean(
        [results[(baseline_label, w)].chip_energy() for w in workloads]
    )
    baseline = EnergyBreakdown(chip=float(baseline_chip), pump=0.0)

    rows = []
    for policy, cooling in common.POLICY_MATRIX:
        label = common.combo_label(policy, cooling)
        hotspots = [hotspot_frequency(results[(label, w)]) for w in workloads]
        chip = np.mean([results[(label, w)].chip_energy() for w in workloads])
        pump = np.mean([results[(label, w)].pump_energy() for w in workloads])
        normalized = EnergyBreakdown(chip=float(chip), pump=float(pump)).normalized(
            baseline
        )
        rows.append(
            {
                "policy": label,
                "hotspots_avg_pct": float(np.mean(hotspots)),
                "hotspots_max_pct": float(np.max(hotspots)),
                "energy_chip": normalized.chip,
                "energy_pump": normalized.pump,
                "energy_total": normalized.chip + normalized.pump,
            }
        )
    return rows
