"""One-shot evaluation report: every table/figure into one markdown file.

``python -c "from repro.experiments.report import write_report;
write_report('report.md')"`` (or via a longer ``duration``) regenerates
the full evaluation and writes an EXPERIMENTS.md-style document with
the measured numbers — the release artifact a user diffs against
``EXPERIMENTS.md`` after changing any model parameter.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.experiments import (
    ablations,
    common,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fourlayer,
    headline,
    table2,
)


def _section(title: str, rows: list[dict]) -> str:
    return f"## {title}\n\n```\n{common.format_rows(rows)}\n```\n"


def build_report(duration: float = common.DEFAULT_DURATION, seed: int = 0) -> str:
    """Run every harness and return the markdown report body."""
    parts = [
        "# Evaluation report",
        "",
        f"Simulated {duration:.0f} s per (policy, workload) point, seed {seed}.",
        "",
        _section("Table II — workload characteristics", table2.run()),
        _section("Figure 3 — pump power and per-cavity flows", fig3.run()),
        _section(
            "Figure 5 — required flow vs T_max (2-layer)",
            fig5.run(2, include_continuous=False),
        ),
        _section(
            "Figure 6 — hot spots and energy",
            fig6.run(duration=duration, seed=seed),
        ),
        _section(
            "Figure 7 — thermal variations (DPM on)",
            fig7.run(duration=duration, seed=seed),
        ),
        _section(
            "Figure 8 — performance and energy",
            fig8.run(duration=duration, seed=seed),
        ),
        _section(
            "Headline — savings vs maximum flow",
            headline.run(duration=duration, seed=seed),
        ),
        _section(
            "4-layer system (light workloads)",
            fourlayer.run(duration=duration, seed=seed),
        ),
        _section(
            "Controller vs prior work [6]",
            ablations.run_controller_comparison(duration=duration, seed=seed),
        ),
    ]
    return "\n".join(parts)


def write_report(
    path: Union[str, Path],
    duration: float = common.DEFAULT_DURATION,
    seed: int = 0,
) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(build_report(duration=duration, seed=seed))
    return path
