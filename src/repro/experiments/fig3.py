"""Figure 3 — pump power and per-cavity flow rates vs pump setting.

"Power consumption and flow rates of the pump (based on [14]). Per
cavity flow rates reflect 50 % efficiency assumption." One row per pump
setting with the total flow (l/h), the per-cavity flows of the 2- and
4-layer stacks (ml/min), and the electrical power (W).
"""

from __future__ import annotations

from repro import units
from repro.pump.laing_ddc import laing_ddc


def run() -> list[dict]:
    """Regenerate Figure 3's series."""
    pump2 = laing_ddc(n_cavities=3)  # 2-layer stack: 3 cavities.
    pump4 = laing_ddc(n_cavities=5)  # 4-layer stack: 5 cavities.
    rows = []
    for setting2, setting4 in zip(pump2.settings, pump4.settings):
        rows.append(
            {
                "setting": setting2.index,
                "pump_flow_lh": units.to_litres_per_hour(setting2.pump_flow),
                "per_cavity_2layer_mlmin": units.to_ml_per_minute(
                    setting2.per_cavity_flow
                ),
                "per_cavity_4layer_mlmin": units.to_ml_per_minute(
                    setting4.per_cavity_flow
                ),
                "pump_power_w": setting2.power,
            }
        )
    return rows
