"""Experiment harnesses regenerating every table and figure.

Each module exposes a ``run(...)`` returning plain dicts/lists (rows in
the same layout as the paper's table/figure) and a ``format_rows``
helper for printing. The pytest-benchmark suite in ``benchmarks/``
calls these, so ``pytest benchmarks/ --benchmark-only`` regenerates the
whole evaluation.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    common,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fourlayer,
    headline,
    report,
    sweeps,
    table2,
)

__all__ = [
    "common",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table2",
    "headline",
    "ablations",
    "fourlayer",
    "sweeps",
    "report",
]
