"""The 4-layer (16-core) system evaluation (Section V).

"Our simulations are carried out with 2-, and 4-layered stack
architectures" and "the workload statistics collected on the
UltraSPARC T1 are replicated for the 4-layered 16-core system." The
published figures show the 2-layer system; this module runs the same
policy sweep on the 4-layer stack, where the pump's flow is split over
five cavities (625 ml/min per cavity at the maximum setting) while the
stacked power doubles — the regime where Figure 5's 4-layer staircase
reaches its ceiling.
"""

from __future__ import annotations

import numpy as np

from repro.constants import CONTROL
from repro.experiments import common
from repro.metrics.energy import EnergyBreakdown
from repro.metrics.thermal_metrics import hotspot_frequency
from repro.sim.config import CoolingMode, PolicyKind

#: The 4-layer sweep uses the liquid combos only (the air-cooled
#: 4-layer stack is far beyond its thermal envelope at full load).
LIQUID_MATRIX: tuple[tuple[PolicyKind, CoolingMode], ...] = (
    (PolicyKind.LB, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
)


def sweep_spec(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = ("Database", "gzip", "MPlayer"),
    seed: int = 0,
):
    """The 4-layer liquid-policy sweep as a declarative spec."""
    return common.matrix_spec(
        combos=LIQUID_MATRIX,
        workloads=workloads,
        duration=duration,
        n_layers=4,
        seed=seed,
        name="fourlayer",
    )


def run(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = ("Database", "gzip", "MPlayer"),
    seed: int = 0,
    workers: "int | None" = None,
) -> list[dict]:
    """Policy sweep on the 4-layer stack (light workloads).

    Medium/high-utilization workloads exceed the 80 degC target on the
    4-layer stack even at the maximum pump setting (625 ml/min per
    cavity against doubled stacked power; see
    ``examples/stack_design_sweep.py``), so the sweep uses the light
    rows of Table II where the controller has room to work.
    """
    results = common.run_matrix(
        combos=LIQUID_MATRIX,
        workloads=workloads,
        duration=duration,
        n_layers=4,
        seed=seed,
        workers=workers,
    )
    baseline_label = common.combo_label(*LIQUID_MATRIX[0])
    baseline_chip = float(
        np.mean([results[(baseline_label, w)].chip_energy() for w in workloads])
    )
    baseline = EnergyBreakdown(chip=baseline_chip, pump=0.0)

    rows = []
    for policy, cooling in LIQUID_MATRIX:
        label = common.combo_label(policy, cooling)
        runs = [results[(label, w)] for w in workloads]
        chip = float(np.mean([r.chip_energy() for r in runs]))
        pump = float(np.mean([r.pump_energy() for r in runs]))
        normalized = EnergyBreakdown(chip=chip, pump=pump).normalized(baseline)
        rows.append(
            {
                "policy": label,
                "hotspots_avg_pct": float(
                    np.mean([hotspot_frequency(r) for r in runs])
                ),
                "peak_temperature": float(
                    np.max([r.peak_temperature() for r in runs])
                ),
                "target_held": bool(
                    np.all(
                        [
                            r.peak_temperature()
                            <= CONTROL.target_temperature + 0.5
                            for r in runs
                        ]
                    )
                ),
                "energy_chip": normalized.chip,
                "energy_pump": normalized.pump,
            }
        )
    return rows
