"""Ablations of the controller's design choices (extension study).

DESIGN.md calls out the design decisions this module isolates:

* **Proactive vs reactive** — the paper argues a reactive policy
  over-/under-cools because the pump transition (250-300 ms) exceeds
  the stack's thermal time constant (<100 ms). We run the controller
  with the ARMA forecast disabled (decisions on the current T_max) and
  compare target violations and switching activity.
* **Hysteresis** — the 2 degC down-switch guard exists "to avoid rapid
  oscillations"; we run with it removed and count setting switches.
* **Grid resolution** — the paper uses 100 um cells; we quantify what
  the default coarse grid changes on the steady-state answer.
"""

from __future__ import annotations

import numpy as np

from repro.constants import CONTROL
from repro.experiments import common
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.config import ControllerKind, CoolingMode, PolicyKind, SimulationConfig
from repro.sim.system import ThermalSystem
from repro.sweep import SweepSpec


def _setting_switches(flow_setting: np.ndarray) -> int:
    valid = flow_setting[flow_setting >= 0]
    if len(valid) < 2:
        return 0
    return int(np.sum(np.diff(valid) != 0))


#: The controller ablation variants: (label, forecast_enabled, hysteresis).
ABLATION_VARIANTS: tuple[tuple[str, bool, float], ...] = (
    ("proactive+hysteresis (paper)", True, CONTROL.hysteresis),
    ("reactive+hysteresis", False, CONTROL.hysteresis),
    ("proactive, no hysteresis", True, 0.0),
    ("reactive, no hysteresis", False, 0.0),
)


def controller_ablation_spec(
    workload: str = "Web-med", duration: float = 20.0, seed: int = 0
) -> SweepSpec:
    """The four ablated controller variants as lock-step (zip) axes."""
    return SweepSpec(
        base=SimulationConfig(
            benchmark_name=workload,
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=duration,
            seed=seed,
        ),
        zip_axes={
            "forecast_enabled": [v[1] for v in ABLATION_VARIANTS],
            "hysteresis": [v[2] for v in ABLATION_VARIANTS],
        },
        name="controller-ablation",
    )


def run_controller_ablation(
    workload: str = "Web-med", duration: float = 20.0, seed: int = 0
) -> list[dict]:
    """Compare the full controller against its ablated variants."""
    spec = controller_ablation_spec(workload=workload, duration=duration, seed=seed)
    rows = []
    for (label, _, _), (_, result) in zip(
        ABLATION_VARIANTS, common.run_spec(spec)
    ):
        rows.append(
            {
                "variant": label,
                "peak_temperature": result.peak_temperature(),
                "pct_above_target": 100.0
                * result.time_above(CONTROL.target_temperature),
                "setting_switches": _setting_switches(result.flow_setting),
                "pump_energy": result.pump_energy(),
                "mean_setting": result.mean_flow_setting(),
            }
        )
    return rows


def run_controller_comparison(
    workloads: tuple[str, ...] = ("Web-med", "gzip"),
    duration: float = 20.0,
    seed: int = 0,
) -> list[dict]:
    """The paper's controller vs its prior-work predecessor ([6]).

    Related work: "[6] ... investigates the benefits of variable flow
    using a policy to increment/decrement the flow rate based on
    temperature measurements, without considering energy consumption."
    This sweep runs both on the same workloads: the LUT controller
    should match or beat the stepwise ladder on pump energy while
    keeping the temperature guarantee the reactive ladder cannot give.
    """
    labels = {
        "lut": "LUT+ARMA (paper)",
        "stepwise": "stepwise (prior work [6])",
    }
    spec = SweepSpec(
        base=SimulationConfig(
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=duration,
            seed=seed,
        ),
        grid={
            "benchmark_name": list(workloads),
            "controller": [ControllerKind.LUT, ControllerKind.STEPWISE],
        },
        name="controller-comparison",
    )
    rows = []
    for point, result in common.run_spec(spec):
        rows.append(
            {
                "workload": point.config.benchmark_name,
                "controller": labels[point.config.controller],
                "peak_temperature": result.peak_temperature(),
                "pct_above_target": 100.0
                * result.time_above(CONTROL.target_temperature),
                "pump_energy": result.pump_energy(),
                "mean_setting": result.mean_flow_setting(),
                "setting_switches": _setting_switches(result.flow_setting),
            }
        )
    return rows


def run_grid_resolution_ablation(
    resolutions: tuple[int, ...] = (8, 16, 24, 32),
    utilization: float = 0.9,
) -> list[dict]:
    """Steady-state T_max convergence with grid resolution."""
    rows = []
    for n in resolutions:
        system = ThermalSystem(2, CoolingKind.LIQUID, nx=n, ny=n)
        model = PowerModel(system.stack, leakage=LeakageModel())
        tmax_min = system.steady_tmax(model, utilization, setting_index=0)
        tmax_max = system.steady_tmax(
            model, utilization, setting_index=system.pump.n_settings - 1
        )
        rows.append(
            {
                "grid": f"{n}x{n}",
                "nodes": system.grid.n_nodes,
                "tmax_at_min_flow": tmax_min,
                "tmax_at_max_flow": tmax_max,
            }
        )
    return rows


def run_weight_sensitivity(
    workload: str = "Web-med", duration: float = 20.0, seed: int = 0
) -> list[dict]:
    """TALB weight target sensitivity (the paper balances at 75 degC)."""
    spec = SweepSpec(
        base=SimulationConfig(
            benchmark_name=workload,
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_MAX,
            duration=duration,
            seed=seed,
        ),
        grid={"talb_weight_target": [70.0, 75.0, 80.0]},
        name="talb-weight-sensitivity",
    )
    rows = []
    for point, result in common.run_spec(spec):
        spread = result.unit_temperatures.max(axis=1) - result.unit_temperatures.min(
            axis=1
        )
        rows.append(
            {
                "weight_target": point.config.talb_weight_target,
                "mean_spatial_spread": float(spread.mean()),
                "peak_temperature": result.peak_temperature(),
            }
        )
    return rows
