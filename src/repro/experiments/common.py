"""Shared experiment infrastructure: the policy matrix and run cache.

Figure 6's seven policy/cooling combinations, the eight Table II
workloads, and a memoized runner so Figures 6-8 (which share the same
underlying sweep) only simulate each point once per process. Multi-run
sweeps execute through :class:`repro.runner.BatchRunner`, so any
figure/table regeneration can fan out over worker processes by passing
``workers=N``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.runner import BatchRunner
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.results import SimulationResult
from repro.workload.benchmarks import TABLE_II

#: Figure 6's policy/cooling combinations, in the paper's bar order.
POLICY_MATRIX: tuple[tuple[PolicyKind, CoolingMode], ...] = (
    (PolicyKind.LB, CoolingMode.AIR),
    (PolicyKind.MIGRATION, CoolingMode.AIR),
    (PolicyKind.TALB, CoolingMode.AIR),
    (PolicyKind.LB, CoolingMode.LIQUID_MAX),
    (PolicyKind.MIGRATION, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
)

#: Figure 8's reduced comparison set, in the paper's bar order.
FIG8_MATRIX: tuple[tuple[PolicyKind, CoolingMode], ...] = (
    (PolicyKind.LB, CoolingMode.AIR),
    (PolicyKind.MIGRATION, CoolingMode.AIR),
    (PolicyKind.TALB, CoolingMode.AIR),
    (PolicyKind.LB, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
)

#: All Table II workloads, in table order.
ALL_WORKLOADS: tuple[str, ...] = tuple(TABLE_II)

#: Default simulated seconds per (policy, workload) point. Short enough
#: for the benchmark suite, long enough for stationary statistics.
DEFAULT_DURATION = 20.0

_run_cache: dict[tuple, SimulationResult] = {}


def combo_label(policy: PolicyKind, cooling: CoolingMode) -> str:
    """Figure-style label, e.g. ``"TALB (Var)"``."""
    return f"{policy.value} ({cooling.value})"


def _point_config(
    policy: PolicyKind,
    cooling: CoolingMode,
    workload: str,
    duration: float,
    dpm: bool,
    n_layers: int,
    seed: int,
) -> SimulationConfig:
    return SimulationConfig(
        benchmark_name=workload,
        policy=policy,
        cooling=cooling,
        n_layers=n_layers,
        duration=duration,
        dpm_enabled=dpm,
        seed=seed,
    )


def run_point(
    policy: PolicyKind,
    cooling: CoolingMode,
    workload: str,
    duration: float = DEFAULT_DURATION,
    dpm: bool = False,
    n_layers: int = 2,
    seed: int = 0,
) -> SimulationResult:
    """Simulate one (policy, cooling, workload) point, memoized."""
    return run_matrix(
        combos=[(policy, cooling)],
        workloads=[workload],
        duration=duration,
        dpm=dpm,
        n_layers=n_layers,
        seed=seed,
    )[(combo_label(policy, cooling), workload)]


def run_matrix(
    combos: Iterable[tuple[PolicyKind, CoolingMode]] = POLICY_MATRIX,
    workloads: Iterable[str] = ALL_WORKLOADS,
    duration: float = DEFAULT_DURATION,
    dpm: bool = False,
    n_layers: int = 2,
    seed: int = 0,
    workers: Optional[int] = None,
) -> dict[tuple[str, str], SimulationResult]:
    """Simulate a full (combo x workload) sweep; keys are (label, workload).

    Points already memoized in the run cache are reused; the missing
    ones execute through :class:`repro.runner.BatchRunner` — serially
    by default, or fanned out over ``workers`` processes. Results are
    identical either way (runs are fully determined by their configs).
    """
    points = [(p, c, w) for p, c in combos for w in workloads]
    missing: list[tuple[tuple, SimulationConfig]] = []
    pending: set[tuple] = set()
    for policy, cooling, workload in points:
        key = (policy, cooling, workload, duration, dpm, n_layers, seed)
        if key not in _run_cache and key not in pending:
            pending.add(key)
            missing.append(
                (key, _point_config(policy, cooling, workload, duration,
                                    dpm, n_layers, seed))
            )
    if missing:
        batch = BatchRunner(
            [config for _, config in missing], max_workers=workers
        ).run()
        for (key, _), result in zip(missing, batch.results):
            _run_cache[key] = result
    return {
        (combo_label(p, c), w): _run_cache[(p, c, w, duration, dpm, n_layers, seed)]
        for p, c, w in points
    }


def clear_cache() -> None:
    """Drop memoized runs (for tests that vary global state)."""
    _run_cache.clear()


def format_rows(rows: list[dict], columns: Optional[list[str]] = None) -> str:
    """Render result rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0])
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
