"""Shared experiment infrastructure: sweep declarations and run cache.

Figure 6's seven policy/cooling combinations, the eight Table II
workloads, and a memoized runner so Figures 6-8 (which share the same
underlying sweep) only simulate each point once per process. Every
multi-run experiment is declared as a
:class:`~repro.sweep.spec.SweepSpec` (:func:`matrix_spec`, or the
per-figure ``sweep_spec()`` functions) and executes through
:class:`~repro.sweep.runner.SweepRunner` streaming
(:func:`run_spec`), so any figure/table regeneration can fan out over
worker processes by passing ``workers=N`` and large campaigns can be
checkpointed via the ``repro sweep`` CLI.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.results import SimulationResult
from repro.sweep import SweepPoint, SweepRunner, SweepSpec
from repro.workload.benchmarks import TABLE_II

#: Figure 6's policy/cooling combinations, in the paper's bar order.
POLICY_MATRIX: tuple[tuple[PolicyKind, CoolingMode], ...] = (
    (PolicyKind.LB, CoolingMode.AIR),
    (PolicyKind.MIGRATION, CoolingMode.AIR),
    (PolicyKind.TALB, CoolingMode.AIR),
    (PolicyKind.LB, CoolingMode.LIQUID_MAX),
    (PolicyKind.MIGRATION, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
)

#: Figure 8's reduced comparison set, in the paper's bar order.
FIG8_MATRIX: tuple[tuple[PolicyKind, CoolingMode], ...] = (
    (PolicyKind.LB, CoolingMode.AIR),
    (PolicyKind.MIGRATION, CoolingMode.AIR),
    (PolicyKind.TALB, CoolingMode.AIR),
    (PolicyKind.LB, CoolingMode.LIQUID_MAX),
    (PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
)

#: All Table II workloads, in table order.
ALL_WORKLOADS: tuple[str, ...] = tuple(TABLE_II)

#: Default simulated seconds per (policy, workload) point. Short enough
#: for the benchmark suite, long enough for stationary statistics.
DEFAULT_DURATION = 20.0

_run_cache: dict[SimulationConfig, SimulationResult] = {}


def combo_label(policy, cooling: CoolingMode) -> str:
    """Figure-style label, e.g. ``"TALB (Var)"``.

    ``policy`` is a registry key or a legacy :class:`PolicyKind` member.
    """
    return f"{getattr(policy, 'value', policy)} ({cooling.value})"


def matrix_spec(
    combos: Iterable[tuple[PolicyKind, CoolingMode]] = POLICY_MATRIX,
    workloads: Iterable[str] = ALL_WORKLOADS,
    duration: float = DEFAULT_DURATION,
    dpm: bool = False,
    n_layers: int = 2,
    seed: int = 0,
    name: str = "matrix",
) -> SweepSpec:
    """The (combo x workload) figure sweeps as a declarative spec.

    The policy/cooling combos become explicit sweep ``points`` (they
    are an irregular set, not a product) crossed with a workload grid
    axis — the declaration the ``repro sweep`` CLI and the figure
    modules share.
    """
    return SweepSpec(
        base=SimulationConfig(
            duration=duration, dpm_enabled=dpm, n_layers=n_layers, seed=seed
        ),
        points=[{"policy": p, "cooling": c} for p, c in combos],
        grid={"benchmark_name": list(workloads)},
        name=name,
    )


def run_spec(
    spec: SweepSpec, workers: Optional[int] = None
) -> list[tuple[SweepPoint, SimulationResult]]:
    """Execute a spec, streaming, and collect (point, result) in order.

    The direct execution path for the modest experiment sweeps that
    need full results in memory; long campaigns should instead go
    through :class:`~repro.sweep.runner.SweepRunner` with aggregators
    and a checkpoint (``repro sweep run``).
    """
    collected: list[tuple[SweepPoint, SimulationResult]] = []
    SweepRunner(
        spec,
        aggregators=(),
        max_workers=workers,
        on_result=lambda point, result: collected.append((point, result)),
    ).run()
    return collected


def run_point(
    policy: PolicyKind,
    cooling: CoolingMode,
    workload: str,
    duration: float = DEFAULT_DURATION,
    dpm: bool = False,
    n_layers: int = 2,
    seed: int = 0,
) -> SimulationResult:
    """Simulate one (policy, cooling, workload) point, memoized."""
    return run_matrix(
        combos=[(policy, cooling)],
        workloads=[workload],
        duration=duration,
        dpm=dpm,
        n_layers=n_layers,
        seed=seed,
    )[(combo_label(policy, cooling), workload)]


def run_matrix(
    combos: Iterable[tuple[PolicyKind, CoolingMode]] = POLICY_MATRIX,
    workloads: Iterable[str] = ALL_WORKLOADS,
    duration: float = DEFAULT_DURATION,
    dpm: bool = False,
    n_layers: int = 2,
    seed: int = 0,
    workers: Optional[int] = None,
) -> dict[tuple[str, str], SimulationResult]:
    """Simulate a full (combo x workload) sweep; keys are (label, workload).

    The sweep is declared via :func:`matrix_spec` and executed
    streaming through :class:`~repro.sweep.runner.SweepRunner` —
    serially by default, or fanned out over ``workers`` processes
    (results are identical either way: runs are fully determined by
    their configs). Points already memoized in the run cache are not
    re-simulated: the missing subset re-expands as a ``points``-only
    spec over the same base config, which assembles exactly the same
    :class:`~repro.sim.config.SimulationConfig` objects.
    """
    spec = matrix_spec(
        combos=combos, workloads=workloads, duration=duration,
        dpm=dpm, n_layers=n_layers, seed=seed,
    )
    missing: list[SweepPoint] = []
    pending: set[SimulationConfig] = set()
    for point in spec.iter_points():
        if point.config not in _run_cache and point.config not in pending:
            pending.add(point.config)
            missing.append(point)
    if missing:
        subset = SweepSpec(
            base=spec.base,
            points=[point.overrides for point in missing],
            name=spec.name,
        )
        for point, result in run_spec(subset, workers=workers):
            _run_cache[point.config] = result
    return {
        (point.config.label(), point.config.benchmark_name): _run_cache[point.config]
        for point in spec.iter_points()
    }


def clear_cache() -> None:
    """Drop memoized runs (for tests that vary global state)."""
    _run_cache.clear()


def format_rows(rows: list[dict], columns: Optional[list[str]] = None) -> str:
    """Render result rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0])
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
