"""Figure 5 — flow rate required to cool a given T_max below 80 degC.

For the 2- and 4-layer systems: sweep workload intensity, report the
maximum temperature the workload produces at the lowest pump setting
(the x axis; see DESIGN.md section 8 for the axis semantics), the
minimum sufficient *discrete* setting and its per-cavity flow (the
staircase), and the minimum sufficient *continuous* per-cavity flow
(the paper's triangular/circular data points), found by bisection over
the flow-parameterized thermal model.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.constants import CONTROL, MICROCHANNEL
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.system import ThermalSystem
from repro.thermal.solver import SteadyStateSolver


def _steady_tmax_at_flow(
    system: ThermalSystem, model: PowerModel, utilization: float, flow: float
) -> float:
    """Self-consistent steady T_max at an arbitrary continuous flow."""
    network = system.network_for_flow(flow)
    solver = SteadyStateSolver(network)
    grid = system.grid
    core_names = system.core_names
    core_util = {name: utilization for name in core_names}
    from repro.power.components import CoreState

    states = {name: CoreState.ACTIVE for name in core_names}
    unit_temps = None
    temps = None
    for _ in range(6):
        powers = model.unit_powers(core_util, states, 0.8, unit_temps)
        temps = solver.solve(grid.power_vector(powers))
        unit_temps = grid.unit_temperatures(temps)
    return grid.max_unit_temperature(temps)


def continuous_required_flow(
    system: ThermalSystem,
    model: PowerModel,
    utilization: float,
    target: float = CONTROL.target_temperature,
    iters: int = 24,
) -> float:
    """Minimum continuous per-cavity flow holding the target, m^3/s.

    Returns ``nan`` when even the physical maximum (Table I's 1 l/min
    per cavity) is insufficient, and the minimum bound when any flow
    suffices.
    """
    lo = MICROCHANNEL.flow_rate_min * 0.5
    hi = MICROCHANNEL.flow_rate_max
    if _steady_tmax_at_flow(system, model, utilization, hi) > target:
        return float("nan")
    if _steady_tmax_at_flow(system, model, utilization, lo) <= target:
        return lo
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if _steady_tmax_at_flow(system, model, utilization, mid) > target:
            lo = mid
        else:
            hi = mid
    return hi


def run(
    n_layers: int = 2,
    utilizations: tuple[float, ...] = tuple(np.linspace(0.0, 0.93, 7)),
    include_continuous: bool = True,
) -> list[dict]:
    """Regenerate Figure 5's series for one stack."""
    system = ThermalSystem(n_layers, CoolingKind.LIQUID)
    model = PowerModel(system.stack, leakage=LeakageModel())
    pump = system.pump
    rows = []
    for u in utilizations:
        tmax_per_setting = [
            system.steady_tmax(model, float(u), setting_index=k, memory_intensity=0.8)
            for k in range(pump.n_settings)
        ]
        required = next(
            (
                k
                for k, t in enumerate(tmax_per_setting)
                if t <= CONTROL.target_temperature
            ),
            pump.n_settings - 1,
        )
        row = {
            "n_layers": n_layers,
            "utilization": float(u),
            "tmax_at_lowest": tmax_per_setting[0],
            "required_setting": required,
            "discrete_flow_mlmin": units.to_ml_per_minute(
                pump.setting(required).per_cavity_flow
            ),
            "holds_target": tmax_per_setting[required] <= CONTROL.target_temperature,
        }
        if include_continuous:
            flow = continuous_required_flow(system, model, float(u))
            row["continuous_flow_mlmin"] = (
                units.to_ml_per_minute(flow) if np.isfinite(flow) else float("nan")
            )
        rows.append(row)
    return rows
