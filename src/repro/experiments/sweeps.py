"""Parameter-sensitivity sweeps (extension study).

The calibration (DESIGN.md §5) fixes two scales and a 60 degC inlet;
these sweeps show how the headline behaviour moves when those
assumptions move — the robustness analysis a reviewer would ask for.
"""

from __future__ import annotations

from repro.experiments import common
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.system import ThermalSystem
from repro.sweep import SweepSpec
from repro.thermal.rc_network import ThermalParams


def inlet_temperature_sweep(
    inlets: tuple[float, ...] = (45.0, 52.5, 60.0, 67.5),
    utilization: float = 0.9,
) -> list[dict]:
    """Steady T_max vs coolant inlet temperature (hot-water cooling).

    The paper never states its inlet temperature; this sweep shows the
    operating band simply translates with it (the flow-rate *ordering*
    is inlet-independent), which is why the choice of 60 degC affects
    absolute temperatures but none of the comparative results.
    """
    rows = []
    for inlet in inlets:
        params = ThermalParams(inlet_temperature=inlet)
        system = ThermalSystem(2, CoolingKind.LIQUID, params=params)
        model = PowerModel(system.stack, leakage=LeakageModel())
        tmax_min = system.steady_tmax(model, utilization, setting_index=0)
        tmax_max = system.steady_tmax(
            model, utilization, setting_index=system.pump.n_settings - 1
        )
        rows.append(
            {
                "inlet_degC": inlet,
                "tmax_at_min_flow": tmax_min,
                "tmax_at_max_flow": tmax_max,
                "band_width": tmax_min - tmax_max,
            }
        )
    return rows


def controller_family_spec(
    workload: str = "Database",
    duration: float = 15.0,
    seed: int = 0,
) -> SweepSpec:
    """Compare the registered flow-controller family on one workload.

    The registry turns controller variants into sweep points instead of
    code forks: the paper's LUT+ARMA controller, the [6] stepwise
    ladder, and the PID regulator at two proportional gains — the
    controller-dynamics axis Islam & Abdel-Motaleb explore — all run
    under identical scheduling and cooling. Built in as ``controllers``
    for ``repro sweep run`` / ``repro dist plan``.
    """
    return SweepSpec(
        base=SimulationConfig(
            benchmark_name=workload,
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=duration,
            seed=seed,
        ),
        points=[
            {"controller": "lut"},
            {"controller": "stepwise"},
            {"controller": "pid"},
            {"controller": "pid", "controller_params": {"kp": 0.75, "kd": 1.0}},
        ],
        name="controllers",
    )


def workload_family_spec(
    benchmark: str = "Web-med",
    duration: float = 15.0,
    seed: int = 0,
) -> SweepSpec:
    """Compare Var vs Max cooling across the workload-model family.

    The paper evaluates its controller only on stationary Table II
    statistics; this campaign replays the same comparison through every
    built-in workload model — the synthetic generator, a recorded
    utilization trace, a day/night diurnal profile, and a correlated
    flash-crowd — so the Var-vs-Max energy savings can be read as a
    function of workload dynamics rather than a single operating point.
    Built in as ``workloads`` for ``repro sweep run`` / ``repro dist
    plan``.
    """
    return SweepSpec(
        base=SimulationConfig(
            benchmark_name=benchmark,
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=duration,
            seed=seed,
        ),
        points=[
            {"workload": "table2"},
            {"workload": "trace-replay", "workload_params": {"loop": True}},
            {"workload": "diurnal"},
            {"workload": "flash-crowd", "workload_params": {"burst_rate": 0.2}},
        ],
        grid={"cooling": [CoolingMode.LIQUID_VARIABLE, CoolingMode.LIQUID_MAX]},
        name="workloads",
    )


def facility_headline_spec(
    workload: str = "Web-med",
    duration: float = 15.0,
    seed: int = 0,
) -> SweepSpec:
    """The production-scale facility campaign: 2,250 racks x 400 kW.

    One chip is co-simulated against its share of a closed CDU ->
    chiller -> cooling-tower plant and the plant flows are scaled to a
    2,250-rack room at 400 kW per rack (the aggregation is exact
    because every chip share sees the same boundary conditions, and
    PUE/WUE are scale-invariant). The campaign crosses climate
    (wet-bulb temperature) with the supply setpoint — the paper's
    hot-water-cooling argument as a sweep: a 60 degC setpoint holds
    the economizer active across every climate, while chilled-water
    setpoints buy nothing but chiller energy. Built in as ``facility``
    for ``repro sweep run`` / ``repro dist plan``; the dotted
    ``facility_params.*`` axes shard byte-identically like any other.
    """
    return SweepSpec(
        base=SimulationConfig(
            benchmark_name=workload,
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=duration,
            seed=seed,
            facility="closed-loop",
            # ~29 W per 2-layer chip -> ~13,800 chips per 400 kW rack.
            facility_params={"racks": 2250, "chips_per_rack": 13800},
        ),
        grid={
            "facility_params.wet_bulb_c": [10.0, 18.0, 26.0],
            "facility_params.supply_setpoint_c": [20.0, 45.0, 60.0],
        },
        name="facility",
    )


def hysteresis_spec(
    values: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0),
    workload: str = "Database",
    duration: float = 15.0,
    seed: int = 0,
) -> SweepSpec:
    """The hysteresis-margin campaign as a declarative spec.

    Shared by :func:`hysteresis_sweep` and the campaign CLIs
    (``repro sweep run --spec hysteresis``, ``repro dist plan --spec
    hysteresis``) so the direct and distributed paths expand the exact
    same runs.
    """
    return SweepSpec(
        base=SimulationConfig(
            benchmark_name=workload,
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=duration,
            seed=seed,
        ),
        grid={"hysteresis": list(values)},
        name="hysteresis",
    )


def hysteresis_sweep(
    values: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0),
    workload: str = "Database",
    duration: float = 15.0,
    seed: int = 0,
) -> list[dict]:
    """Controller behaviour vs the down-switch hysteresis margin.

    The paper picks 2 degC "to avoid rapid oscillations"; the sweep
    shows the trade: less hysteresis means more switching, more
    hysteresis means higher average flow (more pump energy).
    """
    import numpy as np

    spec = hysteresis_spec(
        values=values, workload=workload, duration=duration, seed=seed
    )
    rows = []
    for point, result in common.run_spec(spec):
        settings = result.flow_setting[result.flow_setting >= 0]
        switches = int(np.sum(np.diff(settings) != 0)) if len(settings) > 1 else 0
        rows.append(
            {
                "hysteresis_K": point.config.hysteresis,
                "setting_switches": switches,
                "mean_setting": result.mean_flow_setting(),
                "pump_energy": result.pump_energy(),
                "peak_temperature": result.peak_temperature(),
            }
        )
    return rows


def idle_power_sweep(
    values: tuple[float, ...] = (0.5, 1.0, 1.5),
    utilization: float = 0.2,
) -> list[dict]:
    """Sensitivity to the undocumented idle-core power (DESIGN.md §8).

    The paper does not state idle power; we assume 1 W. The sweep shows
    the low-utilization T_max (and hence the light-workload pump
    setting) shifts by only a few kelvin per 0.5 W, so the headline
    ranking is insensitive to the assumption.
    """
    rows = []
    for idle in values:
        system = ThermalSystem(2, CoolingKind.LIQUID)
        model = PowerModel(
            system.stack, leakage=LeakageModel(), idle_power=idle
        )
        rows.append(
            {
                "idle_power_w": idle,
                "tmax_low_util_min_flow": system.steady_tmax(
                    model, utilization, setting_index=0
                ),
                "tmax_low_util_max_flow": system.steady_tmax(
                    model, utilization, setting_index=4
                ),
            }
        )
    return rows
