"""The headline claims: cooling/total energy savings of variable flow.

"Our method guarantees operating below the target temperature while
reducing the cooling energy by up to 30 %, and the overall energy by up
to 12 % in comparison to using the highest coolant flow rate. ... For
low utilization workloads, such as gzip and MPlayer, the total energy
savings reach 12 %, and the reduction in cooling energy exceeds 30 %."

One row per workload: TALB (Var) vs TALB (Max) pump/total energy, the
savings, and whether the 80 degC target held throughout the run.
"""

from __future__ import annotations

from repro.constants import CONTROL
from repro.experiments import common
from repro.metrics.energy import (
    EnergyBreakdown,
    cooling_energy_savings,
    total_energy_savings,
)
from repro.sim.config import CoolingMode, PolicyKind

#: The headline comparison pair: the controller vs worst-case flow.
HEADLINE_MATRIX: tuple[tuple[PolicyKind, CoolingMode], ...] = (
    (PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
    (PolicyKind.TALB, CoolingMode.LIQUID_MAX),
)


def sweep_spec(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
):
    """The headline Var-vs-Max savings sweep as a declarative spec."""
    return common.matrix_spec(
        combos=HEADLINE_MATRIX,
        workloads=workloads,
        duration=duration,
        seed=seed,
        name="headline",
    )


def run(
    duration: float = common.DEFAULT_DURATION,
    workloads: tuple[str, ...] = common.ALL_WORKLOADS,
    seed: int = 0,
    workers: "int | None" = None,
) -> list[dict]:
    """Regenerate the headline per-workload savings."""
    results = common.run_matrix(
        combos=HEADLINE_MATRIX,
        workloads=workloads,
        duration=duration,
        seed=seed,
        workers=workers,
    )
    var_label = common.combo_label(PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE)
    max_label = common.combo_label(PolicyKind.TALB, CoolingMode.LIQUID_MAX)
    rows = []
    for workload in workloads:
        variable = results[(var_label, workload)]
        max_flow = results[(max_label, workload)]
        e_var = EnergyBreakdown.from_result(variable)
        e_max = EnergyBreakdown.from_result(max_flow)
        rows.append(
            {
                "workload": workload,
                "cooling_savings_pct": 100.0 * cooling_energy_savings(e_var, e_max),
                "total_savings_pct": 100.0 * total_energy_savings(e_var, e_max),
                "peak_temperature": variable.peak_temperature(),
                "target_held": variable.peak_temperature()
                <= CONTROL.target_temperature + 0.5,
                "mean_setting": variable.mean_flow_setting(),
            }
        )
    return rows
