"""The paper's measured workloads (Table II).

Eight real-life benchmarks were characterized on an UltraSPARC T1 with
mpstat/DTrace: web serving (SLAMD), database (MySQL/sysbench), SPEC-like
compilation and compression, and multimedia (mplayer). Table II reports
average system utilization, L2 instruction/data misses, and floating
point instructions (misses and FP per 100 k instructions).

The memory intensity used by the crossbar power model derives from the
total L2 miss rate, normalized to the most memory-intensive workload
(Web-high, 356.3 misses per 100 k instructions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table II.

    Attributes
    ----------
    index:
        Row number in Table II (1-8).
    name:
        Benchmark name.
    avg_utilization:
        Average system utilization in percent (Table II "Avg Util (%)").
    l2_i_miss, l2_d_miss:
        L2 instruction/data misses per 100 k instructions.
    fp_instructions:
        Floating point instructions per 100 k instructions.
    """

    index: int
    name: str
    avg_utilization: float
    l2_i_miss: float
    l2_d_miss: float
    fp_instructions: float

    def __post_init__(self) -> None:
        if not 0.0 < self.avg_utilization <= 100.0:
            raise WorkloadError(f"{self.name}: utilization must be in (0, 100]")
        if self.l2_i_miss < 0.0 or self.l2_d_miss < 0.0 or self.fp_instructions < 0.0:
            raise WorkloadError(f"{self.name}: event rates must be non-negative")

    @property
    def utilization(self) -> float:
        """Average utilization as a fraction in (0, 1]."""
        return self.avg_utilization / 100.0

    @property
    def total_l2_miss(self) -> float:
        """Combined L2 miss rate per 100 k instructions."""
        return self.l2_i_miss + self.l2_d_miss

    @property
    def memory_intensity(self) -> float:
        """Miss rate normalized to the most memory-intensive workload."""
        return min(1.0, self.total_l2_miss / _MAX_L2_MISS)


_TABLE_II_ROWS = (
    BenchmarkSpec(1, "Web-med", 53.12, 12.9, 167.7, 31.2),
    BenchmarkSpec(2, "Web-high", 92.87, 67.6, 288.7, 31.2),
    BenchmarkSpec(3, "Database", 17.75, 6.5, 102.3, 5.9),
    BenchmarkSpec(4, "Web&DB", 75.12, 21.5, 115.3, 24.1),
    BenchmarkSpec(5, "gcc", 15.25, 31.7, 96.2, 18.1),
    BenchmarkSpec(6, "gzip", 9.0, 2.0, 57.0, 0.2),
    BenchmarkSpec(7, "MPlayer", 6.5, 9.6, 136.0, 1.0),
    BenchmarkSpec(8, "MPlayer&Web", 26.62, 9.1, 66.8, 29.9),
)

_MAX_L2_MISS = max(row.l2_i_miss + row.l2_d_miss for row in _TABLE_II_ROWS)

TABLE_II: dict[str, BenchmarkSpec] = {row.name: row for row in _TABLE_II_ROWS}
"""All Table II benchmarks, keyed by name."""


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a Table II benchmark by name (case-insensitive)."""
    for key, spec in TABLE_II.items():
        if key.lower() == name.lower():
            return spec
    raise WorkloadError(
        f"unknown benchmark {name!r}; available: {', '.join(TABLE_II)}"
    )
