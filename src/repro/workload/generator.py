"""Synthetic thread-arrival generator matched to Table II statistics.

The paper drove its simulations with half-hour mpstat/DTrace traces of
real workloads. We synthesize equivalent traces (DESIGN.md section 4):

* thread lengths are log-normally distributed between "a few" and
  "several hundred" milliseconds (the DTrace observation), with a
  100 ms median;
* arrivals form a doubly stochastic (modulated) Poisson process whose
  rate is an AR(1) series around the Table II average utilization, so
  traces show the serial correlation that makes ARMA forecasting
  effective (Section IV) while still exercising rate changes;
* the offered load is calibrated so the long-run system utilization
  matches the Table II "Avg Util" column.

A generator is deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workload.benchmarks import BenchmarkSpec
from repro.workload.threads import Thread

#: Median thread length, s ("a few to several hundred milliseconds").
_MEDIAN_LENGTH = 0.1

#: Log-normal sigma: ~[15 ms, 650 ms] central 95 % range.
_LENGTH_SIGMA = 0.95

#: Lower/upper clamps on individual thread lengths, s.
_MIN_LENGTH = 0.003
_MAX_LENGTH = 0.8


@dataclass(frozen=True)
class ThreadTrace:
    """An immutable, time-sorted list of generated threads."""

    threads: tuple[Thread, ...]
    duration: float
    spec: BenchmarkSpec
    n_cores: int

    def offered_utilization(self) -> float:
        """Total requested CPU time divided by total capacity."""
        demand = sum(t.length for t in self.threads)
        return demand / (self.duration * self.n_cores)

    def pristine(self) -> "ThreadTrace":
        """A copy with every thread reset to its unexecuted state.

        The trace container is immutable but the scheduler mutates the
        :class:`~repro.workload.threads.Thread` objects themselves
        (``remaining``, ``migrations``), so a trace that is cached or
        otherwise shared across runs must hand each simulation its own
        pristine copy.
        """
        return ThreadTrace(
            threads=tuple(
                Thread(t.thread_id, t.arrival, t.length) for t in self.threads
            ),
            duration=self.duration,
            spec=self.spec,
            n_cores=self.n_cores,
        )

    def _arrival_index(self) -> Optional[np.ndarray]:
        """Lazily built (and memoized) sorted arrival-time array.

        Returns ``None`` for a hand-built trace whose threads are not
        time-sorted — the documented contract, but the old linear scan
        tolerated it, so window queries quietly fall back rather than
        change behaviour.
        """
        cached = self.__dict__.get("_arrivals_cache", False)
        if cached is not False:
            return cached
        arrivals = np.fromiter(
            (t.arrival for t in self.threads), dtype=float, count=len(self.threads)
        )
        index = arrivals if np.all(np.diff(arrivals) >= 0.0) else None
        object.__setattr__(self, "_arrivals_cache", index)
        return index

    def arrivals_between(self, t0: float, t1: float) -> list[Thread]:
        """Threads arriving in the half-open window [t0, t1).

        Runs once per control interval, so the window is found by
        binary search over a precomputed arrival array instead of an
        O(n) scan over the whole trace.
        """
        arrivals = self._arrival_index()
        if arrivals is None:  # Unsorted hand-built trace: exact old behaviour.
            return [t for t in self.threads if t0 <= t.arrival < t1]
        lo, hi = np.searchsorted(arrivals, (t0, t1), side="left")
        return list(self.threads[lo:hi])


class WorkloadGenerator:
    """Generates :class:`ThreadTrace` objects for a Table II benchmark.

    Parameters
    ----------
    spec:
        The benchmark row to replicate.
    n_cores:
        Number of cores the workload targets (8 for the 2-layer system;
        "the workload statistics ... are replicated for the 4-layered
        16-core system").
    seed:
        Seed for reproducibility.
    rate_correlation:
        AR(1) coefficient of the arrival-rate modulation per second
        (close to 1 = slowly varying load).
    rate_jitter:
        Relative standard deviation of the rate modulation.
    """

    def __init__(
        self,
        spec: BenchmarkSpec,
        n_cores: int = 8,
        seed: int = 0,
        rate_correlation: float = 0.93,
        rate_jitter: float = 0.15,
    ) -> None:
        if n_cores <= 0:
            raise WorkloadError("n_cores must be positive")
        if not 0.0 <= rate_correlation < 1.0:
            raise WorkloadError("rate_correlation must be in [0, 1)")
        if rate_jitter < 0.0:
            raise WorkloadError("rate_jitter must be non-negative")
        self.spec = spec
        self.n_cores = n_cores
        self.seed = seed
        self.rate_correlation = rate_correlation
        self.rate_jitter = rate_jitter

    def mean_thread_length(self) -> float:
        """Expected thread length (s) under the clamped log-normal."""
        # Monte-Carlo-free estimate: the clamp hardly moves the mean, so
        # use the analytic log-normal mean and verify in tests.
        return _MEDIAN_LENGTH * float(np.exp(0.5 * _LENGTH_SIGMA**2))

    def generate(self, duration: float) -> ThreadTrace:
        """Generate a trace covering ``duration`` seconds."""
        if duration <= 0.0:
            raise WorkloadError("duration must be positive")
        rng = np.random.default_rng(self.seed + 1009 * self.spec.index)
        base_rate = self.spec.utilization * self.n_cores / self.mean_thread_length()

        threads: list[Thread] = []
        thread_id = 0
        # Rate modulation updates once per second (mpstat's granularity).
        n_slots = int(np.ceil(duration))
        modulation = 1.0
        for slot in range(n_slots):
            noise = rng.normal(0.0, self.rate_jitter)
            modulation = (
                self.rate_correlation * modulation
                + (1.0 - self.rate_correlation) * (1.0 + noise)
            )
            modulation = float(np.clip(modulation, 0.2, 2.0))
            rate = base_rate * modulation
            t = float(slot)
            end = min(duration, t + 1.0)
            while True:
                t += float(rng.exponential(1.0 / rate)) if rate > 0 else end
                if t >= end:
                    break
                length = float(
                    np.clip(
                        rng.lognormal(np.log(_MEDIAN_LENGTH), _LENGTH_SIGMA),
                        _MIN_LENGTH,
                        _MAX_LENGTH,
                    )
                )
                threads.append(Thread(thread_id, t, length))
                thread_id += 1
        return ThreadTrace(
            threads=tuple(threads),
            duration=duration,
            spec=self.spec,
            n_cores=self.n_cores,
        )


def diurnal_trace(
    day_spec: BenchmarkSpec,
    night_spec: BenchmarkSpec,
    phase_duration: float,
    n_cores: int = 8,
    seed: int = 0,
) -> ThreadTrace:
    """Concatenate two workload phases (the paper's day/night scenario).

    Section IV motivates SPRT-triggered ARMA retraining with workloads
    that "dramatically change (e.g., day-time and night-time workload
    patterns for a server)"; this builds such a two-phase trace.
    """
    if phase_duration <= 0.0:
        raise WorkloadError("phase duration must be positive")
    day = WorkloadGenerator(day_spec, n_cores=n_cores, seed=seed).generate(phase_duration)
    night = WorkloadGenerator(night_spec, n_cores=n_cores, seed=seed + 1).generate(
        phase_duration
    )
    shifted = [
        Thread(t.thread_id + len(day.threads), t.arrival + phase_duration, t.length)
        for t in night.threads
    ]
    return ThreadTrace(
        threads=tuple(list(day.threads) + shifted),
        duration=2.0 * phase_duration,
        spec=day_spec,
        n_cores=n_cores,
    )
