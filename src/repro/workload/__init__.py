"""Workload substrate: Table II benchmarks, threads, traces, models.

Workload *models* (how a run's thread trace is built) are registered
components — importing :mod:`repro.workload.models` below runs their
registrations, the same at-import idiom the scheduler policies use.
"""

from repro.workload.benchmarks import TABLE_II, BenchmarkSpec, benchmark
from repro.workload.generator import ThreadTrace, WorkloadGenerator, diurnal_trace
from repro.workload.threads import Thread
from repro.workload.traces import UtilizationTrace, generate_from_utilization
from repro.workload.models import SAMPLE_TRACE_PATH, WorkloadModel

__all__ = [
    "BenchmarkSpec",
    "TABLE_II",
    "benchmark",
    "Thread",
    "WorkloadGenerator",
    "ThreadTrace",
    "diurnal_trace",
    "UtilizationTrace",
    "generate_from_utilization",
    "WorkloadModel",
    "SAMPLE_TRACE_PATH",
]
