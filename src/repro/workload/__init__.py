"""Workload substrate: Table II benchmarks, threads, traces."""

from repro.workload.benchmarks import TABLE_II, BenchmarkSpec, benchmark
from repro.workload.generator import ThreadTrace, WorkloadGenerator, diurnal_trace
from repro.workload.threads import Thread
from repro.workload.traces import UtilizationTrace, generate_from_utilization

__all__ = [
    "BenchmarkSpec",
    "TABLE_II",
    "benchmark",
    "Thread",
    "WorkloadGenerator",
    "ThreadTrace",
    "diurnal_trace",
    "UtilizationTrace",
    "generate_from_utilization",
]
