"""Thread abstraction for the multi-queue scheduler substrate.

The paper assumes "short threads, which is a common scenario in server
workloads": continuous execution times of "a few to several hundred
milliseconds" (measured with DTrace on real T1 workloads), with similar
lengths within a workload, so queue length in threads is the load metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError


@dataclass
class Thread:
    """A schedulable unit of work.

    Attributes
    ----------
    thread_id:
        Unique identifier (generation order).
    arrival:
        Arrival time, s.
    length:
        Total execution time required, s.
    remaining:
        Execution time still owed, s (mutated by the scheduler).
    migrations:
        Number of times the thread changed cores (performance
        accounting for the migration policy's overhead).
    """

    thread_id: int
    arrival: float
    length: float
    remaining: float = field(default=-1.0)
    migrations: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise WorkloadError(f"thread {self.thread_id}: length must be positive")
        if self.arrival < 0.0:
            raise WorkloadError(f"thread {self.thread_id}: arrival must be >= 0")
        if self.remaining < 0.0:
            self.remaining = self.length

    @property
    def done(self) -> bool:
        """Whether the thread has finished executing."""
        return self.remaining <= 1.0e-12

    def execute(self, quantum: float) -> float:
        """Run for up to ``quantum`` seconds; returns time consumed."""
        if quantum < 0.0:
            raise WorkloadError("quantum must be non-negative")
        used = min(self.remaining, quantum)
        self.remaining -= used
        return used
