"""mpstat-style utilization traces (the paper's measurement pipeline).

Section V: "we sample the utilization percentage for each hardware
thread at every second using mpstat for half an hour". This module
carries such traces: per-second system utilization series that can be

* recorded from any :class:`ThreadTrace` (what did the generator
  actually offer?),
* loaded from / saved to CSV or JSONL (interchange with real mpstat
  logs),
* used to drive the generator directly, reproducing a measured load
  profile instead of a stationary Table II average.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import WorkloadError
from repro.workload.benchmarks import BenchmarkSpec
from repro.workload.generator import (
    _LENGTH_SIGMA,
    _MAX_LENGTH,
    _MEDIAN_LENGTH,
    _MIN_LENGTH,
    ThreadTrace,
)
from repro.workload.threads import Thread


@dataclass(frozen=True)
class UtilizationTrace:
    """A per-second system utilization series (mpstat-like).

    Attributes
    ----------
    utilization:
        Fraction of total capacity demanded in each 1 s slot, in
        [0, 1].
    n_cores:
        The core count the fractions refer to.
    name:
        Label (workload or log name).
    """

    utilization: np.ndarray
    n_cores: int
    name: str = "trace"

    def __post_init__(self) -> None:
        util = np.asarray(self.utilization, dtype=float)
        if util.ndim != 1 or len(util) == 0:
            raise WorkloadError("utilization trace must be a non-empty 1-D series")
        if np.any(util < 0.0) or np.any(util > 1.0):
            raise WorkloadError("utilization values must lie in [0, 1]")
        if self.n_cores <= 0:
            raise WorkloadError("n_cores must be positive")
        object.__setattr__(self, "utilization", util)

    @property
    def duration(self) -> float:
        """Covered time, s (one slot per second)."""
        return float(len(self.utilization))

    def mean_utilization(self) -> float:
        """Long-run average utilization fraction."""
        return float(self.utilization.mean())

    # --- I/O -------------------------------------------------------------

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write as two-column CSV (second, utilization_pct)."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["second", "utilization_pct"])
            for second, value in enumerate(self.utilization):
                writer.writerow([second, f"{100.0 * value:.3f}"])

    @classmethod
    def from_csv(
        cls, path: Union[str, Path], n_cores: int, name: str | None = None
    ) -> "UtilizationTrace":
        """Read a CSV written by :meth:`to_csv` (or a real mpstat dump
        reduced to the same two columns)."""
        path = Path(path)
        values: list[float] = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise WorkloadError(f"{path.name}: empty trace file")
            for row_no, row in enumerate(reader, start=2):
                if len(row) < 2:
                    raise WorkloadError(f"{path.name}:{row_no}: expected 2 columns")
                try:
                    values.append(float(row[1]) / 100.0)
                except ValueError as exc:
                    raise WorkloadError(f"{path.name}:{row_no}: {exc}")
        return cls(
            utilization=np.asarray(values),
            n_cores=n_cores,
            name=name or path.stem,
        )

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write as JSON lines (``{"second": s, "utilization_pct": u}``)."""
        with open(path, "w") as handle:
            for second, value in enumerate(self.utilization):
                handle.write(
                    json.dumps(
                        {"second": second,
                         "utilization_pct": round(100.0 * float(value), 3)}
                    )
                    + "\n"
                )

    @classmethod
    def from_jsonl(
        cls, path: Union[str, Path], n_cores: int, name: str | None = None
    ) -> "UtilizationTrace":
        """Read a JSONL trace (one ``{"second", "utilization_pct"}``
        object per line, as written by :meth:`to_jsonl`)."""
        path = Path(path)
        values: list[float] = []
        with open(path) as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    values.append(float(entry["utilization_pct"]) / 100.0)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise WorkloadError(f"{path.name}:{line_no}: {exc}")
        if not values:
            raise WorkloadError(f"{path.name}: empty trace file")
        return cls(
            utilization=np.asarray(values),
            n_cores=n_cores,
            name=name or path.stem,
        )

    @classmethod
    def from_file(
        cls, path: Union[str, Path], n_cores: int, name: str | None = None
    ) -> "UtilizationTrace":
        """Load a trace file, dispatching on suffix (``.jsonl`` vs CSV)."""
        path = Path(path)
        if path.suffix.lower() in (".jsonl", ".ndjson"):
            return cls.from_jsonl(path, n_cores=n_cores, name=name)
        return cls.from_csv(path, n_cores=n_cores, name=name)

    @classmethod
    def from_thread_trace(cls, trace: ThreadTrace) -> "UtilizationTrace":
        """Record the offered per-second utilization of a thread trace.

        Each thread's execution demand is attributed to the seconds it
        spans (assuming it runs as soon as it arrives — offered load,
        not queued load).
        """
        n_slots = int(np.ceil(trace.duration))
        demand = np.zeros(n_slots)
        for thread in trace.threads:
            start = thread.arrival
            remaining = thread.length
            slot = int(start)
            position = start
            while remaining > 1.0e-12 and slot < n_slots:
                slot_end = float(slot + 1)
                chunk = min(remaining, slot_end - position)
                demand[slot] += chunk
                remaining -= chunk
                position = slot_end
                slot += 1
        capacity = float(trace.n_cores)
        return cls(
            utilization=np.clip(demand / capacity, 0.0, 1.0),
            n_cores=trace.n_cores,
            name=trace.spec.name,
        )


def generate_from_utilization(
    trace: UtilizationTrace,
    spec: BenchmarkSpec,
    seed: int = 0,
) -> ThreadTrace:
    """Synthesize a thread trace that follows a recorded load profile.

    The per-second arrival rate is set so the offered load in each slot
    matches the recorded utilization; thread lengths use the same
    distribution as the stationary generator. This is how a real mpstat
    log (imported with :meth:`UtilizationTrace.from_csv`) is replayed
    through the simulator.
    """
    rng = np.random.default_rng(seed + 101 * spec.index)
    mean_length = _MEDIAN_LENGTH * float(np.exp(0.5 * _LENGTH_SIGMA**2))
    threads: list[Thread] = []
    thread_id = 0
    for slot, utilization in enumerate(trace.utilization):
        rate = utilization * trace.n_cores / mean_length
        t = float(slot)
        end = t + 1.0
        while rate > 0.0:
            t += float(rng.exponential(1.0 / rate))
            if t >= end:
                break
            length = float(
                np.clip(
                    rng.lognormal(np.log(_MEDIAN_LENGTH), _LENGTH_SIGMA),
                    _MIN_LENGTH,
                    _MAX_LENGTH,
                )
            )
            threads.append(Thread(thread_id, t, length))
            thread_id += 1
    return ThreadTrace(
        threads=tuple(threads),
        duration=trace.duration,
        spec=spec,
        n_cores=trace.n_cores,
    )
