"""Registered workload models — the pluggable load axis.

The paper drove every result from half-hour mpstat/DTrace traces of
real workloads (Table II). This module turns *how the load is built*
into a registry-keyed component (:mod:`repro.registry`), exactly like
policies, controllers, and forecasters: a :class:`WorkloadModel` is any
object with ``build_trace(ctx) -> ThreadTrace``, registered under a
string key with a declared :class:`~repro.registry.ParamSpec` schema
and capability traits. ``SimulationConfig(workload=..., workload_params
={...})`` selects one; the engine, sweeps, the dist sharder, and the
CLI resolve it purely through the registry — no model is ever named in
the simulation loop.

Built-in keys:

* ``table2`` (default) — the stationary Table II synthetic generator
  (:class:`~repro.workload.generator.WorkloadGenerator`). With default
  parameters it produces byte-identical traces to the pre-registry
  engine, so golden fixtures and old sweep fingerprints stay valid.
* ``trace-replay`` — replay a recorded per-second utilization profile
  (CSV or JSONL; :class:`~repro.workload.traces.UtilizationTrace`)
  through the thread synthesizer — how a real mpstat log drives the
  simulator. Ships with a bundled 60 s day/night sample.
* ``diurnal`` — a smooth day/night load wave (configurable
  peak/trough/period/phase, sine or square), the "millions of users"
  scenario Section IV motivates SPRT retraining with.
* ``flash-crowd`` — a baseline load plus correlated burst epochs that
  saturate the whole stack at once (every die sees the surge
  simultaneously), the transient regime where variable-flow control is
  actually stressed.

The three non-default models synthesize a per-second utilization
profile and share one replay path (:func:`generate_from_utilization`),
so their thread-length statistics match the calibrated generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import WorkloadError
from repro.registry import ParamSpec, WorkloadContext, register_workload
from repro.workload.generator import ThreadTrace, WorkloadGenerator
from repro.workload.traces import UtilizationTrace, generate_from_utilization

__all__ = ["WorkloadModel", "SAMPLE_TRACE_PATH"]

#: The bundled sample utilization trace (60 s day/night profile) that
#: ``trace-replay`` falls back to when no ``path`` parameter is given —
#: built-in sweep specs must not depend on user files.
SAMPLE_TRACE_PATH = Path(__file__).parent / "data" / "web_diurnal.csv"


@runtime_checkable
class WorkloadModel(Protocol):
    """What a registered workload model must provide.

    ``build_trace`` receives a :class:`~repro.registry.WorkloadContext`
    (benchmark spec, core count, duration, seed, and — when built from
    the engine — the full config) and returns the
    :class:`~repro.workload.generator.ThreadTrace` the run executes.
    Determinism contract: equal context and parameters must yield an
    identical trace, or sweep resume/dist-merge bit-identity breaks.
    """

    def build_trace(self, ctx: WorkloadContext) -> ThreadTrace:
        """Build the thread trace one configured run executes."""
        ...


# --- shared profile-replay plumbing ----------------------------------------


def _fit_profile(
    utilization: np.ndarray, duration: float, loop: bool, source: str
) -> np.ndarray:
    """Clip or tile a per-second profile to cover ``duration`` seconds."""
    if duration <= 0.0:
        raise WorkloadError("duration must be positive")
    n_slots = int(np.ceil(duration))
    if len(utilization) < n_slots:
        if not loop:
            raise WorkloadError(
                f"utilization trace {source} covers {len(utilization)} s but "
                f"the run lasts {duration:g} s; shorten the run or set the "
                "workload parameter loop=true to tile the trace"
            )
        reps = int(np.ceil(n_slots / len(utilization)))
        utilization = np.tile(utilization, reps)
    return utilization[:n_slots]


def _replay_profile(
    ctx: WorkloadContext, utilization: np.ndarray, name: str
) -> ThreadTrace:
    """Synthesize threads following a per-second profile, trimmed to
    the context's exact (possibly fractional) duration."""
    profile = UtilizationTrace(
        utilization=utilization, n_cores=ctx.n_cores, name=name
    )
    trace = generate_from_utilization(profile, ctx.spec, seed=ctx.seed)
    if trace.duration == ctx.duration:
        return trace
    return ThreadTrace(
        threads=tuple(t for t in trace.threads if t.arrival < ctx.duration),
        duration=ctx.duration,
        spec=trace.spec,
        n_cores=trace.n_cores,
    )


# --- table2: the stationary synthetic generator (default) ------------------


@dataclass(frozen=True)
class _Table2Model:
    rate_correlation: float = 0.93
    rate_jitter: float = 0.15

    def build_trace(self, ctx: WorkloadContext) -> ThreadTrace:
        # Exactly the construction the engine used to hard-code: with
        # default parameters the trace is byte-identical to the
        # pre-registry era (golden fixtures pin this).
        return WorkloadGenerator(
            ctx.spec,
            n_cores=ctx.n_cores,
            seed=ctx.seed,
            rate_correlation=self.rate_correlation,
            rate_jitter=self.rate_jitter,
        ).generate(ctx.duration)


@register_workload(
    "table2",
    params=(
        ParamSpec(
            "rate_correlation", "float", default=0.93,
            doc="AR(1) coefficient of the per-second arrival-rate "
                "modulation (close to 1 = slowly varying load)",
            minimum=0.0, maximum=0.9999,
        ),
        ParamSpec(
            "rate_jitter", "float", default=0.15,
            doc="relative std-dev of the rate modulation",
            minimum=0.0,
        ),
    ),
    aliases=("synthetic",),
    description="Stationary Table II synthetic generator (the default): "
    "modulated-Poisson arrivals calibrated to the benchmark's average "
    "utilization",
    traits={"synthetic": True},
)
def _build_table2(ctx, rate_correlation=0.93, rate_jitter=0.15):
    return _Table2Model(
        rate_correlation=rate_correlation, rate_jitter=rate_jitter
    )


# --- trace-replay: recorded utilization profiles ---------------------------


@dataclass(frozen=True)
class _TraceReplayModel:
    path: str = ""
    loop: bool = False

    def build_trace(self, ctx: WorkloadContext) -> ThreadTrace:
        path = Path(self.path) if self.path else SAMPLE_TRACE_PATH
        if not path.is_file():
            raise WorkloadError(
                f"utilization trace file {str(path)!r} does not exist"
            )
        profile = UtilizationTrace.from_file(path, n_cores=ctx.n_cores)
        utilization = _fit_profile(
            profile.utilization, ctx.duration, self.loop, path.name
        )
        return _replay_profile(ctx, utilization, profile.name)


@register_workload(
    "trace-replay",
    params=(
        ParamSpec(
            "path", "str", default="",
            doc="CSV (second,utilization_pct) or JSONL trace file; "
                "empty = the bundled 60 s day/night sample",
        ),
        ParamSpec(
            "loop", "bool", default=False,
            doc="tile the trace when the run outlasts it "
                "(otherwise that is an error)",
        ),
    ),
    aliases=("replay",),
    description="Replay a recorded per-second utilization trace "
    "(mpstat-style CSV/JSONL) through the thread synthesizer",
    traits={"trace_driven": True, "cache_trace": True},
)
def _build_trace_replay(ctx, path="", loop=False):
    return _TraceReplayModel(path=path, loop=loop)


# --- diurnal: day/night load wave ------------------------------------------


@dataclass(frozen=True)
class _DiurnalModel:
    peak_utilization: float = 0.9
    trough_utilization: float = 0.1
    period: float = 0.0
    phase: float = 0.0
    shape: str = "sine"

    def build_trace(self, ctx: WorkloadContext) -> ThreadTrace:
        if self.trough_utilization > self.peak_utilization:
            raise WorkloadError(
                "diurnal trough_utilization must not exceed peak_utilization"
            )
        if self.shape not in ("sine", "square"):
            raise WorkloadError(
                f"diurnal shape must be 'sine' or 'square', got {self.shape!r}"
            )
        # period=0 means one full day/night cycle spanning the run.
        period = self.period if self.period > 0.0 else ctx.duration
        n_slots = int(np.ceil(ctx.duration))
        centers = np.arange(n_slots) + 0.5
        # Cycle position in [0, 1): 0 = peak (daytime), 0.5 = trough.
        position = np.mod(centers / period + self.phase, 1.0)
        if self.shape == "sine":
            swing = 0.5 * (1.0 + np.cos(2.0 * math.pi * position))
        else:
            swing = (position < 0.5).astype(float)
        amplitude = self.peak_utilization - self.trough_utilization
        utilization = self.trough_utilization + amplitude * swing
        return _replay_profile(ctx, utilization, "diurnal")


@register_workload(
    "diurnal",
    params=(
        ParamSpec(
            "peak_utilization", "float", default=0.9,
            doc="daytime utilization fraction", minimum=0.0, maximum=1.0,
        ),
        ParamSpec(
            "trough_utilization", "float", default=0.1,
            doc="night-time utilization fraction", minimum=0.0, maximum=1.0,
        ),
        ParamSpec(
            "period", "float", default=0.0,
            doc="cycle length in seconds (0 = one cycle over the whole run)",
            minimum=0.0,
        ),
        ParamSpec(
            "phase", "float", default=0.0,
            doc="cycle offset as a fraction of the period "
                "(0 = start at the peak, 0.5 = start at the trough)",
        ),
        ParamSpec(
            "shape", "str", default="sine",
            doc="'sine' (smooth wave) or 'square' (abrupt day/night switch)",
        ),
    ),
    description="Day/night load wave with configurable peak, trough, "
    "period, and phase (the SPRT-retraining scenario of Section IV)",
    traits={"trace_driven": True},
)
def _build_diurnal(ctx, peak_utilization=0.9, trough_utilization=0.1,
                   period=0.0, phase=0.0, shape="sine"):
    return _DiurnalModel(
        peak_utilization=peak_utilization,
        trough_utilization=trough_utilization,
        period=period,
        phase=phase,
        shape=shape,
    )


# --- flash-crowd: baseline plus correlated burst epochs --------------------


@dataclass(frozen=True)
class _FlashCrowdModel:
    base_utilization: float = 0.0
    burst_rate: float = 0.05
    burst_utilization: float = 0.95
    burst_duration: float = 2.0

    def build_trace(self, ctx: WorkloadContext) -> ThreadTrace:
        base = (
            self.base_utilization
            if self.base_utilization > 0.0
            else ctx.spec.utilization
        )
        n_slots = int(np.ceil(ctx.duration))
        utilization = np.full(n_slots, min(base, 1.0))
        # Burst epochs are a Poisson process over the run, drawn from a
        # stream decoupled from the thread synthesizer's so changing
        # the burst placement never reshuffles individual threads.
        rng = np.random.default_rng(9973 * ctx.seed + 77)
        t = 0.0
        while self.burst_rate > 0.0:
            t += float(rng.exponential(1.0 / self.burst_rate))
            if t >= ctx.duration:
                break
            first = int(t)
            last = min(n_slots, int(np.ceil(t + self.burst_duration)))
            # The surge is system-wide: every slot it spans jumps to the
            # burst level on all cores of every die at once — the
            # correlated load spike a per-core model cannot express.
            utilization[first:last] = np.maximum(
                utilization[first:last], self.burst_utilization
            )
        return _replay_profile(ctx, utilization, "flash-crowd")


@register_workload(
    "flash-crowd",
    params=(
        ParamSpec(
            "base_utilization", "float", default=0.0,
            doc="baseline utilization between bursts "
                "(0 = the benchmark's Table II average)",
            minimum=0.0, maximum=1.0,
        ),
        ParamSpec(
            "burst_rate", "float", default=0.05,
            doc="expected burst epochs per second (Poisson)",
            minimum=0.0,
        ),
        ParamSpec(
            "burst_utilization", "float", default=0.95,
            doc="utilization during a burst epoch",
            minimum=0.0, maximum=1.0,
        ),
        ParamSpec(
            "burst_duration", "float", default=2.0,
            doc="length of one burst epoch, seconds", minimum=0.0,
        ),
    ),
    description="Baseline load plus correlated multi-die burst epochs "
    "(flash-crowd surges that saturate the whole stack at once)",
    traits={"trace_driven": True},
)
def _build_flash_crowd(ctx, base_utilization=0.0, burst_rate=0.05,
                       burst_utilization=0.95, burst_duration=2.0):
    return _FlashCrowdModel(
        base_utilization=base_utilization,
        burst_rate=burst_rate,
        burst_utilization=burst_utilization,
        burst_duration=burst_duration,
    )
