"""Physical constants and the paper's published parameters.

Every number in this module is either a textbook physical constant or a
value printed in the paper (Table I, Table III, Section III/V). Values
are stored in SI units; the original unit from the paper is noted in the
comment next to each constant.

Grouping:

* :class:`MicrochannelConstants` — Table I (microchannel unit-cell model)
* :class:`StackConstants` — Table III (thermal model and floorplan)
* :class:`PowerConstants` — Section V (UltraSPARC T1 power numbers)
* :class:`ControlConstants` — Section IV (sampling, horizons, thresholds)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units

# --- silicon / copper bulk properties (textbook values) -----------------------

SILICON_CONDUCTIVITY = 148.0
"""Thermal conductivity of bulk silicon, W/(m*K)."""

SILICON_VOLUMETRIC_HEAT_CAPACITY = 1.659e6
"""Volumetric heat capacity of silicon, J/(m^3*K) (rho*c_p)."""

COPPER_CONDUCTIVITY = 400.0
"""Thermal conductivity of copper (TSV fill), W/(m*K)."""

WATER_PRANDTL_60C = 3.0
"""Prandtl number of water at ~60 degC (used by the developing-flow
Nusselt correlation; water Pr falls from ~7 at 20 degC to ~3 at 60 degC)."""

WATER_DYNAMIC_VISCOSITY_60C = 4.66e-4
"""Dynamic viscosity of water at ~60 degC, Pa*s."""


@dataclass(frozen=True)
class MicrochannelConstants:
    """Table I — parameters of the microchannel unit-cell model (Eq. 1-7)."""

    r_beol: float = units.k_mm2_per_w(5.333)
    """Thermal resistance of wiring levels (R_th-BEOL), K*m^2/W.
    Paper: 5.333 K*mm^2/W (Eq. 3 with t_B and k_BEOL below)."""

    t_beol: float = units.um(12.0)
    """BEOL (wiring stack) thickness t_B, m. Paper: 12 um."""

    k_beol: float = 2.25
    """Conductivity of wiring levels k_BEOL, W/(m*K). Paper: 2.25."""

    coolant_heat_capacity: float = 4183.0
    """Coolant (water) specific heat capacity c_p, J/(kg*K). Paper: 4183."""

    coolant_density: float = 998.0
    """Coolant (water) density rho, kg/m^3. Paper: 998."""

    flow_rate_min: float = units.litres_per_minute(0.1)
    """Lower end of the per-cavity volumetric flow-rate range, m^3/s.
    Paper: 0.1 l/min per cavity."""

    flow_rate_max: float = units.litres_per_minute(1.0)
    """Upper end of the per-cavity volumetric flow-rate range, m^3/s.
    Paper: 1 l/min per cavity."""

    heat_transfer_coefficient: float = 37132.0
    """Heat transfer coefficient h, W/(m^2*K). Paper: 37132.
    The paper treats h as constant (developed boundary layers); we anchor
    the developing-flow correlation so h(max flow) equals this value."""

    channel_width: float = units.um(50.0)
    """Microchannel width w_c, m. Paper: 50 um."""

    channel_height: float = units.um(100.0)
    """Microchannel height t_c, m. Paper: 100 um."""

    wall_thickness: float = units.um(50.0)
    """Channel wall thickness t_s, m. Paper: 50 um."""

    channel_pitch: float = units.um(100.0)
    """Channel pitch p, m. Paper: 100 um."""

    channels_per_cavity: int = 65
    """Number of microchannels per interlayer cavity. Paper: 65."""


@dataclass(frozen=True)
class StackConstants:
    """Table III — thermal model and floorplan parameters."""

    die_thickness: float = units.mm(0.15)
    """Thickness of one silicon die, m. Paper: 0.15 mm."""

    core_area: float = units.mm2(10.0)
    """Area of one UltraSPARC T1 core, m^2. Paper: 10 mm^2."""

    l2_area: float = units.mm2(19.0)
    """Area of one L2 cache bank, m^2. Paper: 19 mm^2."""

    layer_area: float = units.mm2(115.0)
    """Total area of each layer, m^2. Paper: 115 mm^2."""

    convection_capacitance: float = 140.0
    """Package (air path) convection capacitance, J/K. Paper: 140."""

    convection_resistance: float = 0.1
    """Package (air path) convection resistance, K/W. Paper: 0.1."""

    interlayer_thickness: float = units.mm(0.02)
    """Interlayer material thickness without channels, m. Paper: 0.02 mm."""

    interlayer_thickness_with_channels: float = units.mm(0.4)
    """Interlayer material thickness with channels, m. Paper: 0.4 mm."""

    interlayer_resistivity: float = 0.25
    """Interlayer material thermal resistivity without TSVs, m*K/W.
    Paper: 0.25 mK/W (i.e. conductivity 4 W/(m*K))."""

    tsv_count_per_interface: int = 128
    """TSVs in the crossbar connecting each two layers. Paper: 128."""

    tsv_side: float = units.um(50.0)
    """TSV footprint side length, m. Paper: 50 um x 50 um."""

    tsv_pitch: float = units.um(100.0)
    """Minimum TSV pitch, m. Paper: 100 um."""


@dataclass(frozen=True)
class PowerConstants:
    """Section V — UltraSPARC T1 power model values."""

    core_active_power: float = 3.0
    """Dynamic power of an active core, W. Paper: 3 W."""

    core_idle_power: float = 1.0
    """Dynamic power of an idle (but not sleeping) core, W.
    Not stated in the paper; ~1/3 of active is typical for T1-class
    fine-grain multithreaded cores (documented assumption, DESIGN.md)."""

    core_sleep_power: float = 0.02
    """Power of a core in the DPM sleep state, W. Paper: 0.02 W."""

    l2_power: float = 1.28
    """Power of one L2 cache bank, W. Paper: 1.28 W (CACTI 4.0)."""

    crossbar_peak_power: float = 1.5
    """Peak crossbar power, W, scaled by active cores and memory accesses.
    Not stated in the paper (documented assumption, DESIGN.md)."""

    dpm_timeout: float = 0.2
    """DPM fixed-timeout before a core is put to sleep, s. Paper: 200 ms."""


@dataclass(frozen=True)
class ControlConstants:
    """Section IV — controller and scheduler parameters."""

    sampling_interval: float = 0.1
    """Temperature sampling interval, s. Paper: 100 ms."""

    forecast_horizon: float = 0.5
    """Forecast lead time, s. Paper: 500 ms."""

    target_temperature: float = 80.0
    """Target operating temperature, degC. Paper: 80 degC."""

    hotspot_threshold: float = 85.0
    """Hot-spot / migration threshold temperature, degC. Paper: 85 degC."""

    hysteresis: float = 2.0
    """Down-switch hysteresis on the flow LUT, K. Paper: 2 degC."""

    pump_transition_time: float = 0.3
    """Pump flow-rate transition time, s. Paper: 250-300 ms."""

    spatial_gradient_threshold: float = 15.0
    """Spatial-gradient magnitude counted as 'large', K. Paper: 15 degC."""

    thermal_cycle_threshold: float = 20.0
    """Thermal-cycle magnitude counted as 'large', K. Paper: 20 degC."""


MICROCHANNEL = MicrochannelConstants()
"""Module-level singleton with Table I values."""

STACK = StackConstants()
"""Module-level singleton with Table III values."""

POWER = PowerConstants()
"""Module-level singleton with Section V power values."""

CONTROL = ControlConstants()
"""Module-level singleton with Section IV controller values."""
