"""Floorplans for the UltraSPARC T1-based 3D systems (paper Figure 1).

The paper stacks layers of 115 mm^2 each: one kind of layer carries the
eight 10 mm^2 cores, the other carries the four 19 mm^2 L2 cache banks
(one shared L2 per two cores). Both layer kinds have a central crossbar
block that hosts the 128 through-silicon vias (TSVs) connecting adjacent
tiers, plus "other" units (memory control, buffering) filling the rest.

Figure 1 is not published in machine-readable form, so the builders here
lay the blocks out to match every published area exactly (cores 10 mm^2,
L2 19 mm^2, layer 115 mm^2, central crossbar); see DESIGN.md section 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional

import numpy as np

from repro import units
from repro.constants import STACK
from repro.errors import GeometryError


class UnitKind(Enum):
    """Functional kind of a floorplan unit."""

    CORE = "core"
    L2 = "l2"
    CROSSBAR = "crossbar"
    MISC = "misc"


@dataclass(frozen=True)
class Unit:
    """A rectangular floorplan block.

    Coordinates follow the usual floorplan convention: ``(x, y)`` is the
    lower-left corner, the x axis points along the microchannel flow
    direction, and all lengths are in metres.
    """

    name: str
    kind: UnitKind
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.height <= 0.0:
            raise GeometryError(
                f"unit {self.name!r} has non-positive size "
                f"{self.width} x {self.height}"
            )
        if self.x < 0.0 or self.y < 0.0:
            raise GeometryError(f"unit {self.name!r} has negative origin")

    @property
    def area(self) -> float:
        """Block area in m^2."""
        return self.width * self.height

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge."""
        return self.y + self.height

    @property
    def center(self) -> tuple[float, float]:
        """Geometric centre ``(x, y)``."""
        return (self.x + 0.5 * self.width, self.y + 0.5 * self.height)

    def contains(self, x: float, y: float) -> bool:
        """Whether point ``(x, y)`` lies in the block (half-open box)."""
        return self.x <= x < self.x2 and self.y <= y < self.y2

    def overlaps(self, other: "Unit") -> bool:
        """Whether this block overlaps ``other`` with positive area."""
        return not (
            self.x2 <= other.x
            or other.x2 <= self.x
            or self.y2 <= other.y
            or other.y2 <= self.y
        )


class Floorplan:
    """A set of non-overlapping units tiling a rectangular die.

    Parameters
    ----------
    name:
        Human-readable layer name (e.g. ``"t1-cores"``).
    width, height:
        Die dimensions in metres.
    units:
        The blocks. They must not overlap; full coverage is checked to a
        relative tolerance because the paper's block areas tile the die
        exactly.
    """

    def __init__(
        self,
        name: str,
        width: float,
        height: float,
        units: list[Unit],
        coverage_rtol: float = 1.0e-6,
    ) -> None:
        if width <= 0.0 or height <= 0.0:
            raise GeometryError(f"floorplan {name!r} has non-positive dimensions")
        if not units:
            raise GeometryError(f"floorplan {name!r} has no units")
        self.name = name
        self.width = width
        self.height = height
        self.units = list(units)
        self._validate(coverage_rtol)
        self._by_name = {u.name: u for u in self.units}
        if len(self._by_name) != len(self.units):
            raise GeometryError(f"floorplan {name!r} has duplicate unit names")

    def _validate(self, coverage_rtol: float) -> None:
        for unit in self.units:
            if unit.x2 > self.width * (1 + coverage_rtol) or unit.y2 > self.height * (
                1 + coverage_rtol
            ):
                raise GeometryError(
                    f"unit {unit.name!r} extends outside floorplan {self.name!r}"
                )
        for i, a in enumerate(self.units):
            for b in self.units[i + 1 :]:
                if a.overlaps(b):
                    raise GeometryError(
                        f"units {a.name!r} and {b.name!r} overlap in {self.name!r}"
                    )
        covered = sum(u.area for u in self.units)
        total = self.width * self.height
        if not math.isclose(covered, total, rel_tol=1.0e-3):
            raise GeometryError(
                f"floorplan {self.name!r} covers {covered:.3e} of {total:.3e} m^2; "
                "units must tile the die"
            )

    # --- queries -----------------------------------------------------------

    @property
    def area(self) -> float:
        """Die area in m^2."""
        return self.width * self.height

    def unit(self, name: str) -> Unit:
        """Look a unit up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise GeometryError(f"no unit {name!r} in floorplan {self.name!r}")

    def units_of_kind(self, kind: UnitKind) -> list[Unit]:
        """All units of the given kind, in insertion order."""
        return [u for u in self.units if u.kind is kind]

    def unit_at(self, x: float, y: float) -> Optional[Unit]:
        """The unit containing point ``(x, y)``, or ``None`` if outside."""
        for unit in self.units:
            if unit.contains(x, y):
                return unit
        return None

    def __iter__(self) -> Iterator[Unit]:
        return iter(self.units)

    def __len__(self) -> int:
        return len(self.units)

    # --- rasterization -------------------------------------------------------

    def rasterize(self, nx: int, ny: int) -> np.ndarray:
        """Map an ``nx`` x ``ny`` grid of cells to unit indices.

        Each cell is assigned to the unit containing its centre. Returns
        an int array of shape ``(ny, nx)`` whose entries index
        ``self.units``. Cells whose centre falls in no unit (possible
        only through floating-point edge effects) are assigned to the
        nearest unit centre.
        """
        if nx <= 0 or ny <= 0:
            raise GeometryError("grid dimensions must be positive")
        cell_w = self.width / nx
        cell_h = self.height / ny
        xc = (np.arange(nx) + 0.5) * cell_w
        yc = (np.arange(ny) + 0.5) * cell_h
        xg = xc[None, :]
        yg = yc[:, None]
        out = np.full((ny, nx), -1, dtype=np.int64)
        # Units never overlap, so per-unit box masks are disjoint and
        # assignment order does not matter.
        for idx, unit in enumerate(self.units):
            inside = (
                (xg >= unit.x) & (xg < unit.x2) & (yg >= unit.y) & (yg < unit.y2)
            )
            out[inside] = idx
        orphan = out < 0
        if np.any(orphan):
            cx = np.array([u.center[0] for u in self.units])
            cy = np.array([u.center[1] for u in self.units])
            ox = np.broadcast_to(xg, (ny, nx))[orphan]
            oy = np.broadcast_to(yg, (ny, nx))[orphan]
            dists = (ox[:, None] - cx[None, :]) ** 2 + (oy[:, None] - cy[None, :]) ** 2
            out[orphan] = np.argmin(dists, axis=1)
        return out

    def area_fractions(self, nx: int, ny: int) -> np.ndarray:
        """Per-unit fraction of grid cells assigned by :meth:`rasterize`.

        Useful to distribute a unit's power over its cells: a unit with
        power P spreads ``P / count`` over each of its ``count`` cells.
        """
        raster = self.rasterize(nx, ny)
        counts = np.bincount(raster.ravel(), minlength=len(self.units))
        return counts / float(nx * ny)


# --- UltraSPARC T1-like layer builders (Figure 1) ------------------------------


def _chip_side() -> float:
    """Side length of the square 115 mm^2 die."""
    return math.sqrt(STACK.layer_area)


def t1_core_layer(name: str = "t1-cores", core_offset: int = 0) -> Floorplan:
    """Build the core layer: 8 cores, central crossbar, misc blocks.

    Layout (matching all published areas; see DESIGN.md section 8)::

        +------+------+------+------+   4 cores, 10 mm^2 each
        | c0   | c1   | c2   | c3   |
        +------+---+-------+--+-----+
        | misc_l   | XBAR     | misc_r |  central band (crossbar holds TSVs)
        +------+---+-------+--+-----+
        | c4   | c5   | c6   | c7   |   4 cores, 10 mm^2 each
        +------+------+------+------+

    ``core_offset`` shifts the core numbering, so the 4-layer (16-core)
    system can name its second core layer's cores ``core8..core15``.
    """
    side = _chip_side()
    core_w = side / 4.0
    core_h = STACK.core_area / core_w
    band_h = side - 2.0 * core_h
    if band_h <= 0.0:
        raise GeometryError("core rows exceed die height")
    xbar_w = side / 2.0
    xbar_x = (side - xbar_w) / 2.0

    blocks: list[Unit] = []
    for i in range(4):
        blocks.append(
            Unit(f"core{core_offset + i}", UnitKind.CORE, i * core_w, 0.0, core_w, core_h)
        )
    for i in range(4):
        blocks.append(
            Unit(
                f"core{core_offset + 4 + i}",
                UnitKind.CORE,
                i * core_w,
                core_h + band_h,
                core_w,
                core_h,
            )
        )
    blocks.append(Unit("misc_l", UnitKind.MISC, 0.0, core_h, xbar_x, band_h))
    blocks.append(Unit("xbar", UnitKind.CROSSBAR, xbar_x, core_h, xbar_w, band_h))
    blocks.append(
        Unit("misc_r", UnitKind.MISC, xbar_x + xbar_w, core_h, side - xbar_x - xbar_w, band_h)
    )
    return Floorplan(name, side, side, blocks)


def t1_cache_layer(name: str = "t1-caches", l2_offset: int = 0) -> Floorplan:
    """Build the cache layer: 4 L2 banks, central crossbar, misc blocks.

    Layout::

        +-----------+-----------+      2 L2 banks, 19 mm^2 each
        |   l2_0    |   l2_1    |
        +------+----+-------+---+
        | misc_l |  XBAR  | misc_r |   central band (crossbar holds TSVs)
        +------+----+-------+---+
        |   l2_2    |   l2_3    |      2 L2 banks, 19 mm^2 each
        +-----------+-----------+
    """
    side = _chip_side()
    l2_w = side / 2.0
    l2_h = STACK.l2_area / l2_w
    band_h = side - 2.0 * l2_h
    if band_h <= 0.0:
        raise GeometryError("L2 rows exceed die height")
    xbar_w = side / 2.0
    xbar_x = (side - xbar_w) / 2.0

    blocks: list[Unit] = []
    for i in range(2):
        blocks.append(Unit(f"l2_{l2_offset + i}", UnitKind.L2, i * l2_w, 0.0, l2_w, l2_h))
    for i in range(2):
        blocks.append(
            Unit(f"l2_{l2_offset + 2 + i}", UnitKind.L2, i * l2_w, l2_h + band_h, l2_w, l2_h)
        )
    blocks.append(Unit("misc_l", UnitKind.MISC, 0.0, l2_h, xbar_x, band_h))
    blocks.append(Unit("xbar", UnitKind.CROSSBAR, xbar_x, l2_h, xbar_w, band_h))
    blocks.append(
        Unit("misc_r", UnitKind.MISC, xbar_x + xbar_w, l2_h, side - xbar_x - xbar_w, band_h)
    )
    return Floorplan(name, side, side, blocks)
