"""HotSpot floorplan (.flp) interoperability.

The paper builds on HotSpot v4.2 and its floorplan format; this module
reads and writes that format so our floorplans can be cross-checked
against HotSpot itself (or floorplans from other HotSpot-based work can
be simulated here).

The `.flp` format is line-oriented::

    # comment
    <unit-name>\t<width>\t<height>\t<left-x>\t<bottom-y>

with all dimensions in metres (HotSpot convention).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import GeometryError
from repro.geometry.floorplan import Floorplan, Unit, UnitKind


def _kind_from_name(name: str) -> UnitKind:
    """Infer the unit kind from a HotSpot unit name.

    HotSpot floorplans carry no type column; the common convention in
    published T1/Alpha floorplans names cores ``core*``/``cpu*``,
    caches ``l2*``/``cache*``, and the crossbar ``xbar*``/``ccx*``.
    Everything else is treated as MISC.
    """
    lowered = name.lower()
    if lowered.startswith(("core", "cpu", "sparc")):
        return UnitKind.CORE
    if lowered.startswith(("l2", "cache", "l3")):
        return UnitKind.L2
    if lowered.startswith(("xbar", "ccx", "crossbar")):
        return UnitKind.CROSSBAR
    return UnitKind.MISC


def write_flp(floorplan: Floorplan, path: Union[str, Path]) -> None:
    """Write a floorplan in HotSpot .flp format."""
    path = Path(path)
    lines = [
        f"# Floorplan {floorplan.name}: "
        f"{floorplan.width:.6e} x {floorplan.height:.6e} m",
        "# <unit-name>\t<width>\t<height>\t<left-x>\t<bottom-y>",
    ]
    for unit in floorplan:
        # Full precision: coarser formats can round adjacent blocks
        # into sub-nanometre overlaps that fail re-validation on read.
        lines.append(
            f"{unit.name}\t{unit.width:.12e}\t{unit.height:.12e}"
            f"\t{unit.x:.12e}\t{unit.y:.12e}"
        )
    path.write_text("\n".join(lines) + "\n")


def read_flp(path: Union[str, Path], name: str | None = None) -> Floorplan:
    """Read a HotSpot .flp floorplan.

    The die outline is the bounding box of the units; unit kinds are
    inferred from names (see :func:`_kind_from_name`). Raises
    :class:`GeometryError` on malformed lines or non-tiling floorplans
    (the same validation our native floorplans get).
    """
    path = Path(path)
    units: list[Unit] = []
    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 5:
            raise GeometryError(
                f"{path.name}:{line_no}: expected 5 fields, got {len(fields)}"
            )
        unit_name = fields[0]
        try:
            width, height, x, y = (float(v) for v in fields[1:5])
        except ValueError as exc:
            raise GeometryError(f"{path.name}:{line_no}: bad number: {exc}")
        units.append(Unit(unit_name, _kind_from_name(unit_name), x, y, width, height))
    if not units:
        raise GeometryError(f"{path.name}: no units found")
    outline_w = max(u.x2 for u in units)
    outline_h = max(u.y2 for u in units)
    return Floorplan(name or path.stem, outline_w, outline_h, units)
