"""3D stack descriptions (dies, cavities, channel counts).

A stack is an alternating sequence, bottom to top::

    cavity0 | die0 | cavity1 | die1 | ... | dieN-1 | cavityN

matching the paper's "there are cooling layers on the very top and the
bottom of the stacks": an N-die stack has N+1 cavities, so the 2-layer
system has 3 cavities (195 channels / 65 per cavity) and the 4-layer
system has 5 cavities (325 channels).

For air-cooled variants the cavities degenerate to thin interlayer
material (0.02 mm, Table III) and a conventional package (heat spreader
plus sink with the Table III convection resistance/capacitance) is
attached on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.constants import STACK
from repro.errors import GeometryError
from repro.geometry.floorplan import Floorplan, UnitKind, t1_cache_layer, t1_core_layer


class CoolingKind(Enum):
    """How the stack is cooled."""

    LIQUID = "liquid"
    AIR = "air"


@dataclass(frozen=True)
class Die:
    """One active silicon tier of the stack.

    ``hosts_cores`` marks layers carrying cores (thermal sensors live on
    cores); the cache layers carry L2 banks instead.
    """

    floorplan: Floorplan
    thickness: float = STACK.die_thickness

    @property
    def hosts_cores(self) -> bool:
        """Whether this die carries any core units."""
        return bool(self.floorplan.units_of_kind(UnitKind.CORE))


@dataclass(frozen=True)
class Stack3D:
    """A complete 3D stack: dies plus cooling configuration.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"2-layer"``.
    dies:
        Bottom-to-top active tiers.
    cooling:
        Liquid (interlayer microchannels) or air (conventional package).
    """

    name: str
    dies: tuple[Die, ...]
    cooling: CoolingKind

    def __post_init__(self) -> None:
        if not self.dies:
            raise GeometryError("a stack needs at least one die")
        widths = {d.floorplan.width for d in self.dies}
        heights = {d.floorplan.height for d in self.dies}
        if len(widths) != 1 or len(heights) != 1:
            raise GeometryError("all dies in a stack must have identical outlines")

    @property
    def n_dies(self) -> int:
        """Number of active tiers."""
        return len(self.dies)

    @property
    def n_cavities(self) -> int:
        """Number of coolant cavities (N+1 for N dies, liquid cooling only)."""
        if self.cooling is CoolingKind.AIR:
            return 0
        return self.n_dies + 1

    @property
    def n_channels(self) -> int:
        """Total number of microchannels in the stack.

        Paper: 65 per cavity, hence 195 (2-layer) and 325 (4-layer).
        """
        from repro.constants import MICROCHANNEL

        return self.n_cavities * MICROCHANNEL.channels_per_cavity

    @property
    def width(self) -> float:
        """Die outline width (x, the channel flow direction), m."""
        return self.dies[0].floorplan.width

    @property
    def height(self) -> float:
        """Die outline height (y), m."""
        return self.dies[0].floorplan.height

    def core_names(self) -> list[str]:
        """Names of every core unit, bottom die first."""
        names: list[str] = []
        for die in self.dies:
            for unit in die.floorplan.units_of_kind(UnitKind.CORE):
                names.append(unit.name)
        return names

    def l2_names(self) -> list[str]:
        """Names of every L2 unit, bottom die first."""
        names: list[str] = []
        for die in self.dies:
            for unit in die.floorplan.units_of_kind(UnitKind.L2):
                names.append(unit.name)
        return names


def build_stack(n_layers: int, cooling: CoolingKind = CoolingKind.LIQUID) -> Stack3D:
    """Build the paper's 2- or 4-layer UltraSPARC T1-based stack.

    The paper separates cores and caches onto different tiers ("a
    preferred design scenario for shortening wires"): the 2-layer system
    is (cores, caches) and the 4-layer system is (cores, caches, cores,
    caches), bottom to top, for 8 and 16 cores respectively.

    Parameters
    ----------
    n_layers:
        2 or 4.
    cooling:
        Interlayer liquid cooling (default) or a conventional air package.
    """
    if n_layers == 2:
        dies = (
            Die(t1_core_layer("t1-cores-0", core_offset=0)),
            Die(t1_cache_layer("t1-caches-0", l2_offset=0)),
        )
    elif n_layers == 4:
        dies = (
            Die(t1_core_layer("t1-cores-0", core_offset=0)),
            Die(t1_cache_layer("t1-caches-0", l2_offset=0)),
            Die(t1_core_layer("t1-cores-1", core_offset=8)),
            Die(t1_cache_layer("t1-caches-1", l2_offset=4)),
        )
    else:
        raise GeometryError(f"only 2- and 4-layer stacks are defined, got {n_layers}")
    return Stack3D(name=f"{n_layers}-layer", dies=dies, cooling=cooling)
