"""Chip geometry: floorplans (Figure 1) and 3D stack descriptions."""

from repro.geometry.floorplan import (
    Floorplan,
    Unit,
    UnitKind,
    t1_cache_layer,
    t1_core_layer,
)
from repro.geometry.stack import CoolingKind, Die, Stack3D, build_stack

__all__ = [
    "Floorplan",
    "Unit",
    "UnitKind",
    "t1_core_layer",
    "t1_cache_layer",
    "CoolingKind",
    "Die",
    "Stack3D",
    "build_stack",
]
