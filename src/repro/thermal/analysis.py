"""Transient analysis utilities: step responses and time constants.

The paper's controller design hinges on a timing argument: "the thermal
time constant on a 3D system like ours is typically less than 100 ms"
while the pump needs 250-300 ms to change the flow, so a reactive
policy is always late and the controller must forecast. These utilities
measure that time constant from the model, so the claim is checkable
(and stays true if a user changes the stack).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.thermal.rc_network import RCNetwork
from repro.thermal.solver import SteadyStateSolver, TransientSolver


@dataclass(frozen=True)
class StepResponse:
    """A recorded power-step response.

    Attributes
    ----------
    times:
        Sample times from the step, s.
    tmax:
        Maximum die temperature at each sample, degC.
    t_initial, t_final:
        The starting and asymptotic maximum temperatures, degC.
    """

    times: np.ndarray
    tmax: np.ndarray
    t_initial: float
    t_final: float

    def settling_fraction(self) -> np.ndarray:
        """Normalized response: 0 at the step, 1 at the new steady state."""
        span = self.t_final - self.t_initial
        if abs(span) < 1.0e-12:
            return np.ones_like(self.tmax)
        return (self.tmax - self.t_initial) / span

    def time_constant(self) -> float:
        """First-order time constant: time to reach 63.2 % of the step.

        Interpolates between samples; returns ``nan`` when the response
        never reaches 63.2 % within the recorded window.
        """
        fraction = self.settling_fraction()
        target = 1.0 - np.exp(-1.0)
        above = np.nonzero(fraction >= target)[0]
        if len(above) == 0:
            return float("nan")
        i = above[0]
        if i == 0:
            return float(self.times[0])
        f0, f1 = fraction[i - 1], fraction[i]
        t0, t1 = self.times[i - 1], self.times[i]
        if f1 == f0:
            return float(t1)
        return float(t0 + (target - f0) * (t1 - t0) / (f1 - f0))

    def settling_time(self, tolerance: float = 0.05) -> float:
        """Time after which the response stays within ``tolerance`` of
        the final value (2 % or 5 % settling time in control terms)."""
        fraction = self.settling_fraction()
        outside = np.nonzero(np.abs(fraction - 1.0) > tolerance)[0]
        if len(outside) == 0:
            return float(self.times[0])
        last = outside[-1]
        if last + 1 >= len(self.times):
            return float("nan")
        return float(self.times[last + 1])


def step_response(
    network: RCNetwork,
    power: np.ndarray,
    dt: float = 0.005,
    max_time: float = 5.0,
) -> StepResponse:
    """Record the maximum-temperature response to a power step.

    Starts from the zero-power steady state, applies ``power`` at t=0,
    and integrates until ``max_time`` with step ``dt`` (default 5 ms,
    fine enough to resolve a <100 ms constant).
    """
    if dt <= 0.0 or max_time <= dt:
        raise SolverError("need 0 < dt < max_time")
    grid = network.grid
    base = SteadyStateSolver(network).solve(np.zeros(network.n_nodes))
    final = SteadyStateSolver(network).solve(np.asarray(power, dtype=float))
    solver = TransientSolver(network, dt)
    n_steps = int(round(max_time / dt))
    times = np.arange(1, n_steps + 1) * dt
    tmax = np.empty(n_steps)
    state = base
    for k in range(n_steps):
        state = solver.step(state, power)
        tmax[k] = grid.max_die_temperature(state)
    return StepResponse(
        times=times,
        tmax=tmax,
        t_initial=grid.max_die_temperature(base),
        t_final=grid.max_die_temperature(final),
    )
