"""The paper's analytic unit-cell junction model (Eqs. 1-7, Figure 2).

The junction temperature rise over the coolant inlet is the sum of
three components::

    dTj = dTcond + dTheat + dTconv                     (Eq. 1)

* ``dTcond = R_th-BEOL * q1`` — conduction through the wiring levels
  (Eqs. 2-3), flow independent;
* ``dTheat`` — sensible heating of the coolant along the channel
  (Eqs. 4-5); for non-uniform power it accumulates position by
  position: ``dTheat(n+1) = sum_i<=n dTheat(i)``;
* ``dTconv = (q1 + q2) / h_eff`` — the convective film drop (Eqs. 6-7).

This module is used to validate the grid RC network (both must agree
for uniform power) and to provide the fast characterization behind the
flow look-up table of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MICROCHANNEL
from repro.errors import ModelError
from repro.microchannel.model import MicrochannelModel


@dataclass(frozen=True)
class UnitCellResult:
    """Breakdown of the junction temperature rise at one position.

    All values in kelvin above the coolant inlet temperature.
    """

    dt_cond: float
    dt_heat: float
    dt_conv: float

    @property
    def dt_junction(self) -> float:
        """Eq. 1: total junction rise above inlet."""
        return self.dt_cond + self.dt_heat + self.dt_conv


@dataclass(frozen=True)
class AnalyticUnitCell:
    """Eq. 1-7 evaluated for a cavity fed at a given per-cavity flow.

    Parameters
    ----------
    model:
        Microchannel heat-transfer model (geometry + coolant + h(Vdot)).
    resistance_scale:
        The documented calibration scale (DESIGN.md §5) applied to the
        conduction and convection resistances, matching the grid model.
    """

    model: MicrochannelModel = field(default_factory=MicrochannelModel)
    resistance_scale: float = 1.0

    def dt_cond(self, q1: float) -> float:
        """Eq. 2: conduction rise through the BEOL for heat flux q1 (W/m^2)."""
        if q1 < 0.0:
            raise ModelError("heat flux must be non-negative")
        return MICROCHANNEL.r_beol * self.resistance_scale * q1

    def dt_conv(self, q1: float, q2: float, cavity_flow: float) -> float:
        """Eq. 6: convective rise for fluxes from both adjacent layers."""
        if q1 < 0.0 or q2 < 0.0:
            raise ModelError("heat fluxes must be non-negative")
        r_conv = self.model.convective_resistance_area(cavity_flow)
        return (q1 + q2) * r_conv * self.resistance_scale

    def dt_heat_uniform(self, q1: float, q2: float, heater_area: float, cavity_flow: float) -> float:
        """Eq. 4-5: sensible-heat rise for uniform power dissipation.

        ``dTheat = (q1 + q2) * R_th-heat`` with ``R_th-heat =
        A_heater / (c_p * rho * Vdot)`` (an area-referred resistance,
        K*m^2/W): the rise of the coolant at the outlet after absorbing
        ``(q1 + q2) * A_heater`` watts.
        """
        r_heat = self.model.r_heat(heater_area, cavity_flow)
        return (q1 + q2) * r_heat

    def junction_rise(self, q1: float, q2: float, heater_area: float, cavity_flow: float) -> UnitCellResult:
        """Eq. 1 at the channel outlet (worst position) for uniform power."""
        return UnitCellResult(
            dt_cond=self.dt_cond(q1),
            dt_heat=self.dt_heat_uniform(q1, q2, heater_area, cavity_flow),
            dt_conv=self.dt_conv(q1, q2, cavity_flow),
        )

    def heat_profile(self, fluxes: np.ndarray, segment_area: float, cavity_flow: float) -> np.ndarray:
        """Iterative sensible-heat accumulation along the channel.

        Implements the paper's general case: ``dTheat(n+1) =
        sum_{i<=n} dTheat(i)``, where position i absorbs
        ``fluxes[i] * segment_area`` watts into the cavity flow.

        Parameters
        ----------
        fluxes:
            Combined heat flux (q1 + q2, W/m^2) entering the coolant at
            each position along the channel, inlet first.
        segment_area:
            Heater area of one position, m^2.
        cavity_flow:
            Per-cavity volumetric flow rate, m^3/s.

        Returns
        -------
        The coolant temperature rise above inlet at each position.
        """
        fluxes = np.asarray(fluxes, dtype=float)
        if fluxes.ndim != 1:
            raise ModelError("fluxes must be one-dimensional")
        if np.any(fluxes < 0.0):
            raise ModelError("heat fluxes must be non-negative")
        if cavity_flow <= 0.0:
            raise ModelError("the heat profile requires a positive flow")
        capacity_rate = self.model.cavity_heat_capacity_rate(cavity_flow)
        per_position = fluxes * segment_area / capacity_rate
        # The coolant at position n has absorbed the heat of every
        # upstream position (cumulative sum, exclusive of downstream).
        return np.cumsum(per_position)
