"""Conventional (air-cooled) package model.

For the air-cooled comparison system the paper uses "the default
characteristics of a modern CPU package in HotSpot": the stack conducts
through a thermal interface material (TIM) into a copper heat spreader,
then into a finned heat sink that convects to ambient. Table III gives
the convection resistance (0.1 K/W) and capacitance (140 J/K); the
remaining values follow HotSpot v4.2 defaults (45 degC ambient).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.constants import STACK
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AirPackage:
    """Lumped TIM + spreader + sink package on top of the stack.

    Attributes
    ----------
    tim_resistance_area:
        Per-area TIM resistance between top die and spreader, K*m^2/W.
    spreader_resistance:
        Spreader-to-sink lumped resistance, K/W.
    spreader_capacitance:
        Spreader thermal capacitance, J/K.
    sink_resistance:
        Sink-to-ambient convection resistance, K/W (Table III: 0.1).
    sink_capacitance:
        Sink/convection capacitance, J/K (Table III: 140).
    ambient:
        Ambient air temperature, degC (HotSpot default: 45).
    """

    tim_resistance_area: float = units.k_mm2_per_w(20.0)
    spreader_resistance: float = 0.05
    spreader_capacitance: float = 40.0
    sink_resistance: float = STACK.convection_resistance
    sink_capacitance: float = STACK.convection_capacitance
    ambient: float = 45.0

    def __post_init__(self) -> None:
        if self.tim_resistance_area <= 0.0:
            raise ConfigurationError("TIM resistance must be positive")
        if self.spreader_resistance <= 0.0 or self.sink_resistance <= 0.0:
            raise ConfigurationError("package resistances must be positive")
        if self.spreader_capacitance <= 0.0 or self.sink_capacitance <= 0.0:
            raise ConfigurationError("package capacitances must be positive")
