"""Cross-validation of the grid RC model against the unit-cell model.

The paper validates its model parameters by finite-element simulation;
we cannot rerun that, but we *can* require our two independent
implementations — the analytic unit-cell equations (Eqs. 1-7) and the
assembled grid RC network — to agree wherever the unit cell's
assumptions hold (uniform heat flux, isothermal channel walls,
developed flow). This module produces that comparison table; the test
suite pins the agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.stack import build_stack
from repro.microchannel.geometry import ChannelGeometry
from repro.microchannel.model import MicrochannelModel
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import SteadyStateSolver


@dataclass(frozen=True)
class ValidationRow:
    """One operating point of the grid-vs-analytic comparison.

    Temperatures are coolant-outlet rises above the inlet, K.
    """

    flow_per_cavity: float
    heat_flux: float
    analytic_outlet_rise: float
    grid_outlet_rise: float

    @property
    def relative_error(self) -> float:
        """Grid vs analytic, relative to the analytic value."""
        if abs(self.analytic_outlet_rise) < 1.0e-12:
            return 0.0
        return (
            self.grid_outlet_rise - self.analytic_outlet_rise
        ) / self.analytic_outlet_rise


def sensible_heat_validation(
    flows: tuple[float, ...] = (3.3e-6, 6.7e-6, 1.0e-5, 1.67e-5),
    heat_flux: float = 2.0e5,
    nx: int = 12,
    ny: int = 12,
) -> list[ValidationRow]:
    """Compare the coolant outlet rise: grid network vs Eq. 4/5.

    Uniform heat flux is injected over the whole bottom die; the
    analytic sensible-heat model predicts the mean coolant outlet rise
    from the total absorbed power and the capacity rate. The grid
    model computes the same quantity through per-cell advection.
    """
    stack = build_stack(2)
    grid = ThermalGrid(stack, nx=nx, ny=ny)
    area = stack.width * stack.height
    total_power = heat_flux * area
    model = MicrochannelModel(
        geometry=ChannelGeometry(length=stack.width), die_height=stack.height
    )
    rows = []
    for flow in flows:
        net = build_network(grid, ThermalParams(), cavity_flows=[flow])
        power = np.zeros(net.n_nodes)
        die_nodes = grid.slab_nodes(grid.die_slab_index(0)).ravel()
        power[die_nodes] = total_power / die_nodes.size
        temps = SteadyStateSolver(net).solve(power)

        outlet_nodes = np.concatenate(
            [grid.slab_nodes(s)[:, -1] for s in grid.cavity_slab_indices()]
        )
        grid_rise = float(temps[outlet_nodes].mean()) - ThermalParams().inlet_temperature

        # All power is absorbed by n_cavities parallel flows: the mean
        # outlet rise follows from the aggregate capacity rate.
        capacity_rate = (
            model.cavity_heat_capacity_rate(flow) * stack.n_cavities
        )
        analytic_rise = total_power / capacity_rate

        rows.append(
            ValidationRow(
                flow_per_cavity=flow,
                heat_flux=heat_flux,
                analytic_outlet_rise=analytic_rise,
                grid_outlet_rise=grid_rise,
            )
        )
    return rows


def max_relative_error(rows: list[ValidationRow]) -> float:
    """Worst-case |relative error| across a validation sweep."""
    if not rows:
        return 0.0
    return max(abs(r.relative_error) for r in rows)
