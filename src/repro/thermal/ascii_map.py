"""ASCII rendering of die temperature fields.

A dependency-free way to *see* the thermal maps the policies act on
(hot downstream edges, the cool crossbar with its TSVs, sleeping cores
under DPM) in a terminal; used by the examples and handy in a REPL.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.thermal.grid import ThermalGrid

#: Glyph ramp, coolest to hottest.
_RAMP = " .:-=+*#%@"


def render_field(
    field: np.ndarray,
    t_min: float | None = None,
    t_max: float | None = None,
) -> str:
    """Render a 2D temperature field as ASCII art.

    Parameters
    ----------
    field:
        ``(ny, nx)`` temperatures; row 0 is the die's bottom edge and is
        printed last (so the picture matches floorplan coordinates).
    t_min, t_max:
        Color-scale anchors; default to the field's own range. Pass a
        common pair to compare several maps on one scale.
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ConfigurationError("field must be 2-D")
    lo = float(field.min()) if t_min is None else t_min
    hi = float(field.max()) if t_max is None else t_max
    if hi <= lo:
        hi = lo + 1.0e-9
    normalized = np.clip((field - lo) / (hi - lo), 0.0, 1.0)
    indices = (normalized * (len(_RAMP) - 1)).round().astype(int)
    lines = []
    for j in range(field.shape[0] - 1, -1, -1):
        lines.append("".join(_RAMP[i] for i in indices[j]))
    lines.append(f"[{lo:.1f} degC '{_RAMP[0]}' ... '{_RAMP[-1]}' {hi:.1f} degC]")
    return "\n".join(lines)


def render_die(
    grid: ThermalGrid,
    temperatures: np.ndarray,
    die_index: int,
    t_min: float | None = None,
    t_max: float | None = None,
) -> str:
    """Render one die of a solved temperature vector."""
    field = grid.die_temperature_field(np.asarray(temperatures, dtype=float), die_index)
    name = grid.stack.dies[die_index].floorplan.name
    header = f"--- die {die_index} ({name}), coolant flows left->right ---"
    return header + "\n" + render_field(field, t_min=t_min, t_max=t_max)


def render_stack(grid: ThermalGrid, temperatures: np.ndarray) -> str:
    """Render every die on a common temperature scale."""
    temps = np.asarray(temperatures, dtype=float)
    fields = [
        grid.die_temperature_field(temps, d) for d in range(grid.stack.n_dies)
    ]
    lo = min(float(f.min()) for f in fields)
    hi = max(float(f.max()) for f in fields)
    return "\n\n".join(
        render_die(grid, temps, d, t_min=lo, t_max=hi)
        for d in range(grid.stack.n_dies)
    )
