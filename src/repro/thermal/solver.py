"""Steady-state and transient solvers for the thermal RC network.

The network ODE is ``C dT/dt = -G T + P + b`` with diagonal C. The
transient solver uses backward Euler::

    (C/dt + G) T_{n+1} = (C/dt) T_n + P + b

which is unconditionally stable (the paper steps at the 100 ms sampling
interval, comparable to the stack's thermal time constant). The system
matrix depends only on (G, dt), so one sparse LU factorization per pump
setting is cached and each step costs a pair of triangular solves.
"""

from __future__ import annotations

import weakref
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SolverError
from repro.thermal.rc_network import RCNetwork

_factorizations = 0
"""Monotonic count of sparse LU factorizations this process has
performed (steady + transient). Factorizing is the expensive,
cacheable step — a batched cohort campaign must hit each distinct
(network, dt) system exactly once, and ``benchmarks/bench_hotpath.py``
plus the CI perf job gate on deltas of this counter rather than on
wall-clock."""


def factorization_count() -> int:
    """LU factorizations performed so far in this process.

    Monotonic; callers measure a campaign by snapshotting before and
    after (there is deliberately no reset — concurrent measurement
    scopes would clobber each other's baselines)."""
    return _factorizations


def _count_factorization() -> None:
    global _factorizations
    _factorizations += 1


class SteadyStateSolver:
    """Solves ``G T = P + b`` for the equilibrium temperature field.

    ``lu`` lets :func:`steady_solver_for` reuse a previously computed
    factorization of the same network; leave it ``None`` to factorize.
    """

    def __init__(self, network: RCNetwork, lu: Optional[spla.SuperLU] = None) -> None:
        self.network = network
        if lu is None:
            try:
                lu = spla.splu(network.conductance.tocsc())
            except RuntimeError as exc:
                raise SolverError(f"steady-state factorization failed: {exc}") from exc
            _count_factorization()
        self._lu = lu

    def solve(self, power: np.ndarray) -> np.ndarray:
        """Equilibrium temperatures for a per-node power injection (W)."""
        power = np.asarray(power, dtype=float)
        if power.shape != (self.network.n_nodes,):
            raise SolverError(
                f"power vector has shape {power.shape}, expected ({self.network.n_nodes},)"
            )
        temps = self._lu.solve(power + self.network.boundary)
        if not np.all(np.isfinite(temps)):
            raise SolverError("steady-state solve produced non-finite temperatures")
        return temps

    def solve_many(self, powers: np.ndarray) -> np.ndarray:
        """Equilibrium fields for many injections at once.

        ``powers`` has shape ``(n_nodes, k)``; returns the same shape.
        One multi-RHS triangular solve; columns agree with separate
        :meth:`solve` calls to within LU roundoff (~1e-14 K — SuperLU
        uses blocked kernels for multiple right-hand sides).
        """
        powers = np.asarray(powers, dtype=float)
        n = self.network.n_nodes
        if powers.ndim != 2 or powers.shape[0] != n:
            raise SolverError(
                f"power matrix has shape {powers.shape}, expected ({n}, k)"
            )
        temps = self._lu.solve(powers + self.network.boundary[:, None])
        if not np.all(np.isfinite(temps)):
            raise SolverError("steady-state solve produced non-finite temperatures")
        return temps


class TransientSolver:
    """Backward-Euler transient integrator with a cached factorization.

    Parameters
    ----------
    network:
        The assembled RC network.
    dt:
        Time step in seconds (the paper's 100 ms sampling interval by
        default at the call sites).
    """

    def __init__(self, network: RCNetwork, dt: float) -> None:
        if dt <= 0.0:
            raise SolverError("time step must be positive")
        self.network = network
        self.dt = dt
        c_over_dt = network.capacitance / dt
        if np.any(c_over_dt < 0.0):
            raise SolverError("negative capacitance in network")
        system = network.conductance + sp.diags(c_over_dt)
        try:
            self._lu = spla.splu(system.tocsc())
        except RuntimeError as exc:
            raise SolverError(f"transient factorization failed: {exc}") from exc
        _count_factorization()
        self._c_over_dt = c_over_dt

    def step(self, temperatures: np.ndarray, power: np.ndarray) -> np.ndarray:
        """Advance one time step; returns the new temperature vector."""
        temperatures = np.asarray(temperatures, dtype=float)
        power = np.asarray(power, dtype=float)
        n = self.network.n_nodes
        if temperatures.shape != (n,) or power.shape != (n,):
            raise SolverError("temperature/power vector shape mismatch")
        rhs = self._c_over_dt * temperatures + power + self.network.boundary
        out = self._lu.solve(rhs)
        if not np.all(np.isfinite(out)):
            raise SolverError("transient step produced non-finite temperatures")
        return out

    def step_many(self, temperatures: np.ndarray, powers: np.ndarray) -> np.ndarray:
        """Advance many independent states one step at once.

        ``temperatures`` and ``powers`` have shape ``(n_nodes, k)`` —
        one column per independent run sharing this factorization;
        returns the same shape. One multi-RHS triangular solve;
        columns agree with separate :meth:`step` calls to within LU
        roundoff (~1e-14 K — SuperLU uses blocked kernels for multiple
        right-hand sides), which is why the cohort runner's bitwise
        default steps per column and this path is opt-in.
        """
        temperatures = np.asarray(temperatures, dtype=float)
        powers = np.asarray(powers, dtype=float)
        n = self.network.n_nodes
        if (
            temperatures.ndim != 2
            or temperatures.shape[0] != n
            or powers.shape != temperatures.shape
        ):
            raise SolverError(
                f"temperature/power matrix shape mismatch: "
                f"{temperatures.shape} vs {powers.shape}, expected ({n}, k)"
            )
        rhs = (
            self._c_over_dt[:, None] * temperatures
            + powers
            + self.network.boundary[:, None]
        )
        out = self._lu.solve(rhs)
        if not np.all(np.isfinite(out)):
            raise SolverError("transient step produced non-finite temperatures")
        return out

    def run(
        self,
        temperatures: np.ndarray,
        power: np.ndarray,
        n_steps: int,
    ) -> np.ndarray:
        """Advance ``n_steps`` with constant power; returns the final state."""
        if n_steps < 0:
            raise SolverError("n_steps must be non-negative")
        state = np.asarray(temperatures, dtype=float)
        for _ in range(n_steps):
            state = self.step(state, power)
        return state


_steady_lu_memo: "weakref.WeakKeyDictionary[RCNetwork, spla.SuperLU]" = (
    weakref.WeakKeyDictionary()
)
"""LU factorizations keyed weakly by their network. Entries vanish when
the caller drops the network, so the memo never pins networks alive
(the old ``id(network)``-keyed LRU kept up to 8 networks and their
factorizations reachable indefinitely, and id reuse could alias two
different networks). The cached ``SuperLU`` object holds no reference
back to the network, so there is no cycle to collect."""


def steady_solver_for(network: RCNetwork) -> SteadyStateSolver:
    """A cached :class:`SteadyStateSolver` for a network.

    Callers that own a :class:`~repro.sim.system.ThermalSystem` should
    prefer its ``steady_solver`` cache; this memo serves callers that
    only hold a bare network, so repeated :func:`initial_state` calls
    reuse one LU factorization instead of re-factorizing every time.
    """
    lu = _steady_lu_memo.get(network)
    if lu is not None:
        return SteadyStateSolver(network, lu=lu)
    solver = SteadyStateSolver(network)
    _steady_lu_memo[network] = solver._lu
    return solver


def initial_state(network: RCNetwork, power: Optional[np.ndarray] = None) -> np.ndarray:
    """Steady-state initialization (the paper initializes all simulations
    "with steady state temperature values")."""
    if power is None:
        power = np.zeros(network.n_nodes)
    return steady_solver_for(network).solve(power)
