"""Steady-state and transient solvers for the thermal RC network.

The network ODE is ``C dT/dt = -G T + P + b`` with diagonal C. The
transient solver uses backward Euler::

    (C/dt + G) T_{n+1} = (C/dt) T_n + P + b

which is unconditionally stable (the paper steps at the 100 ms sampling
interval, comparable to the stack's thermal time constant). The system
matrix depends only on (G, dt), so one sparse LU factorization per pump
setting is cached and each step costs a pair of triangular solves.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import fields as dataclass_fields
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SolverError
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.thermal.rc_network import RCNetwork, ThermalParams

_FACTORIZATIONS = _metrics.counter("solver.factorizations")
"""Monotonic count of sparse LU factorizations this process has
performed (steady + transient), kept in the process-wide
:mod:`repro.telemetry` registry (thread-safe increments). Factorizing
is the expensive, cacheable step — a batched cohort campaign must hit
each distinct (network, dt) system exactly once, and
``benchmarks/bench_hotpath.py`` plus the CI perf job gate on deltas of
this counter rather than on wall-clock."""


def factorization_count() -> int:
    """LU factorizations performed so far in this process.

    Byte-compatible shim over the ``solver.factorizations`` telemetry
    counter. Monotonic; callers measure a campaign by snapshotting
    before and after (there is deliberately no reset here — concurrent
    measurement scopes would clobber each other's baselines)."""
    return _FACTORIZATIONS.value()


def _count_factorization() -> None:
    _FACTORIZATIONS.inc()


class SteadyStateSolver:
    """Solves ``G T = P + b`` for the equilibrium temperature field.

    ``lu`` lets :func:`steady_solver_for` reuse a previously computed
    factorization of the same network; leave it ``None`` to factorize.
    """

    def __init__(self, network: RCNetwork, lu: Optional[spla.SuperLU] = None) -> None:
        self.network = network
        if lu is None:
            with _trace.span("factorize", kind="steady", n_nodes=network.n_nodes):
                try:
                    lu = spla.splu(network.conductance.tocsc())
                except RuntimeError as exc:
                    raise SolverError(
                        f"steady-state factorization failed: {exc}"
                    ) from exc
            _count_factorization()
        self._lu = lu

    def solve(self, power: np.ndarray) -> np.ndarray:
        """Equilibrium temperatures for a per-node power injection (W)."""
        power = np.asarray(power, dtype=float)
        if power.shape != (self.network.n_nodes,):
            raise SolverError(
                f"power vector has shape {power.shape}, expected ({self.network.n_nodes},)"
            )
        with _trace.span("steady", n_nodes=self.network.n_nodes):
            temps = self._lu.solve(power + self.network.boundary)
        if not np.all(np.isfinite(temps)):
            raise SolverError("steady-state solve produced non-finite temperatures")
        return temps

    def solve_many(self, powers: np.ndarray) -> np.ndarray:
        """Equilibrium fields for many injections at once.

        ``powers`` has shape ``(n_nodes, k)``; returns the same shape.
        One multi-RHS triangular solve; columns agree with separate
        :meth:`solve` calls to within LU roundoff (~1e-14 K — SuperLU
        uses blocked kernels for multiple right-hand sides).
        """
        powers = np.asarray(powers, dtype=float)
        n = self.network.n_nodes
        if powers.ndim != 2 or powers.shape[0] != n:
            raise SolverError(
                f"power matrix has shape {powers.shape}, expected ({n}, k)"
            )
        with _trace.span(
            "steady", n_nodes=self.network.n_nodes, n_rhs=powers.shape[1]
        ):
            temps = self._lu.solve(powers + self.network.boundary[:, None])
        if not np.all(np.isfinite(temps)):
            raise SolverError("steady-state solve produced non-finite temperatures")
        return temps


class TransientSolver:
    """Backward-Euler transient integrator with a cached factorization.

    Parameters
    ----------
    network:
        The assembled RC network.
    dt:
        Time step in seconds (the paper's 100 ms sampling interval by
        default at the call sites).
    """

    def __init__(self, network: RCNetwork, dt: float) -> None:
        if dt <= 0.0:
            raise SolverError("time step must be positive")
        self.network = network
        self.dt = dt
        c_over_dt = network.capacitance / dt
        if np.any(c_over_dt < 0.0):
            raise SolverError("negative capacitance in network")
        system = network.conductance + sp.diags(c_over_dt)
        with _trace.span("factorize", kind="transient", n_nodes=network.n_nodes):
            try:
                self._lu = spla.splu(system.tocsc())
            except RuntimeError as exc:
                raise SolverError(f"transient factorization failed: {exc}") from exc
        _count_factorization()
        self._c_over_dt = c_over_dt

    def step(self, temperatures: np.ndarray, power: np.ndarray) -> np.ndarray:
        """Advance one time step; returns the new temperature vector."""
        temperatures = np.asarray(temperatures, dtype=float)
        power = np.asarray(power, dtype=float)
        n = self.network.n_nodes
        if temperatures.shape != (n,) or power.shape != (n,):
            raise SolverError("temperature/power vector shape mismatch")
        rhs = self._c_over_dt * temperatures + power + self.network.boundary
        out = self._lu.solve(rhs)
        if not np.all(np.isfinite(out)):
            raise SolverError("transient step produced non-finite temperatures")
        return out

    def step_many(self, temperatures: np.ndarray, powers: np.ndarray) -> np.ndarray:
        """Advance many independent states one step at once.

        ``temperatures`` and ``powers`` have shape ``(n_nodes, k)`` —
        one column per independent run sharing this factorization;
        returns the same shape. One multi-RHS triangular solve;
        columns agree with separate :meth:`step` calls to within LU
        roundoff (~1e-14 K — SuperLU uses blocked kernels for multiple
        right-hand sides), which is why the cohort runner's bitwise
        default steps per column and this path is opt-in.
        """
        temperatures = np.asarray(temperatures, dtype=float)
        powers = np.asarray(powers, dtype=float)
        n = self.network.n_nodes
        if (
            temperatures.ndim != 2
            or temperatures.shape[0] != n
            or powers.shape != temperatures.shape
        ):
            raise SolverError(
                f"temperature/power matrix shape mismatch: "
                f"{temperatures.shape} vs {powers.shape}, expected ({n}, k)"
            )
        rhs = (
            self._c_over_dt[:, None] * temperatures
            + powers
            + self.network.boundary[:, None]
        )
        out = self._lu.solve(rhs)
        if not np.all(np.isfinite(out)):
            raise SolverError("transient step produced non-finite temperatures")
        return out

    def run(
        self,
        temperatures: np.ndarray,
        power: np.ndarray,
        n_steps: int,
    ) -> np.ndarray:
        """Advance ``n_steps`` with constant power; returns the final state."""
        if n_steps < 0:
            raise SolverError("n_steps must be non-negative")
        state = np.asarray(temperatures, dtype=float)
        for _ in range(n_steps):
            state = self.step(state, power)
        return state


_steady_lu_memo: "weakref.WeakKeyDictionary[RCNetwork, spla.SuperLU]" = (
    weakref.WeakKeyDictionary()
)
"""LU factorizations keyed weakly by their network. Entries vanish when
the caller drops the network, so the memo never pins networks alive
(the old ``id(network)``-keyed LRU kept up to 8 networks and their
factorizations reachable indefinitely, and id reuse could alias two
different networks). The cached ``SuperLU`` object holds no reference
back to the network, so there is no cycle to collect."""


def steady_solver_for(network: RCNetwork) -> SteadyStateSolver:
    """A cached :class:`SteadyStateSolver` for a network.

    Callers that own a :class:`~repro.sim.system.ThermalSystem` should
    prefer its ``steady_solver`` cache; this memo serves callers that
    only hold a bare network, so repeated :func:`initial_state` calls
    reuse one LU factorization instead of re-factorizing every time.
    """
    lu = _steady_lu_memo.get(network)
    if lu is not None:
        return SteadyStateSolver(network, lu=lu)
    solver = SteadyStateSolver(network)
    _steady_lu_memo[network] = solver._lu
    return solver


def initial_state(network: RCNetwork, power: Optional[np.ndarray] = None) -> np.ndarray:
    """Steady-state initialization (the paper initializes all simulations
    "with steady state temperature values")."""
    if power is None:
        power = np.zeros(network.n_nodes)
    return steady_solver_for(network).solve(power)


# --- iterative tier: neighbor-preconditioned Krylov solvers -------------------
#
# A sweep over ``thermal_params.*`` (or grid/geometry) changes the
# matrix *values* but not its sparsity structure, and nearby design
# points produce nearly identical systems. The classes below exploit
# that: instead of a fresh sparse LU per design point, they solve with
# preconditioned GMRES (the advection rows make G asymmetric, so CG is
# out) using the *closest already-factorized neighbor's* LU as the
# preconditioner, and only factorize when no usable neighbor exists or
# the iteration stalls.

KRYLOV_TOLERANCE = 1.0e-10
"""Relative residual (``||b - Ax|| / ||b||``) each Krylov linear solve
is driven to. Tight enough that temperature trajectories agree with
the exact LU path to :data:`KRYLOV_TEMPERATURE_TOLERANCE`."""

KRYLOV_TEMPERATURE_TOLERANCE = 1.0e-6
"""Documented accuracy contract of ``solver="krylov"``: maximum
absolute temperature difference (K) versus ``solver="exact"`` on the
same config. CI gates a small krylov-vs-exact sweep on this bound.
Well below the 0.5 K controller hysteresis and the paper's reported
0.1 K sensor resolution."""

KRYLOV_MAX_ITERATIONS = 64
"""GMRES iteration budget per solve (one un-restarted cycle). A
usable neighbor preconditioner converges in a handful of iterations;
hitting this budget means the neighbor was too far away, and the
solver falls back to an exact factorization of its own matrix."""

_KRYLOV_STAT_KEYS = (
    "preconditioner_hits",
    "preconditioner_misses",
    "fallbacks",
    "iterations",
    "gmres_solves",
    "direct_solves",
)
_KRYLOV_COUNTERS = {
    key: _metrics.counter("solver.krylov." + key) for key in _KRYLOV_STAT_KEYS
}


def krylov_stats() -> dict:
    """Process-wide Krylov solver counters (monotonic, like
    :func:`factorization_count`; snapshot before/after to measure).

    Byte-compatible shim over the ``solver.krylov.*`` telemetry
    counters; always a freshly built dict, so mutating the returned
    mapping cannot corrupt the live counters.

    ``preconditioner_hits``/``preconditioner_misses`` count solver
    constructions that found / failed to find a retained neighbor LU;
    ``fallbacks`` counts GMRES stalls that forced an exact
    factorization; ``iterations``/``gmres_solves`` accumulate inner
    GMRES work; ``direct_solves`` counts solves served by an exact LU
    (own factorization, exact cache hit, or post-fallback).
    """
    return {key: counter.value() for key, counter in _KRYLOV_COUNTERS.items()}


def _bump_krylov(**deltas: int) -> None:
    for key, delta in deltas.items():
        _KRYLOV_COUNTERS[key].inc(delta)


def structure_signature(network: RCNetwork) -> tuple:
    """Hashable identity of a network's sparsity *structure*.

    Two networks share a signature exactly when their conductance
    matrices have the same shape and sparsity pattern — the condition
    for one network's LU to be a meaningful preconditioner for the
    other. Assembly is canonical (sorted CSR), so the pattern hash is
    deterministic.
    """
    csr = network.conductance.tocsr()
    digest = hashlib.sha256()
    digest.update(np.asarray(csr.indptr).tobytes())
    digest.update(np.asarray(csr.indices).tobytes())
    return (csr.shape[0], int(csr.nnz), digest.hexdigest()[:16])


_PARAM_FIELDS = tuple(f.name for f in dataclass_fields(ThermalParams))


def _params_vector(params: ThermalParams) -> np.ndarray:
    """The swept thermal parameters as a float vector (distance space)."""
    return np.array([float(getattr(params, name)) for name in _PARAM_FIELDS])


def params_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Scalar distance between two thermal-parameter vectors.

    Sum of symmetric relative per-field differences — scale-free, so a
    1% change in ``resistance_scale`` and a 1% change in
    ``inlet_temperature`` count the same, and identical params are at
    distance exactly 0.0.
    """
    num = np.abs(a - b)
    den = np.abs(a) + np.abs(b)
    with np.errstate(invalid="ignore"):
        rel = np.where(den > 0.0, num / np.where(den > 0.0, den, 1.0), 0.0)
    return float(rel.sum())


class NeighborFactorCache:
    """LRU pool of retained LU factorizations for Krylov preconditioning.

    Entries are keyed by ``(structure, params)`` where ``structure`` is
    a :func:`structure_signature`-style tuple (grid shape + sparsity
    pattern + setting/dt) and ``params`` the
    :class:`~repro.thermal.rc_network.ThermalParams` the matrix was
    assembled from. :meth:`nearest` returns the retained LU with the
    same structure whose parameter vector minimizes
    :func:`params_distance` — the preconditioner a
    :class:`KrylovTransientSolver` steps with; :meth:`exact` shortcuts
    the identical design point (same structure *and* params), whose LU
    solves directly with no iteration at all. Thread-safe; least
    recently used entries evict beyond ``capacity`` (each retained LU
    at 64x64 is tens of MB, so the pool must stay small).
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise SolverError("neighbor cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple[np.ndarray, spla.SuperLU]]" = (
            OrderedDict()
        )

    def exact(self, structure: tuple, params: ThermalParams) -> Optional[spla.SuperLU]:
        """The retained LU of this exact design point, if any."""
        key = (structure, params)
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                return None
            self._entries.move_to_end(key)
            return hit[1]

    def nearest(
        self, structure: tuple, params_vec: np.ndarray
    ) -> Optional[tuple[spla.SuperLU, float]]:
        """Closest same-structure retained LU, as ``(lu, distance)``."""
        with self._lock:
            best_key, best_lu, best_dist = None, None, np.inf
            for (skey, _), (vec, lu) in self._entries.items():
                if skey != structure:
                    continue
                dist = params_distance(vec, params_vec)
                if dist < best_dist:
                    best_key, best_lu, best_dist = (skey, _), lu, dist
            if best_lu is None:
                return None
            self._entries.move_to_end(best_key)
            return best_lu, best_dist

    def retain(
        self,
        structure: tuple,
        params: ThermalParams,
        lu: spla.SuperLU,
    ) -> None:
        """Add (or refresh) a factorization; evicts LRU past capacity."""
        key = (structure, params)
        with self._lock:
            self._entries[key] = (_params_vector(params), lu)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_neighbor_cache = NeighborFactorCache()
"""Process-wide preconditioner pool. Shared across every
``solver="krylov"`` system in the process, so a sweep's design points
reuse each other's factorizations no matter how the batch planner
groups them (the system memo's small capacity means *systems* come and
go; retained LUs outlive them)."""


def neighbor_factor_cache() -> NeighborFactorCache:
    """The process-wide :class:`NeighborFactorCache`."""
    return _neighbor_cache


def clear_neighbor_cache() -> None:
    """Drop every retained preconditioner LU (frees their memory)."""
    _neighbor_cache.clear()


def _gmres(matrix, rhs, x0, M, rtol, restart, maxiter, callback):
    """scipy.sparse.linalg.gmres across the ``tol``->``rtol`` rename."""
    try:
        return spla.gmres(
            matrix, rhs, x0=x0, M=M, rtol=rtol, atol=0.0,
            restart=restart, maxiter=maxiter,
            callback=callback, callback_type="pr_norm",
        )
    except TypeError:  # pragma: no cover - scipy < 1.12
        return spla.gmres(
            matrix, rhs, x0=x0, M=M, tol=rtol, atol=0.0,
            restart=restart, maxiter=maxiter,
            callback=callback, callback_type="pr_norm",
        )


class _KrylovLinearSolver:
    """Shared machinery of the Krylov steady/transient solvers.

    Owns one system matrix and solves ``A x = b`` with neighbor-LU
    preconditioned GMRES, maintaining the invariant: every answer it
    returns satisfies ``||b - Ax|| <= tolerance * ||b||`` (verified
    with an explicit residual, not trusted from the iteration), or an
    exact LU produced it. The first design point of a structure (no
    retained neighbor) and any stalled iteration factorize exactly —
    so krylov mode is never *less* robust than exact, only cheaper
    when neighbors exist.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        structure: tuple,
        params: ThermalParams,
        tolerance: float,
        max_iterations: int,
        cache: Optional[NeighborFactorCache],
    ) -> None:
        if tolerance <= 0.0:
            raise SolverError("krylov tolerance must be positive")
        if max_iterations < 1:
            raise SolverError("krylov max_iterations must be >= 1")
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.structure = structure
        self._params = params
        self._cache = cache if cache is not None else _neighbor_cache
        self._matrix = matrix.tocsr()
        self._csc = None  # built lazily, only if we must factorize
        self._lu: Optional[spla.SuperLU] = None
        self._precond: Optional[spla.SuperLU] = None
        self.neighbor_distance: Optional[float] = None
        self.fallback_count = 0
        lu = self._cache.exact(structure, params)
        if lu is not None:
            # Same structure + params => bit-identical matrix (canonical
            # assembly), so this LU solves exactly, no iteration needed.
            self._lu = lu
            _bump_krylov(preconditioner_hits=1)
            return
        near = self._cache.nearest(structure, _params_vector(params))
        if near is not None:
            self._precond, self.neighbor_distance = near
            _bump_krylov(preconditioner_hits=1)
        else:
            _bump_krylov(preconditioner_misses=1)
            self._factorize()

    def _factorize(self) -> spla.SuperLU:
        """Exact LU of *this* matrix; retained for future neighbors."""
        if self._lu is None:
            with _trace.span(
                "factorize", kind="krylov", n_nodes=self._matrix.shape[0]
            ):
                try:
                    self._lu = spla.splu(self._matrix.tocsc())
                except RuntimeError as exc:
                    raise SolverError(
                        f"krylov factorization failed: {exc}"
                    ) from exc
            _count_factorization()
            self._cache.retain(self.structure, self._params, self._lu)
        return self._lu

    def solve_linear(self, rhs: np.ndarray, x0: Optional[np.ndarray]) -> np.ndarray:
        """Solve ``A x = rhs`` to the residual tolerance."""
        if self._lu is not None:
            _bump_krylov(direct_solves=1)
            out = self._lu.solve(rhs)
            if not np.all(np.isfinite(out)):
                raise SolverError("krylov direct solve produced non-finite values")
            return out
        n = self._matrix.shape[0]
        precond = spla.LinearOperator((n, n), matvec=self._precond.solve)
        iterations = [0]

        def _count(_pr_norm: float) -> None:
            iterations[0] += 1

        with _trace.span("gmres", n_nodes=n) as gmres_span:
            x, info = _gmres(
                self._matrix, rhs, x0=x0, M=precond, rtol=self.tolerance,
                restart=self.max_iterations, maxiter=1, callback=_count,
            )
            gmres_span.set_attrs(iterations=iterations[0], info=int(info))
        _bump_krylov(gmres_solves=1, iterations=iterations[0])
        if info == 0 and np.all(np.isfinite(x)):
            # Trust but verify: the documented contract is the true
            # residual, not GMRES's preconditioned estimate.
            rhs_norm = float(np.linalg.norm(rhs))
            residual = float(np.linalg.norm(rhs - self._matrix @ x))
            if residual <= self.tolerance * max(rhs_norm, 1.0e-300):
                return x
        # Stalled (or residual floor unmet): this neighbor is not good
        # enough — factorize our own matrix and answer exactly. The LU
        # is kept, so subsequent steps of this solver are direct.
        self.fallback_count += 1
        _bump_krylov(fallbacks=1, direct_solves=1)
        out = self._factorize().solve(rhs)
        if not np.all(np.isfinite(out)):
            raise SolverError("krylov fallback solve produced non-finite values")
        return out

    def solve_linear_many(
        self, rhs: np.ndarray, x0: Optional[np.ndarray]
    ) -> np.ndarray:
        """Column-by-column :meth:`solve_linear` (GMRES is single-RHS)."""
        out = np.empty_like(rhs)
        for c in range(rhs.shape[1]):
            guess = None if x0 is None else np.ascontiguousarray(x0[:, c])
            out[:, c] = self.solve_linear(np.ascontiguousarray(rhs[:, c]), guess)
        return out


class KrylovTransientSolver:
    """Backward-Euler stepping via neighbor-preconditioned GMRES.

    Drop-in for :class:`TransientSolver` (same ``step``/``step_many``/
    ``run`` surface) that does *not* factorize its own system matrix
    when a nearby design point's LU is retained in the
    :class:`NeighborFactorCache`: each step solves
    ``(C/dt + G) T' = (C/dt) T + P + b`` iteratively, preconditioned by
    the closest neighbor, warm-started from the current state. Results
    agree with the exact path to :data:`KRYLOV_TEMPERATURE_TOLERANCE`;
    a stalled iteration falls back to an exact factorization
    (recorded in ``fallback_count``), after which stepping is direct.
    """

    def __init__(
        self,
        network: RCNetwork,
        dt: float,
        params: ThermalParams,
        structure: Optional[tuple] = None,
        tolerance: float = KRYLOV_TOLERANCE,
        max_iterations: int = KRYLOV_MAX_ITERATIONS,
        cache: Optional[NeighborFactorCache] = None,
    ) -> None:
        if dt <= 0.0:
            raise SolverError("time step must be positive")
        self.network = network
        self.dt = dt
        c_over_dt = network.capacitance / dt
        if np.any(c_over_dt < 0.0):
            raise SolverError("negative capacitance in network")
        self._c_over_dt = c_over_dt
        if structure is None:
            structure = structure_signature(network) + ("dt", float(dt))
        self._core = _KrylovLinearSolver(
            network.conductance + sp.diags(c_over_dt),
            structure, params, tolerance, max_iterations, cache,
        )

    @property
    def fallback_count(self) -> int:
        """Exact-factorization fallbacks this solver has performed."""
        return self._core.fallback_count

    @property
    def neighbor_distance(self) -> Optional[float]:
        """Parameter distance to the preconditioning neighbor (None if
        this solver factorized its own matrix up front)."""
        return self._core.neighbor_distance

    def step(self, temperatures: np.ndarray, power: np.ndarray) -> np.ndarray:
        """Advance one time step; returns the new temperature vector."""
        temperatures = np.asarray(temperatures, dtype=float)
        power = np.asarray(power, dtype=float)
        n = self.network.n_nodes
        if temperatures.shape != (n,) or power.shape != (n,):
            raise SolverError("temperature/power vector shape mismatch")
        rhs = self._c_over_dt * temperatures + power + self.network.boundary
        out = self._core.solve_linear(rhs, x0=temperatures)
        if not np.all(np.isfinite(out)):
            raise SolverError("transient step produced non-finite temperatures")
        return out

    def step_many(self, temperatures: np.ndarray, powers: np.ndarray) -> np.ndarray:
        """Advance many independent states one step (column-wise GMRES)."""
        temperatures = np.asarray(temperatures, dtype=float)
        powers = np.asarray(powers, dtype=float)
        n = self.network.n_nodes
        if (
            temperatures.ndim != 2
            or temperatures.shape[0] != n
            or powers.shape != temperatures.shape
        ):
            raise SolverError(
                f"temperature/power matrix shape mismatch: "
                f"{temperatures.shape} vs {powers.shape}, expected ({n}, k)"
            )
        rhs = (
            self._c_over_dt[:, None] * temperatures
            + powers
            + self.network.boundary[:, None]
        )
        out = self._core.solve_linear_many(rhs, x0=temperatures)
        if not np.all(np.isfinite(out)):
            raise SolverError("transient step produced non-finite temperatures")
        return out

    def run(
        self,
        temperatures: np.ndarray,
        power: np.ndarray,
        n_steps: int,
    ) -> np.ndarray:
        """Advance ``n_steps`` with constant power; returns the final state."""
        if n_steps < 0:
            raise SolverError("n_steps must be non-negative")
        state = np.asarray(temperatures, dtype=float)
        for _ in range(n_steps):
            state = self.step(state, power)
        return state


class KrylovSteadySolver:
    """Steady-state ``G T = P + b`` via neighbor-preconditioned GMRES.

    Drop-in for :class:`SteadyStateSolver` under ``solver="krylov"``.
    Consecutive solves warm-start from the previous solution — the
    leakage fixed point's successive iterates differ by well under a
    kelvin, so after the first solve GMRES converges in very few
    iterations.
    """

    def __init__(
        self,
        network: RCNetwork,
        params: ThermalParams,
        structure: Optional[tuple] = None,
        tolerance: float = KRYLOV_TOLERANCE,
        max_iterations: int = KRYLOV_MAX_ITERATIONS,
        cache: Optional[NeighborFactorCache] = None,
    ) -> None:
        self.network = network
        if structure is None:
            structure = structure_signature(network) + ("steady",)
        self._core = _KrylovLinearSolver(
            network.conductance, structure, params, tolerance, max_iterations, cache
        )
        self._last: Optional[np.ndarray] = None
        self._last_block: Optional[np.ndarray] = None

    @property
    def fallback_count(self) -> int:
        """Exact-factorization fallbacks this solver has performed."""
        return self._core.fallback_count

    def solve(self, power: np.ndarray) -> np.ndarray:
        """Equilibrium temperatures for a per-node power injection (W)."""
        power = np.asarray(power, dtype=float)
        if power.shape != (self.network.n_nodes,):
            raise SolverError(
                f"power vector has shape {power.shape}, expected ({self.network.n_nodes},)"
            )
        with _trace.span("steady", tier="krylov", n_nodes=self.network.n_nodes):
            temps = self._core.solve_linear(
                power + self.network.boundary, x0=self._last
            )
        if not np.all(np.isfinite(temps)):
            raise SolverError("steady-state solve produced non-finite temperatures")
        self._last = temps
        return temps

    def solve_many(self, powers: np.ndarray) -> np.ndarray:
        """Equilibrium fields for many injections (column-wise GMRES)."""
        powers = np.asarray(powers, dtype=float)
        n = self.network.n_nodes
        if powers.ndim != 2 or powers.shape[0] != n:
            raise SolverError(
                f"power matrix has shape {powers.shape}, expected ({n}, k)"
            )
        x0 = self._last_block
        if x0 is not None and x0.shape != powers.shape:
            x0 = None
        with _trace.span(
            "steady", tier="krylov",
            n_nodes=self.network.n_nodes, n_rhs=powers.shape[1],
        ):
            temps = self._core.solve_linear_many(
                powers + self.network.boundary[:, None], x0=x0
            )
        if not np.all(np.isfinite(temps)):
            raise SolverError("steady-state solve produced non-finite temperatures")
        self._last_block = temps
        return temps
