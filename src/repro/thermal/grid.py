"""Spatial discretization of a 3D stack into a grid RC node layout.

The stack is sliced into *slabs* (bottom to top): active dies, coolant
cavities (liquid cooling), or thin interface layers (air cooling). Every
slab carries an ``nx`` x ``ny`` grid of nodes; an air-cooled stack adds
two lumped package nodes (heat spreader and heat sink) on top.

The paper uses 100 um grid cells; for a 10.7 mm die that is a 107x107
grid per slab. The default here is coarser (16x16, block-accurate and
fast); the cell size is fully configurable and the network assembly is
resolution-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

import numpy as np

from repro.constants import STACK
from repro.errors import GeometryError
from repro.geometry.floorplan import UnitKind
from repro.geometry.stack import CoolingKind, Stack3D


class SlabKind(Enum):
    """Kind of one horizontal slice of the stack."""

    DIE = "die"
    CAVITY = "cavity"
    INTERFACE = "interface"


@dataclass(frozen=True)
class Slab:
    """One horizontal slice of the stack.

    ``die_index`` / ``cavity_index`` number the slab within its kind
    (-1 when not applicable).
    """

    kind: SlabKind
    name: str
    thickness: float
    die_index: int = -1
    cavity_index: int = -1


class ThermalGrid:
    """Node layout for a stack: slabs x (ny x nx) grid (+ package nodes).

    Parameters
    ----------
    stack:
        The 3D stack to discretize.
    nx, ny:
        Grid cells along x (the channel flow direction) and y.

    Attributes
    ----------
    slabs:
        Bottom-to-top slab descriptors.
    rasters:
        For each die index, an ``(ny, nx)`` array of unit indices into
        that die's floorplan (cell centre assignment).
    """

    def __init__(self, stack: Stack3D, nx: int = 16, ny: int = 16) -> None:
        if nx < 2 or ny < 2:
            raise GeometryError("thermal grid needs at least 2x2 cells")
        self.stack = stack
        self.nx = nx
        self.ny = ny
        self.cell_w = stack.width / nx
        self.cell_h = stack.height / ny
        self.cell_area = self.cell_w * self.cell_h
        self.slabs: list[Slab] = self._build_slabs()
        self.rasters: list[np.ndarray] = [
            die.floorplan.rasterize(nx, ny) for die in stack.dies
        ]
        self._cells_per_slab = nx * ny
        self.has_package = stack.cooling is CoolingKind.AIR
        n_grid = len(self.slabs) * self._cells_per_slab
        if self.has_package:
            self.spreader_node = n_grid
            self.sink_node = n_grid + 1
            self.n_nodes = n_grid + 2
        else:
            self.spreader_node = -1
            self.sink_node = -1
            self.n_nodes = n_grid

    def _build_slabs(self) -> list[Slab]:
        slabs: list[Slab] = []
        if self.stack.cooling is CoolingKind.LIQUID:
            for d, die in enumerate(self.stack.dies):
                slabs.append(
                    Slab(
                        SlabKind.CAVITY,
                        f"cavity{d}",
                        STACK.interlayer_thickness_with_channels,
                        cavity_index=d,
                    )
                )
                slabs.append(
                    Slab(SlabKind.DIE, die.floorplan.name, die.thickness, die_index=d)
                )
            slabs.append(
                Slab(
                    SlabKind.CAVITY,
                    f"cavity{self.stack.n_dies}",
                    STACK.interlayer_thickness_with_channels,
                    cavity_index=self.stack.n_dies,
                )
            )
        else:
            for d, die in enumerate(self.stack.dies):
                if d > 0:
                    slabs.append(
                        Slab(
                            SlabKind.INTERFACE,
                            f"interface{d - 1}",
                            STACK.interlayer_thickness,
                            cavity_index=d - 1,
                        )
                    )
                slabs.append(
                    Slab(SlabKind.DIE, die.floorplan.name, die.thickness, die_index=d)
                )
        return slabs

    # --- node indexing ------------------------------------------------------

    def node(self, slab_idx: int, i: int, j: int) -> int:
        """Global node index of grid cell ``(i, j)`` in slab ``slab_idx``.

        ``i`` runs along x (flow direction), ``j`` along y.
        """
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise GeometryError(f"cell ({i}, {j}) outside {self.nx}x{self.ny} grid")
        return slab_idx * self._cells_per_slab + j * self.nx + i

    def slab_nodes(self, slab_idx: int) -> np.ndarray:
        """All node indices of one slab, shaped ``(ny, nx)``."""
        base = slab_idx * self._cells_per_slab
        return np.arange(base, base + self._cells_per_slab).reshape(self.ny, self.nx)

    def die_slab_index(self, die_index: int) -> int:
        """Slab index of the given die."""
        for s, slab in enumerate(self.slabs):
            if slab.kind is SlabKind.DIE and slab.die_index == die_index:
                return s
        raise GeometryError(f"no die {die_index} in this grid")

    def cavity_slab_index(self, cavity_index: int) -> int:
        """Slab index of the given cavity (liquid cooling only)."""
        for s, slab in enumerate(self.slabs):
            if slab.kind is SlabKind.CAVITY and slab.cavity_index == cavity_index:
                return s
        raise GeometryError(f"no cavity {cavity_index} in this grid")

    def die_slab_indices(self) -> list[int]:
        """Slab indices of all dies, bottom to top."""
        return [s for s, slab in enumerate(self.slabs) if slab.kind is SlabKind.DIE]

    def cavity_slab_indices(self) -> list[int]:
        """Slab indices of all cavities, bottom to top."""
        return [s for s, slab in enumerate(self.slabs) if slab.kind is SlabKind.CAVITY]

    # --- unit <-> cell mapping -----------------------------------------------

    def unit_cells(self, die_index: int, unit_name: str) -> np.ndarray:
        """Node indices of the cells of one floorplan unit."""
        floorplan = self.stack.dies[die_index].floorplan
        unit_idx = floorplan.units.index(floorplan.unit(unit_name))
        mask = self.rasters[die_index] == unit_idx
        if not mask.any():
            raise GeometryError(
                f"unit {unit_name!r} on die {die_index} received no grid cells; "
                "increase the grid resolution"
            )
        return self.slab_nodes(self.die_slab_index(die_index))[mask]

    def power_vector(self, unit_powers: Mapping[tuple[int, str], float]) -> np.ndarray:
        """Per-node power injection (W) from per-unit powers.

        ``unit_powers`` maps ``(die_index, unit_name)`` to watts; each
        unit's power is spread uniformly over its grid cells.
        """
        p = np.zeros(self.n_nodes)
        for (die_index, unit_name), watts in unit_powers.items():
            cells = self.unit_cells(die_index, unit_name)
            p[cells] += watts / cells.size
        return p

    # --- temperature extraction -----------------------------------------------

    def unit_temperature(self, temperatures: np.ndarray, die_index: int, unit_name: str) -> float:
        """Mean temperature of one unit's cells (a block thermal sensor)."""
        return float(temperatures[self.unit_cells(die_index, unit_name)].mean())

    def unit_temperatures(self, temperatures: np.ndarray) -> dict[tuple[int, str], float]:
        """Mean temperature of every floorplan unit on every die."""
        out: dict[tuple[int, str], float] = {}
        for d, die in enumerate(self.stack.dies):
            for unit in die.floorplan:
                out[(d, unit.name)] = self.unit_temperature(temperatures, d, unit.name)
        return out

    def core_temperatures(self, temperatures: np.ndarray) -> dict[str, float]:
        """Per-core sensor readings, keyed by core name."""
        out: dict[str, float] = {}
        for d, die in enumerate(self.stack.dies):
            for unit in die.floorplan.units_of_kind(UnitKind.CORE):
                out[unit.name] = self.unit_temperature(temperatures, d, unit.name)
        return out

    def die_temperature_field(self, temperatures: np.ndarray, die_index: int) -> np.ndarray:
        """Temperature field of one die as an ``(ny, nx)`` array."""
        return temperatures[self.slab_nodes(self.die_slab_index(die_index))]

    def max_die_temperature(self, temperatures: np.ndarray) -> float:
        """Maximum temperature over all die cells (junction T_max)."""
        return max(
            float(temperatures[self.slab_nodes(s)].max()) for s in self.die_slab_indices()
        )

    def max_unit_temperature(self, temperatures: np.ndarray) -> float:
        """Maximum of the per-unit sensor readings (block means).

        This is the T_max a runtime policy can actually observe — the
        paper assumes one thermal sensor per core/unit — and what the
        controller, scheduler, and metrics operate on. The cell-level
        :meth:`max_die_temperature` is slightly higher and serves as
        ground truth in validation tests.
        """
        return max(self.unit_temperatures(temperatures).values())
