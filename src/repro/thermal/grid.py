"""Spatial discretization of a 3D stack into a grid RC node layout.

The stack is sliced into *slabs* (bottom to top): active dies, coolant
cavities (liquid cooling), or thin interface layers (air cooling). Every
slab carries an ``nx`` x ``ny`` grid of nodes; an air-cooled stack adds
two lumped package nodes (heat spreader and heat sink) on top.

The paper uses 100 um grid cells; for a 10.7 mm die that is a 107x107
grid per slab. The cell size is fully configurable and the network
assembly is resolution-independent; the per-interval hot path is
array-oriented so paper-resolution grids stay practical.

Vector-native hot path
----------------------
``ThermalGrid`` precomputes, at construction, a stable unit ordering
(:attr:`unit_keys`, sorted ``(die_index, unit_name)`` tuples) together
with cached unit<->cell operators:

* a *scatter* mapping (conceptually the sparse matrix ``S`` of shape
  ``n_nodes x n_units`` whose column ``u`` is uniform ``1/count_u`` over
  unit ``u``'s cells), applied by :meth:`power_vector_from_array` as a
  gather of per-unit quotients so each cell receives exactly
  ``watts / count`` with one IEEE division — bit-identical to the
  historical per-unit loop;
* a *mean-gather* operator (the sparse summing matrix ``M_sum`` of
  shape ``n_units x n_nodes``; row ``u`` is 1 over unit ``u``'s cells),
  so :meth:`unit_temperature_vector` is one sparse matvec plus an
  elementwise division by the cell counts.

The dict-returning APIs (:meth:`power_vector`, :meth:`unit_temperatures`,
:meth:`core_temperatures`) are thin adapters over the vector forms; no
per-unit or per-cell Python loops remain in the per-interval path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

import numpy as np
import scipy.sparse as sp

from repro.constants import STACK
from repro.errors import GeometryError
from repro.geometry.floorplan import UnitKind
from repro.geometry.stack import CoolingKind, Stack3D


class SlabKind(Enum):
    """Kind of one horizontal slice of the stack."""

    DIE = "die"
    CAVITY = "cavity"
    INTERFACE = "interface"


@dataclass(frozen=True)
class Slab:
    """One horizontal slice of the stack.

    ``die_index`` / ``cavity_index`` number the slab within its kind
    (-1 when not applicable).
    """

    kind: SlabKind
    name: str
    thickness: float
    die_index: int = -1
    cavity_index: int = -1


class ThermalGrid:
    """Node layout for a stack: slabs x (ny x nx) grid (+ package nodes).

    Parameters
    ----------
    stack:
        The 3D stack to discretize.
    nx, ny:
        Grid cells along x (the channel flow direction) and y.

    Attributes
    ----------
    slabs:
        Bottom-to-top slab descriptors.
    rasters:
        For each die index, an ``(ny, nx)`` array of unit indices into
        that die's floorplan (cell centre assignment).
    unit_keys:
        Stable unit ordering: sorted ``(die_index, unit_name)`` tuples.
        All vector-native APIs are aligned to this order.
    n_units:
        ``len(unit_keys)``.
    core_keys:
        ``(die_index, core_name)`` for every core unit, bottom die
        first, in floorplan order — the same order as
        ``stack.core_names()``.
    core_index:
        Positions of :attr:`core_keys` within :attr:`unit_keys`, as an
        index array (``unit_vector[core_index]`` gives per-core values).
    unit_cell_counts:
        Grid cells assigned to each unit, aligned to :attr:`unit_keys`.
    """

    def __init__(self, stack: Stack3D, nx: int = 16, ny: int = 16) -> None:
        if nx < 2 or ny < 2:
            raise GeometryError("thermal grid needs at least 2x2 cells")
        self.stack = stack
        self.nx = nx
        self.ny = ny
        self.cell_w = stack.width / nx
        self.cell_h = stack.height / ny
        self.cell_area = self.cell_w * self.cell_h
        self.slabs: list[Slab] = self._build_slabs()
        self.rasters: list[np.ndarray] = [
            die.floorplan.rasterize(nx, ny) for die in stack.dies
        ]
        self._cells_per_slab = nx * ny
        self.has_package = stack.cooling is CoolingKind.AIR
        n_grid = len(self.slabs) * self._cells_per_slab
        if self.has_package:
            self.spreader_node = n_grid
            self.sink_node = n_grid + 1
            self.n_nodes = n_grid + 2
        else:
            self.spreader_node = -1
            self.sink_node = -1
            self.n_nodes = n_grid

        # O(1) slab lookups (these used to be linear scans called from
        # the inner assembly loops).
        self._die_slab: dict[int, int] = {}
        self._cavity_slab: dict[int, int] = {}
        for s, slab in enumerate(self.slabs):
            if slab.kind is SlabKind.DIE:
                self._die_slab[slab.die_index] = s
            elif slab.kind is SlabKind.CAVITY:
                self._cavity_slab[slab.cavity_index] = s
        self._die_slab_list = sorted(self._die_slab.values())
        self._cavity_slab_list = sorted(self._cavity_slab.values())

        self._build_unit_operators()

    def _build_slabs(self) -> list[Slab]:
        slabs: list[Slab] = []
        if self.stack.cooling is CoolingKind.LIQUID:
            for d, die in enumerate(self.stack.dies):
                slabs.append(
                    Slab(
                        SlabKind.CAVITY,
                        f"cavity{d}",
                        STACK.interlayer_thickness_with_channels,
                        cavity_index=d,
                    )
                )
                slabs.append(
                    Slab(SlabKind.DIE, die.floorplan.name, die.thickness, die_index=d)
                )
            slabs.append(
                Slab(
                    SlabKind.CAVITY,
                    f"cavity{self.stack.n_dies}",
                    STACK.interlayer_thickness_with_channels,
                    cavity_index=self.stack.n_dies,
                )
            )
        else:
            for d, die in enumerate(self.stack.dies):
                if d > 0:
                    slabs.append(
                        Slab(
                            SlabKind.INTERFACE,
                            f"interface{d - 1}",
                            STACK.interlayer_thickness,
                            cavity_index=d - 1,
                        )
                    )
                slabs.append(
                    Slab(SlabKind.DIE, die.floorplan.name, die.thickness, die_index=d)
                )
        return slabs

    def _build_unit_operators(self) -> None:
        """Precompute the unit<->cell index arrays and sparse operators."""
        self.unit_keys: tuple[tuple[int, str], ...] = tuple(
            sorted(
                (d, unit.name)
                for d, die in enumerate(self.stack.dies)
                for unit in die.floorplan
            )
        )
        self.n_units = len(self.unit_keys)
        self.unit_index: dict[tuple[int, str], int] = {
            key: u for u, key in enumerate(self.unit_keys)
        }

        cells: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * self.n_units
        for d, die in enumerate(self.stack.dies):
            slab_nodes = self.slab_nodes(self._die_slab[d])
            raster = self.rasters[d]
            for floorplan_idx, unit in enumerate(die.floorplan.units):
                u = self.unit_index[(d, unit.name)]
                cells[u] = np.ascontiguousarray(slab_nodes[raster == floorplan_idx])
        self._unit_cells: list[np.ndarray] = cells
        self.unit_cell_counts = np.array([c.size for c in cells], dtype=np.int64)
        # Units that received no cells (possible at very coarse grids);
        # tolerated at construction, rejected at first use — matching
        # the historical lazy behaviour of ``unit_cells``.
        self._empty_units = [
            self.unit_keys[u] for u in np.flatnonzero(self.unit_cell_counts == 0)
        ]
        counts_safe = np.maximum(self.unit_cell_counts, 1)
        self._counts_safe = counts_safe.astype(float)

        # Mean-gather operator: M_sum[u, node] = 1.0 over unit u's cells.
        flat_cells = np.concatenate(cells) if cells else np.empty(0, dtype=np.int64)
        owner = np.repeat(np.arange(self.n_units), self.unit_cell_counts)
        self._unit_cells_flat = flat_cells
        self._cell_owner = owner
        indptr = np.concatenate(([0], np.cumsum(self.unit_cell_counts)))
        self._m_sum = sp.csr_matrix(
            (np.ones(flat_cells.size), flat_cells, indptr),
            shape=(self.n_units, self.n_nodes),
        )

        # Cores in stack order (== stack.core_names() order).
        self.core_keys: tuple[tuple[int, str], ...] = tuple(
            (d, unit.name)
            for d, die in enumerate(self.stack.dies)
            for unit in die.floorplan.units_of_kind(UnitKind.CORE)
        )
        self.core_index = np.array(
            [self.unit_index[key] for key in self.core_keys], dtype=np.int64
        )

        # All die-slab node indices, for the masked junction max.
        self._die_nodes = np.concatenate(
            [self.slab_nodes(s).ravel() for s in self._die_slab_list]
        ) if self._die_slab_list else np.empty(0, dtype=np.int64)

    # --- node indexing ------------------------------------------------------

    def node(self, slab_idx: int, i: int, j: int) -> int:
        """Global node index of grid cell ``(i, j)`` in slab ``slab_idx``.

        ``i`` runs along x (flow direction), ``j`` along y.
        """
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise GeometryError(f"cell ({i}, {j}) outside {self.nx}x{self.ny} grid")
        return slab_idx * self._cells_per_slab + j * self.nx + i

    def slab_nodes(self, slab_idx: int) -> np.ndarray:
        """All node indices of one slab, shaped ``(ny, nx)``."""
        base = slab_idx * self._cells_per_slab
        return np.arange(base, base + self._cells_per_slab).reshape(self.ny, self.nx)

    def die_slab_index(self, die_index: int) -> int:
        """Slab index of the given die (O(1) lookup)."""
        try:
            return self._die_slab[die_index]
        except KeyError:
            raise GeometryError(f"no die {die_index} in this grid")

    def cavity_slab_index(self, cavity_index: int) -> int:
        """Slab index of the given cavity (liquid cooling only; O(1))."""
        try:
            return self._cavity_slab[cavity_index]
        except KeyError:
            raise GeometryError(f"no cavity {cavity_index} in this grid")

    def die_slab_indices(self) -> list[int]:
        """Slab indices of all dies, bottom to top."""
        return list(self._die_slab_list)

    def cavity_slab_indices(self) -> list[int]:
        """Slab indices of all cavities, bottom to top."""
        return list(self._cavity_slab_list)

    # --- unit <-> cell mapping -----------------------------------------------

    def unit_position(self, die_index: int, unit_name: str) -> int:
        """Position of a unit within :attr:`unit_keys`."""
        try:
            return self.unit_index[(die_index, unit_name)]
        except KeyError:
            raise GeometryError(
                f"no unit {unit_name!r} on die {die_index} in this grid"
            )

    def unit_cells(self, die_index: int, unit_name: str) -> np.ndarray:
        """Node indices of the cells of one floorplan unit."""
        u = self.unit_position(die_index, unit_name)
        cells = self._unit_cells[u]
        if cells.size == 0:
            raise GeometryError(
                f"unit {unit_name!r} on die {die_index} received no grid cells; "
                "increase the grid resolution"
            )
        return cells

    def _require_cells(self, keys) -> None:
        for die_index, unit_name in keys:
            raise GeometryError(
                f"unit {unit_name!r} on die {die_index} received no grid cells; "
                "increase the grid resolution"
            )

    def power_vector_from_array(self, unit_powers: np.ndarray) -> np.ndarray:
        """Per-node power injection (W) from a per-unit power vector.

        ``unit_powers`` is aligned to :attr:`unit_keys`; each unit's
        power is spread uniformly over its grid cells (cell value
        ``watts / count``, one IEEE division — identical to the
        historical per-unit loop).
        """
        p = np.asarray(unit_powers, dtype=float)
        if p.shape != (self.n_units,):
            raise GeometryError(
                f"unit power vector has shape {p.shape}, expected ({self.n_units},)"
            )
        if self._empty_units:
            bad = [
                key for key in self._empty_units
                if p[self.unit_index[key]] != 0.0
            ]
            if bad:
                self._require_cells(bad)
        out = np.zeros(self.n_nodes)
        out[self._unit_cells_flat] = (p / self._counts_safe)[self._cell_owner]
        return out

    def power_vector(self, unit_powers: Mapping[tuple[int, str], float]) -> np.ndarray:
        """Per-node power injection (W) from per-unit powers.

        ``unit_powers`` maps ``(die_index, unit_name)`` to watts; each
        unit's power is spread uniformly over its grid cells. Thin
        adapter over :meth:`power_vector_from_array`.
        """
        p = np.zeros(self.n_units)
        for (die_index, unit_name), watts in unit_powers.items():
            u = self.unit_position(die_index, unit_name)
            if self._unit_cells[u].size == 0:
                self._require_cells([(die_index, unit_name)])
            p[u] = watts
        return self.power_vector_from_array(p)

    # --- temperature extraction -----------------------------------------------

    def _unit_means(self, temperatures: np.ndarray) -> np.ndarray:
        """Per-unit mean temperatures (0.0 for cell-less units)."""
        temperatures = np.asarray(temperatures, dtype=float)
        if temperatures.shape != (self.n_nodes,):
            raise GeometryError(
                f"temperature vector has shape {temperatures.shape}, "
                f"expected ({self.n_nodes},)"
            )
        return (self._m_sum @ temperatures) / self._counts_safe

    def unit_temperature_vector(self, temperatures: np.ndarray) -> np.ndarray:
        """Mean temperature of every unit, aligned to :attr:`unit_keys`.

        One sparse matvec plus an elementwise division — the
        vector-native form behind :meth:`unit_temperatures`.
        """
        if self._empty_units:
            self._require_cells(self._empty_units)
        return self._unit_means(temperatures)

    def core_temperature_vector(self, temperatures: np.ndarray) -> np.ndarray:
        """Per-core sensor readings, aligned to ``stack.core_names()``."""
        if self._empty_units:
            empty_cores = [k for k in self._empty_units if k in set(self.core_keys)]
            if empty_cores:
                self._require_cells(empty_cores)
        return self._unit_means(temperatures)[self.core_index]

    def unit_temperature(self, temperatures: np.ndarray, die_index: int, unit_name: str) -> float:
        """Mean temperature of one unit's cells (a block thermal sensor)."""
        u = self.unit_position(die_index, unit_name)
        if self._unit_cells[u].size == 0:
            self._require_cells([(die_index, unit_name)])
        return float(self._unit_means(temperatures)[u])

    def unit_temperatures(self, temperatures: np.ndarray) -> dict[tuple[int, str], float]:
        """Mean temperature of every floorplan unit on every die.

        Thin adapter over :meth:`unit_temperature_vector`; keys follow
        :attr:`unit_keys` order.
        """
        vec = self.unit_temperature_vector(temperatures)
        return dict(zip(self.unit_keys, vec.tolist()))

    def core_temperatures(self, temperatures: np.ndarray) -> dict[str, float]:
        """Per-core sensor readings, keyed by core name.

        Thin adapter over :meth:`core_temperature_vector`.
        """
        vec = self.core_temperature_vector(temperatures)
        return dict(zip((name for _, name in self.core_keys), vec.tolist()))

    def die_temperature_field(self, temperatures: np.ndarray, die_index: int) -> np.ndarray:
        """Temperature field of one die as an ``(ny, nx)`` array."""
        return temperatures[self.slab_nodes(self.die_slab_index(die_index))]

    def max_die_temperature(self, temperatures: np.ndarray) -> float:
        """Maximum temperature over all die cells (junction T_max).

        A single masked max over the precomputed die-node index array.
        """
        return float(np.asarray(temperatures)[self._die_nodes].max())

    def max_unit_temperature(self, temperatures: np.ndarray) -> float:
        """Maximum of the per-unit sensor readings (block means).

        This is the T_max a runtime policy can actually observe — the
        paper assumes one thermal sensor per core/unit — and what the
        controller, scheduler, and metrics operate on. The cell-level
        :meth:`max_die_temperature` is slightly higher and serves as
        ground truth in validation tests.
        """
        return float(self.unit_temperature_vector(temperatures).max())
