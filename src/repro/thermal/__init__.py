"""Grid-level RC thermal modeling of 3D stacks (Section III).

This subpackage is the HotSpot-v4.2-like substrate the paper extends:
a grid RC network per tier, with the paper's novelty — per-cell,
runtime-varying thermal resistivities for the interlayer material so
TSVs and coolant microchannels are modelled distinctly, and coolant
cells change conductance with the flow rate.
"""

from repro.thermal.analytic import AnalyticUnitCell, UnitCellResult
from repro.thermal.grid import Slab, SlabKind, ThermalGrid
from repro.thermal.package import AirPackage
from repro.thermal.rc_network import RCNetwork, ThermalParams, build_network
from repro.thermal.solver import (
    KRYLOV_MAX_ITERATIONS,
    KRYLOV_TEMPERATURE_TOLERANCE,
    KRYLOV_TOLERANCE,
    KrylovSteadySolver,
    KrylovTransientSolver,
    NeighborFactorCache,
    SteadyStateSolver,
    TransientSolver,
    clear_neighbor_cache,
    factorization_count,
    krylov_stats,
    neighbor_factor_cache,
    structure_signature,
)

__all__ = [
    "AnalyticUnitCell",
    "UnitCellResult",
    "ThermalGrid",
    "Slab",
    "SlabKind",
    "AirPackage",
    "ThermalParams",
    "RCNetwork",
    "build_network",
    "SteadyStateSolver",
    "TransientSolver",
    "KrylovSteadySolver",
    "KrylovTransientSolver",
    "NeighborFactorCache",
    "KRYLOV_TOLERANCE",
    "KRYLOV_TEMPERATURE_TOLERANCE",
    "KRYLOV_MAX_ITERATIONS",
    "clear_neighbor_cache",
    "factorization_count",
    "krylov_stats",
    "neighbor_factor_cache",
    "structure_signature",
]
