"""Assembly of the grid-level thermal RC network (Section III-A).

The network generalizes HotSpot's grid model to 3D stacks with
heterogeneous interlayer material, implementing the paper's two
novelties: (1) per-grid-cell thermal resistivity, so TSV regions,
plain interlayer material, and microchannels are modelled distinctly,
and (2) runtime-varying coolant-cell properties: the convective film
conductance and the advective (sensible heat) transport both depend on
the current per-cavity flow rate, and the network is rebuilt when the
pump setting changes (the simulator caches one factorization per pump
setting).

Energy balance at a coolant node f with upstream node u::

    C_f dT_f/dt = g_film * (T_wall - T_f) + m_dot*c_p * (T_u - T_f)

which makes the conductance matrix asymmetric (advection is directed);
the sparse LU solver handles this without modification. Summing the
steady-state balance along a channel row reproduces the paper's
iterative sensible-heat computation: m_dot*c_p*(T_out - T_in) equals
the absorbed heat, i.e. Eq. 4/5 generalized to non-uniform power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.constants import (
    COPPER_CONDUCTIVITY,
    MICROCHANNEL,
    SILICON_CONDUCTIVITY,
    SILICON_VOLUMETRIC_HEAT_CAPACITY,
    STACK,
)
from repro.errors import ConfigurationError, SolverError
from repro.geometry.floorplan import UnitKind
from repro.geometry.stack import CoolingKind
from repro.microchannel.geometry import ChannelGeometry
from repro.microchannel.model import MicrochannelModel
from repro.telemetry import trace as _trace
from repro.thermal.grid import SlabKind, ThermalGrid
from repro.thermal.package import AirPackage

#: Default calibrated resistance scale for the liquid path (DESIGN.md §5):
#: chosen so the hottest Table II workload (Web-high) reaches ~87.5 degC at
#: the lowest pump setting and ~77.7 degC (sensor) at the highest — Fig. 5's
#: operating band, with ~3 K of headroom under the 80 degC target for
#: thread-burst transients. See repro.sim.calibration.
DEFAULT_RESISTANCE_SCALE = 4.5

#: Default calibrated resistance scale for the air path (DESIGN.md §5):
#: puts Web-high on the air-cooled 2-layer stack at ~85 degC (sensor), at
#: the 85 degC hot-spot threshold so load bursts cross it intermittently —
#: Figure 6's regime, where the air system shows hot spots a fraction of
#: the time and thermal policies can influence them. See
#: repro.sim.calibration.
DEFAULT_AIR_RESISTANCE_SCALE = 2.9

#: Admissible coolant inlet temperatures, degC. The band covers glycol
#: mixes below freezing through pressurized hot-water loops; the paper
#: itself operates at 20-70 degC (Section IV-B / Fig. 7).
MIN_INLET_TEMPERATURE = -20.0
MAX_INLET_TEMPERATURE = 150.0


@dataclass(frozen=True)
class ThermalParams:
    """Material properties and calibration knobs of the network.

    All defaults trace to Table I/III or to the documented calibration
    (DESIGN.md section 5).
    """

    k_silicon: float = SILICON_CONDUCTIVITY
    silicon_vol_capacity: float = SILICON_VOLUMETRIC_HEAT_CAPACITY
    interlayer_conductivity: float = 1.0 / STACK.interlayer_resistivity
    interlayer_vol_capacity: float = 2.0e6
    r_beol_area: float = MICROCHANNEL.r_beol
    tsv_conductivity: float = COPPER_CONDUCTIVITY
    inlet_temperature: float = 60.0
    resistance_scale: float = DEFAULT_RESISTANCE_SCALE
    air_resistance_scale: float = DEFAULT_AIR_RESISTANCE_SCALE

    def __post_init__(self) -> None:
        if self.k_silicon <= 0.0 or self.interlayer_conductivity <= 0.0:
            raise ConfigurationError("conductivities must be positive")
        if self.resistance_scale <= 0.0 or self.air_resistance_scale <= 0.0:
            raise ConfigurationError("resistance scales must be positive")
        if not math.isfinite(self.inlet_temperature) or not (
            MIN_INLET_TEMPERATURE <= self.inlet_temperature <= MAX_INLET_TEMPERATURE
        ):
            raise ConfigurationError(
                "inlet_temperature must be a finite coolant temperature in "
                f"[{MIN_INLET_TEMPERATURE:g}, {MAX_INLET_TEMPERATURE:g}] degC "
                f"(the paper operates at 20-70 degC), got {self.inlet_temperature}"
            )


@dataclass(eq=False)
class RCNetwork:
    """An assembled thermal RC network.

    ``eq=False`` keeps instances hashable by identity, so solver caches
    can key on the network itself (e.g. via weak references).

    Attributes
    ----------
    conductance:
        Sparse (n x n) conductance matrix G (W/K); asymmetric when the
        network contains coolant advection.
    capacitance:
        Per-node heat capacities (J/K), the diagonal of C.
    boundary:
        Constant source vector b (W) from Dirichlet boundaries (coolant
        inlet, ambient); the network ODE is ``C dT/dt = -G T + P + b``.
    grid:
        The node layout this network was assembled for.
    cavity_flows:
        Per-cavity flows (m^3/s) used during assembly (empty for air).
    advection_inlets / advection_outlets / advection_conductances:
        Per-cavity coolant bookkeeping for the facility coupling: the
        inlet-column and outlet-column node indices of each cavity's
        channel rows, and the per-row advective conductance
        ``m_dot * c_p`` (W/K). Empty for air-cooled networks (and for
        the naive reference assembly, which never co-simulates).
    inlet_temperature:
        The coolant inlet temperature (degC) baked into ``boundary``
        at assembly time; reference point for
        :meth:`inlet_boundary_delta`.
    """

    conductance: sp.csr_matrix
    capacitance: np.ndarray
    boundary: np.ndarray
    grid: ThermalGrid
    cavity_flows: tuple[float, ...]
    advection_inlets: tuple[np.ndarray, ...] = ()
    advection_outlets: tuple[np.ndarray, ...] = ()
    advection_conductances: tuple[float, ...] = ()
    inlet_temperature: float = 0.0

    @property
    def n_nodes(self) -> int:
        """Number of temperature nodes."""
        return self.grid.n_nodes

    def inlet_boundary_delta(self, t_inlet: float) -> Optional[np.ndarray]:
        """Source-vector correction for running this network at a
        coolant inlet of ``t_inlet`` degC instead of the assembled one.

        The inlet enters the network ODE only through the boundary
        term ``b[inlet] += g * t_inlet`` (see ``add_advection_rows``),
        which is linear in ``t_inlet`` — so changing the inlet per
        interval is a pure right-hand-side update: add the returned
        vector to the node power and reuse the memoized factorization
        (G and C are untouched, nothing refactorizes). Returns ``None``
        when the network has no coolant rows or the requested inlet
        equals the assembled one (the fixed-inlet fast path).
        """
        if not self.advection_inlets or t_inlet == self.inlet_temperature:
            return None
        delta = np.zeros(self.n_nodes)
        shift = t_inlet - self.inlet_temperature
        for nodes, g in zip(self.advection_inlets, self.advection_conductances):
            delta[nodes] += g * shift
        return delta

    def coolant_heat_rejected(
        self, temperatures: np.ndarray, t_inlet: Optional[float] = None
    ) -> float:
        """Heat carried out of the stack by the coolant, W.

        Sensible-heat balance summed over every channel row of every
        cavity: ``sum g * (T_outlet - T_inlet)`` — the generalized
        Eq. 4/5 accounting (see :mod:`repro.thermal.validation`).
        ``t_inlet`` defaults to the assembled inlet temperature; pass
        the interval's actual inlet when co-simulating a facility.
        Returns 0 for air-cooled networks.
        """
        if not self.advection_outlets:
            return 0.0
        if t_inlet is None:
            t_inlet = self.inlet_temperature
        total = 0.0
        for nodes, g in zip(self.advection_outlets, self.advection_conductances):
            total += g * float(np.sum(temperatures[nodes] - t_inlet))
        return total


class _Assembler:
    """Accumulates conductances in COO form plus boundary couplings.

    Entries can be added one at a time (the scalar methods, used for
    the lumped package nodes and by the naive reference assembly kept
    for equivalence tests) or in array bulk (the vectorized builders).
    Both paths feed the same canonical :meth:`to_csr`, which sums
    duplicate entries in a value-sorted order per ``(row, col)`` — so
    the assembled matrix is bit-identical regardless of the order the
    couplings were emitted in.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.boundary = np.zeros(n)

    # --- scalar entry points -------------------------------------------------

    def add_coupling(self, a: int, b: int, g: float) -> None:
        """Symmetric conductance g between nodes a and b."""
        if g <= 0.0:
            raise SolverError(f"non-positive conductance {g} between {a} and {b}")
        self.rows += [a, b, a, b]
        self.cols += [a, b, b, a]
        self.vals += [g, g, -g, -g]

    def add_to_boundary(self, a: int, g: float, t_boundary: float) -> None:
        """Conductance g from node a to a fixed-temperature boundary."""
        if g <= 0.0:
            raise SolverError(f"non-positive boundary conductance {g} at node {a}")
        self.rows.append(a)
        self.cols.append(a)
        self.vals.append(g)
        self.boundary[a] += g * t_boundary

    def add_advection(self, node: int, upstream: Optional[int], g: float, t_inlet: float) -> None:
        """Directed advective transport m_dot*c_p into ``node``.

        ``upstream is None`` means the node is at the channel inlet.
        """
        if g < 0.0:
            raise SolverError("advective conductance must be non-negative")
        if g == 0.0:
            return
        self.rows.append(node)
        self.cols.append(node)
        self.vals.append(g)
        if upstream is None:
            self.boundary[node] += g * t_inlet
        else:
            self.rows.append(node)
            self.cols.append(upstream)
            self.vals.append(-g)

    # --- array-bulk entry points --------------------------------------------

    def add_couplings(self, a: np.ndarray, b: np.ndarray, g) -> None:
        """Symmetric conductances between node arrays ``a`` and ``b``.

        ``g`` is a scalar broadcast over all pairs or an array of the
        same length. Emits the same entry multiset as calling
        :meth:`add_coupling` per pair.
        """
        a = np.asarray(a, dtype=np.int64).ravel()
        b = np.asarray(b, dtype=np.int64).ravel()
        if a.shape != b.shape:
            raise SolverError("coupling node arrays must have equal length")
        if a.size == 0:
            return
        g = np.asarray(g, dtype=float)
        if g.ndim == 0:
            g = np.full(a.shape, float(g))
        else:
            g = g.ravel()
            if g.shape != a.shape:
                raise SolverError("coupling conductance array length mismatch")
        if np.any(g <= 0.0):
            k = int(np.flatnonzero(g <= 0.0)[0])
            raise SolverError(
                f"non-positive conductance {g[k]} between {a[k]} and {b[k]}"
            )
        self._chunks.append(
            (
                np.concatenate((a, b, a, b)),
                np.concatenate((a, b, b, a)),
                np.concatenate((g, g, -g, -g)),
            )
        )

    def add_advection_rows(self, nodes: np.ndarray, g: float, t_inlet: float) -> None:
        """Directed advection along every row of a slab's node grid.

        ``nodes`` is the slab's ``(ny, nx)`` node array; flow runs along
        x, so column 0 holds the inlet cells (coupled to the fixed
        inlet temperature) and every other cell is fed by its left
        neighbour. Emits the same entries as per-cell
        :meth:`add_advection` calls.
        """
        if g < 0.0:
            raise SolverError("advective conductance must be non-negative")
        if g == 0.0:
            return
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.ndim != 2:
            raise SolverError("advection expects a (ny, nx) node grid")
        inlet = nodes[:, 0].ravel()
        interior = nodes[:, 1:].ravel()
        upstream = nodes[:, :-1].ravel()
        all_nodes = nodes.ravel()
        self._chunks.append(
            (
                np.concatenate((all_nodes, interior)),
                np.concatenate((all_nodes, upstream)),
                np.concatenate(
                    (np.full(all_nodes.size, g), np.full(interior.size, -g))
                ),
            )
        )
        self.boundary[inlet] += g * t_inlet

    # --- assembly ------------------------------------------------------------

    def to_csr(self) -> sp.csr_matrix:
        """Assemble the accumulated triplets into CSR form.

        Duplicates are summed in canonical ``(row, col, value)`` order,
        so the result depends only on the multiset of emitted entries —
        never on emission order. Scalar and bulk emission paths produce
        bit-identical matrices.
        """
        parts_r = [np.asarray(self.rows, dtype=np.int64)]
        parts_c = [np.asarray(self.cols, dtype=np.int64)]
        parts_v = [np.asarray(self.vals, dtype=float)]
        for r, c, v in self._chunks:
            parts_r.append(r)
            parts_c.append(c)
            parts_v.append(v)
        rows = np.concatenate(parts_r)
        cols = np.concatenate(parts_c)
        vals = np.concatenate(parts_v)
        if rows.size == 0:
            return sp.csr_matrix((self.n, self.n))
        # One fused (row, col) key keeps the lexsort at two passes.
        combined = rows * np.int64(self.n) + cols
        order = np.lexsort((vals, combined))
        combined, vals = combined[order], vals[order]
        boundaries = np.flatnonzero(np.diff(combined))
        starts = np.concatenate(([0], boundaries + 1))
        data = np.add.reduceat(vals, starts)
        keys = combined[starts]
        indices = keys % self.n
        counts = np.bincount(keys // self.n, minlength=self.n)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return sp.csr_matrix(
            (data, indices, indptr), shape=(self.n, self.n)
        )


def _series(*resistances: float) -> float:
    """Conductance of resistances in series."""
    total = sum(resistances)
    if total <= 0.0:
        raise SolverError("series resistance must be positive")
    return 1.0 / total


def _series_array(scalar_r: float, r_array: np.ndarray) -> np.ndarray:
    """Elementwise series conductance of a scalar and an array of
    resistances (same arithmetic as :func:`_series` per element)."""
    total = scalar_r + np.asarray(r_array, dtype=float)
    if np.any(total <= 0.0):
        raise SolverError("series resistance must be positive")
    return 1.0 / total


def build_network(
    grid: ThermalGrid,
    params: ThermalParams = ThermalParams(),
    cavity_flows: Optional[Sequence[float]] = None,
    channel_model: Optional[MicrochannelModel] = None,
    package: Optional[AirPackage] = None,
) -> RCNetwork:
    """Assemble the RC network for a grid at given operating conditions.

    Parameters
    ----------
    grid:
        Node layout (stack + resolution).
    params:
        Material properties and calibration scales.
    cavity_flows:
        Liquid cooling only: per-cavity volumetric flow (m^3/s), either
        one value per cavity or a single value broadcast to all (the
        paper's pump feeds all cavities equally).
    channel_model:
        Microchannel heat-transfer model; defaults to the paper's
        geometry sized to the stack outline.
    package:
        Air cooling only: the package on top of the stack.
    """
    stack = grid.stack
    if stack.cooling is CoolingKind.LIQUID:
        if cavity_flows is None:
            raise ConfigurationError("liquid-cooled networks need cavity_flows")
        flows = _broadcast_flows(cavity_flows, stack.n_cavities)
        model = channel_model or MicrochannelModel(
            geometry=ChannelGeometry(length=stack.width),
            die_height=stack.height,
        )
        with _trace.span(
            "assemble", cooling="liquid", grid=(grid.nx, grid.ny),
            n_nodes=grid.n_nodes,
        ):
            return _build_liquid(grid, params, flows, model)
    if cavity_flows is not None:
        raise ConfigurationError("air-cooled networks take no cavity_flows")
    with _trace.span(
        "assemble", cooling="air", grid=(grid.nx, grid.ny), n_nodes=grid.n_nodes,
    ):
        return _build_air(grid, params, package or AirPackage())


def _broadcast_flows(cavity_flows: Sequence[float], n_cavities: int) -> tuple[float, ...]:
    flows = [float(f) for f in np.atleast_1d(np.asarray(cavity_flows, dtype=float))]
    if len(flows) == 1:
        flows = flows * n_cavities
    if len(flows) != n_cavities:
        raise ConfigurationError(
            f"expected {n_cavities} cavity flows, got {len(flows)}"
        )
    if any(f < 0.0 for f in flows):
        raise ConfigurationError("cavity flows must be non-negative")
    return tuple(flows)


# --- common pieces ---------------------------------------------------------


def _die_lateral(asm: _Assembler, grid: ThermalGrid, slab_idx: int, thickness: float, k: float) -> None:
    """Lateral conduction within one slab (vectorized neighbour pairs)."""
    g_x = k * thickness * grid.cell_h / grid.cell_w
    g_y = k * thickness * grid.cell_w / grid.cell_h
    nodes = grid.slab_nodes(slab_idx)
    asm.add_couplings(nodes[:, :-1], nodes[:, 1:], g_x)
    asm.add_couplings(nodes[:-1, :], nodes[1:, :], g_y)


def _die_half_resistance(grid: ThermalGrid, die_thickness: float, params: ThermalParams) -> float:
    """Half-die vertical conduction resistance of one cell, K/W."""
    return (die_thickness / 2.0) / (params.k_silicon * grid.cell_area)


def _beol_resistance(grid: ThermalGrid, params: ThermalParams, scale: float) -> float:
    """BEOL (wiring stack) resistance of one cell, K/W (Eq. 2/3)."""
    return params.r_beol_area * scale / grid.cell_area


def _tsv_mask(grid: ThermalGrid, die_index: int) -> np.ndarray:
    """Cells of a die covered by its crossbar (the TSV region)."""
    floorplan = grid.stack.dies[die_index].floorplan
    xbar_indices = [
        floorplan.units.index(u) for u in floorplan.units_of_kind(UnitKind.CROSSBAR)
    ]
    raster = grid.rasters[die_index]
    mask = np.zeros_like(raster, dtype=bool)
    for idx in xbar_indices:
        mask |= raster == idx
    return mask


def _tsv_fill_fraction(grid: ThermalGrid, die_index: int) -> float:
    """Fraction of the crossbar area occupied by copper TSVs."""
    floorplan = grid.stack.dies[die_index].floorplan
    xbar_area = sum(u.area for u in floorplan.units_of_kind(UnitKind.CROSSBAR))
    tsv_area = STACK.tsv_count_per_interface * STACK.tsv_side**2
    if xbar_area <= 0.0:
        return 0.0
    return min(1.0, tsv_area / xbar_area)


# --- liquid-cooled assembly -----------------------------------------------------


def _build_liquid(
    grid: ThermalGrid,
    params: ThermalParams,
    flows: tuple[float, ...],
    model: MicrochannelModel,
) -> RCNetwork:
    asm = _Assembler(grid.n_nodes)
    capacitance = np.zeros(grid.n_nodes)
    adv_inlets: list[np.ndarray] = []
    adv_outlets: list[np.ndarray] = []
    adv_conductances: list[float] = []
    stack = grid.stack
    scale = params.resistance_scale
    coolant = model.coolant
    geom = model.geometry
    p_eff = geom.effective_pitch(model.die_height)
    fluid_fraction = min(1.0, geom.width / p_eff)
    t_cavity = STACK.interlayer_thickness_with_channels

    # Die slabs: lateral conduction and capacitance.
    for die_index, die in enumerate(stack.dies):
        slab_idx = grid.die_slab_index(die_index)
        _die_lateral(asm, grid, slab_idx, die.thickness, params.k_silicon)
        cap = params.silicon_vol_capacity * grid.cell_area * die.thickness
        capacitance[grid.slab_nodes(slab_idx)] += cap

    # Cavity slabs: coolant advection, film coupling, wall conduction, TSVs.
    for cavity_index in range(stack.n_cavities):
        flow = flows[cavity_index]
        slab_idx = grid.cavity_slab_index(cavity_index)
        die_below = cavity_index - 1 if cavity_index > 0 else None
        die_above = cavity_index if cavity_index < stack.n_dies else None

        h_eff = model.effective_h(flow)
        g_film_side = h_eff * grid.cell_area / 2.0 / scale
        # Mass flow per grid row: the cavity's channels are uniformly
        # distributed, so each of the ny rows carries flow/ny.
        g_adv_row = coolant.mass_flow(flow / grid.ny) * coolant.heat_capacity

        fluid_volume = grid.cell_area * geom.height * fluid_fraction
        solid_volume = grid.cell_area * t_cavity - fluid_volume
        cap = (
            coolant.volumetric_heat_capacity() * fluid_volume
            + params.interlayer_vol_capacity * max(solid_volume, 0.0)
        )
        capacitance[grid.slab_nodes(slab_idx)] += cap

        # Per-cell resistances on the die sides of the film.
        r_up = {}
        r_down = {}
        if die_below is not None:
            t_d = stack.dies[die_below].thickness
            # BEOL faces up: heat from the die below crosses its BEOL.
            r_up[die_below] = _die_half_resistance(grid, t_d, params) + _beol_resistance(
                grid, params, scale
            )
        if die_above is not None:
            t_d = stack.dies[die_above].thickness
            # The die above couples downward through its silicon slab.
            r_down[die_above] = _die_half_resistance(grid, t_d, params)

        fluid_nodes = grid.slab_nodes(slab_idx)
        asm.add_advection_rows(fluid_nodes, g_adv_row, params.inlet_temperature)
        if g_adv_row > 0.0:
            adv_inlets.append(fluid_nodes[:, 0].copy())
            adv_outlets.append(fluid_nodes[:, -1].copy())
            adv_conductances.append(g_adv_row)

        if die_below is not None:
            below_nodes = grid.slab_nodes(grid.die_slab_index(die_below))
            asm.add_couplings(
                fluid_nodes, below_nodes, _series(r_up[die_below], 1.0 / g_film_side)
            )
        if die_above is not None:
            above_nodes = grid.slab_nodes(grid.die_slab_index(die_above))
            asm.add_couplings(
                fluid_nodes, above_nodes, _series(r_down[die_above], 1.0 / g_film_side)
            )
        # Solid conduction straight through the cavity between the two
        # dies (channel walls; TSV-enhanced under the crossbar). This is
        # the per-cell heterogeneous resistivity of Section III-A.
        if die_below is not None and die_above is not None:
            tsv_mask = _tsv_mask(grid, die_below)
            phi = _tsv_fill_fraction(grid, die_below)
            k_wall = (1.0 - fluid_fraction) * params.interlayer_conductivity
            k_tsv = phi * params.tsv_conductivity + k_wall
            tsv_g = k_tsv * grid.cell_area / t_cavity
            wall_g = k_wall * grid.cell_area / t_cavity
            below_nodes = grid.slab_nodes(grid.die_slab_index(die_below))
            above_nodes = grid.slab_nodes(grid.die_slab_index(die_above))
            g_solid = np.where(tsv_mask, tsv_g, wall_g)
            positive = g_solid > 0.0
            if np.any(positive):
                r_total = (
                    _die_half_resistance(grid, stack.dies[die_below].thickness, params)
                    + _beol_resistance(grid, params, scale)
                    + 1.0 / g_solid[positive]
                    + _die_half_resistance(grid, stack.dies[die_above].thickness, params)
                )
                asm.add_couplings(
                    below_nodes[positive], above_nodes[positive], 1.0 / r_total
                )

    return RCNetwork(
        conductance=asm.to_csr(),
        capacitance=capacitance,
        boundary=asm.boundary,
        grid=grid,
        cavity_flows=flows,
        advection_inlets=tuple(adv_inlets),
        advection_outlets=tuple(adv_outlets),
        advection_conductances=tuple(adv_conductances),
        inlet_temperature=params.inlet_temperature,
    )


# --- air-cooled assembly -----------------------------------------------------


def _build_air(grid: ThermalGrid, params: ThermalParams, package: AirPackage) -> RCNetwork:
    asm = _Assembler(grid.n_nodes)
    capacitance = np.zeros(grid.n_nodes)
    stack = grid.stack
    scale = params.air_resistance_scale

    for die_index, die in enumerate(stack.dies):
        slab_idx = grid.die_slab_index(die_index)
        _die_lateral(asm, grid, slab_idx, die.thickness, params.k_silicon)
        cap = params.silicon_vol_capacity * grid.cell_area * die.thickness
        capacitance[grid.slab_nodes(slab_idx)] += cap

    # Interfaces between consecutive dies (thin interlayer material +
    # TSV-enhanced crossbar region).
    for slab_idx, slab in enumerate(grid.slabs):
        if slab.kind is not SlabKind.INTERFACE:
            continue
        die_below = slab.cavity_index
        die_above = die_below + 1
        t_if = slab.thickness
        cap = params.interlayer_vol_capacity * grid.cell_area * t_if
        capacitance[grid.slab_nodes(slab_idx)] += cap
        tsv_mask = _tsv_mask(grid, die_below)
        phi = _tsv_fill_fraction(grid, die_below)
        k_plain = params.interlayer_conductivity
        k_tsv = phi * params.tsv_conductivity + (1.0 - phi) * k_plain
        r_below_half = (
            _die_half_resistance(grid, stack.dies[die_below].thickness, params)
            + _beol_resistance(grid, params, scale)
        )
        r_above_half = _die_half_resistance(grid, stack.dies[die_above].thickness, params)
        if_nodes = grid.slab_nodes(slab_idx)
        below_nodes = grid.slab_nodes(grid.die_slab_index(die_below))
        above_nodes = grid.slab_nodes(grid.die_slab_index(die_above))
        k_cell = np.where(tsv_mask, k_tsv, k_plain)
        r_half_if = (t_if / 2.0) / (k_cell * grid.cell_area)
        asm.add_couplings(if_nodes, below_nodes, _series_array(r_below_half, r_half_if))
        asm.add_couplings(if_nodes, above_nodes, _series_array(r_above_half, r_half_if))

    # Package on top of the topmost die.
    top_die = stack.n_dies - 1
    top_slab = grid.die_slab_index(top_die)
    t_top = stack.dies[top_die].thickness
    r_cell_to_spreader = (
        _die_half_resistance(grid, t_top, params)
        + _beol_resistance(grid, params, scale)
        + package.tim_resistance_area * scale / grid.cell_area
    )
    top_nodes = grid.slab_nodes(top_slab).ravel()
    asm.add_couplings(
        top_nodes,
        np.full(top_nodes.size, grid.spreader_node),
        1.0 / r_cell_to_spreader,
    )
    asm.add_coupling(grid.spreader_node, grid.sink_node, 1.0 / package.spreader_resistance)
    asm.add_to_boundary(grid.sink_node, 1.0 / package.sink_resistance, package.ambient)
    capacitance[grid.spreader_node] += package.spreader_capacitance
    capacitance[grid.sink_node] += package.sink_capacitance

    return RCNetwork(
        conductance=asm.to_csr(),
        capacitance=capacitance,
        boundary=asm.boundary,
        grid=grid,
        cavity_flows=(),
    )
