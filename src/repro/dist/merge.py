"""Deterministic merge of shard journals into campaign results.

The merger never simulates. It reads every shard journal in canonical
run-index order and replays each run's journaled aggregator fold
payloads (:meth:`~repro.sweep.aggregate.Aggregator.update_payload`)
into aggregators rebuilt from the ledger header — the *same float
operations in the same order* a single-host
:class:`~repro.sweep.runner.SweepRunner` would have performed, so the
merged aggregates, CSV, and completion JSON are byte-identical to a
one-process run of the same spec, however the campaign was sharded and
in whatever order workers finished.

:func:`campaign_status` is the read-only side: per-shard
done/leased/stale/pending accounting for the ``repro dist status`` CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.io.dist import (
    Ledger,
    Shard,
    read_lease,
    read_ledger,
    read_shard_journal,
)
from repro.io.sweep import save_sweep_json, write_sweep_csv
from repro.sweep.aggregate import (
    Aggregator,
    aggregate_tables,
    aggregator_from_spec,
)
from repro.telemetry.metrics import MetricsRegistry


@dataclass
class MergeResult:
    """A merged campaign: rows + aggregators, ready to export.

    Mirrors :class:`~repro.sweep.runner.SweepResult` where it matters:
    ``rows`` are the deterministic export rows in run-index order and
    ``save_json`` writes the identical completion payload.
    """

    name: str
    fingerprint: str
    n_runs: int
    folded: int
    rows: list[dict]
    aggregators: list[Aggregator]
    shards_merged: int = 0
    shards_missing: list[str] = field(default_factory=list)
    #: Complete shards that could not fold because an earlier shard is
    #: missing (replay is order-sensitive, so a gap ends a partial merge).
    shards_skipped: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Campaign-wide metrics snapshot summed from the per-shard deltas
    #: telemetry-enabled workers journal (``None`` when no merged shard
    #: carried one — i.e. the campaign ran with telemetry off).
    telemetry: Optional[dict] = None

    @property
    def complete(self) -> bool:
        return self.folded >= self.n_runs

    def aggregate_rows(self) -> dict[str, list[dict]]:
        """Rendered aggregate tables, keyed exactly as a sweep's."""
        return aggregate_tables(self.aggregators)

    def save_json(self, path: Union[str, Path]) -> None:
        """Write the completion JSON (byte-identical to the single-host
        :meth:`~repro.sweep.runner.SweepResult.save_json`)."""
        save_sweep_json(
            self.rows,
            self.aggregate_rows(),
            path,
            name=self.name,
            fingerprint=self.fingerprint,
        )

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the per-run CSV (byte-identical to a streamed one)."""
        write_sweep_csv(self.rows, path)


def merge_campaign(
    directory: Union[str, Path], allow_partial: bool = False
) -> MergeResult:
    """Fold a campaign's shard journals into the final aggregates.

    All shards must be complete unless ``allow_partial`` — in which
    case only the contiguous complete *prefix* of shards is folded
    (aggregator replay is order-sensitive, so a gap ends the fold);
    incomplete shards are reported in ``shards_missing`` and complete
    shards stranded beyond the first gap in ``shards_skipped``.
    """
    ledger = read_ledger(directory)
    journals = []
    missing = []
    for shard in ledger.shards:
        journal = read_shard_journal(
            ledger.shard_journal_path(shard), shard, ledger.fingerprint
        )
        if journal is None or not journal.complete:
            missing.append(shard.shard_id)
            journals.append(None)
        else:
            journals.append(journal)
    if missing and not allow_partial:
        raise ConfigurationError(
            f"campaign {ledger.directory} has {len(missing)} incomplete "
            f"shard(s) ({', '.join(missing[:3])}{'...' if len(missing) > 3 else ''}); "
            "run more workers, or merge --partial for the finished prefix"
        )
    aggregators = [aggregator_from_spec(s) for s in ledger.aggregator_specs]
    rows: list[dict] = []
    elapsed = 0.0
    shards_merged = 0
    skipped: list[str] = []
    # Per-shard metric deltas (journaled only by telemetry-enabled
    # workers) sum into one campaign-wide snapshot through a private
    # registry — never the process one, so merging a campaign does not
    # pollute the merger's own counters.
    telemetry_registry = MetricsRegistry()
    saw_telemetry = False
    folding = True
    for shard, journal in zip(ledger.shards, journals):
        if journal is None:
            folding = False  # A gap ends the (order-sensitive) fold.
            continue
        if not folding:
            skipped.append(shard.shard_id)
            continue
        _validate_journal(ledger, shard, journal, len(aggregators))
        for row, payloads, seconds in zip(
            journal.rows, journal.payloads, journal.elapsed
        ):
            rows.append(row)
            for i, agg in enumerate(aggregators):
                agg.update_payload(payloads[str(i)])
            elapsed += seconds
        if journal.telemetry is not None:
            telemetry_registry.merge(journal.telemetry)
            saw_telemetry = True
        shards_merged += 1
    return MergeResult(
        name=ledger.name,
        fingerprint=ledger.fingerprint,
        n_runs=ledger.n_runs,
        folded=len(rows),
        rows=rows,
        aggregators=aggregators,
        shards_merged=shards_merged,
        shards_missing=missing,
        shards_skipped=skipped,
        elapsed_s=elapsed,
        telemetry=telemetry_registry.snapshot() if saw_telemetry else None,
    )


def _validate_journal(
    ledger: Ledger, shard: Shard, journal, n_aggregators: int
) -> None:
    """A complete journal must cover exactly its shard's run range."""
    indices = [row.get("run") for row in journal.rows]
    if indices != list(range(shard.start, shard.stop)):
        raise ConfigurationError(
            f"shard {shard.shard_id} journal covers runs {indices[:3]}..., "
            f"expected [{shard.start}, {shard.stop}); re-run the shard "
            "after deleting its journal"
        )
    for payloads in journal.payloads:
        missing = [str(i) for i in range(n_aggregators) if str(i) not in payloads]
        if missing:
            raise ConfigurationError(
                f"shard {shard.shard_id} journal lacks fold payloads for "
                f"aggregator(s) {', '.join(missing)}; it was written by an "
                "incompatible planner"
            )


# --- status ----------------------------------------------------------------


@dataclass
class ShardState:
    """One shard's live state, for status displays."""

    shard: Shard
    state: str  # done | running | stale | pending
    worker: str = ""
    runs_journaled: int = 0
    #: Sum of the shard journal's per-run wall times (0 when nothing
    #: has been journaled yet).
    elapsed_s: float = 0.0
    #: Seconds since the holding worker last refreshed its lease;
    #: ``None`` for done/pending shards (no live lease to age).
    heartbeat_age_s: Optional[float] = None


@dataclass
class CampaignStatus:
    """What a campaign directory says about its progress."""

    name: str
    fingerprint: str
    n_runs: int
    n_shards: int
    shards: list[ShardState]

    def count(self, state: str) -> int:
        return sum(1 for s in self.shards if s.state == state)

    @property
    def runs_done(self) -> int:
        return sum(
            s.shard.n_runs for s in self.shards if s.state == "done"
        )

    @property
    def complete(self) -> bool:
        return self.count("done") == self.n_shards


def campaign_status(directory: Union[str, Path]) -> CampaignStatus:
    """Summarize a campaign without touching any lease or journal."""
    ledger = read_ledger(directory)
    now = time.time()
    states = []
    for shard in ledger.shards:
        journal = read_shard_journal(
            ledger.shard_journal_path(shard), shard, ledger.fingerprint
        )
        journaled = journal.n_runs if journal is not None else 0
        elapsed = journal.elapsed_s if journal is not None else 0.0
        if journal is not None and journal.complete:
            states.append(
                ShardState(shard, "done", journal.worker, journaled, elapsed)
            )
            continue
        lease = read_lease(ledger.lease_path(shard))
        if lease is None:
            states.append(ShardState(shard, "pending", "", journaled, elapsed))
        else:
            state = "stale" if lease.stale(now) else "running"
            states.append(
                ShardState(
                    shard, state, lease.worker, journaled, elapsed,
                    heartbeat_age_s=lease.heartbeat_age(now),
                )
            )
    return CampaignStatus(
        name=ledger.name,
        fingerprint=ledger.fingerprint,
        n_runs=ledger.n_runs,
        n_shards=len(ledger.shards),
        shards=states,
    )
