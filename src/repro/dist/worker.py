"""Worker loop: claim shard leases, execute chunks, journal results.

A worker is stateless by design — everything it needs is in the
campaign directory. It scans the ledger's shards in canonical order,
claims the first claimable lease (reclaiming stale ones left by
crashed workers), executes the shard's runs through
:class:`~repro.runner.BatchRunner` with one
:class:`~repro.sim.cache.CharacterizationCache` pre-warmed and kept
across chunks, and journals each run's export row plus its
per-aggregator fold payloads. The journal's final ``complete`` line is
the only thing that marks a shard done, so a worker killed anywhere
mid-chunk leaves work that is simply re-executed by whoever reclaims
the lease — determinism makes the re-execution indistinguishable.

Run any number of these concurrently, on any number of hosts sharing
the directory; ``repro dist work`` is the CLI face.
"""

from __future__ import annotations

import contextlib
import os
import socket
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional, Union

from repro.dist.plan import ledger_spec
from repro.errors import ConfigurationError
from repro.io.dist import (
    Ledger,
    Shard,
    read_lease,
    read_ledger,
    read_shard_journal,
    reclaim_stale_lease,
    refresh_lease,
    release_lease,
    open_shard_journal,
    try_claim_lease,
)
from repro.runner.batch import BatchRunner
from repro.sim.cache import CharacterizationCache
from repro.sweep.aggregate import Aggregator, aggregator_from_spec
from repro.sweep.runner import FoldReducer
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

#: Default seconds a lease stays valid without a refresh. Refreshes
#: happen after every run, so this only needs to exceed one *run*, not
#: one chunk.
DEFAULT_LEASE_TTL = 300.0


class _LeaseLost(Exception):
    """This worker's lease expired and another worker reclaimed it."""


@dataclass
class WorkerReport:
    """What one :func:`run_worker` session did."""

    worker_id: str
    shards_executed: list[str] = field(default_factory=list)
    shards_reclaimed: list[str] = field(default_factory=list)
    runs_executed: int = 0
    wall_time: float = 0.0


def default_worker_id() -> str:
    """host:pid — unique across the hosts sharing a campaign directory."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _execute_shard(
    ledger: Ledger,
    spec: SweepSpec,
    aggregators: list[Aggregator],
    shard: Shard,
    cache: CharacterizationCache,
    worker_id: str,
    lease_ttl: float,
    max_workers: Optional[int],
    progress: Optional[Callable[[SweepPoint, int, float], None]],
    cohort: str = "auto",
    solver: Optional[str] = None,
) -> int:
    """Run one shard's chunk and journal it; returns runs executed."""
    chunk = list(spec.iter_points(shard.start, shard.stop))
    lease_path = ledger.lease_path(shard)
    metrics_before = _metrics.snapshot()
    appender = open_shard_journal(
        ledger.shard_journal_path(shard), ledger.fingerprint, shard, worker_id
    )
    try:
        configs = [
            point.config if solver is None
            else replace(point.config, solver=solver)
            for point in chunk
        ]
        batch = BatchRunner(
            configs,
            max_workers=max_workers,
            cache=cache,
            cohort=cohort,
        )
        # Runs sharing a thermal kernel execute as one cohort, and each
        # run collapses to its row + fold payloads on whatever process
        # executed it (payload-only transport) — the journal line is
        # byte-identical to the historical full-result path because
        # sweep_row/fold_payload are pure functions of (point, result).
        reducer = FoldReducer([agg.spec() for agg in aggregators])
        tags = [(point.index, point.key) for point in chunk]
        with contextlib.closing(batch.iter_reduced(reducer, tags)) as runs:
            for point, run in zip(chunk, runs):
                row = run.payload["row"]
                payloads = run.payload["agg"]
                # Re-assert ownership *before* touching the journal:
                # a lost lease means another worker reclaimed the shard
                # and owns its journal now, so this attempt must stop
                # writing immediately and never finalize.
                if not refresh_lease(lease_path, worker_id, lease_ttl):
                    raise _LeaseLost(shard.shard_id)
                appender.append(
                    {
                        "kind": "run",
                        "index": point.index,
                        "key": point.key,
                        "row": row,
                        "agg": payloads,
                        "elapsed_s": run.elapsed,
                    }
                )
                if progress is not None:
                    progress(point, shard.index, run.elapsed)
        if not refresh_lease(lease_path, worker_id, lease_ttl):
            raise _LeaseLost(shard.shard_id)
        # With telemetry enabled the shard journals its metric delta so
        # the merger can report a campaign-wide breakdown; disabled (the
        # default), the journal stays byte-identical to the historical
        # format.
        if _trace.enabled():
            appender.append(
                {
                    "kind": "telemetry",
                    "worker": worker_id,
                    "metrics": _metrics.snapshot_diff(
                        metrics_before, _metrics.snapshot()
                    ),
                }
            )
        appender.append(
            {"kind": "complete", "shard": shard.shard_id, "n_runs": len(chunk)}
        )
    finally:
        appender.close()
    return len(chunk)


def run_worker(
    directory: Union[str, Path],
    worker_id: Optional[str] = None,
    max_workers: Optional[int] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_shards: Optional[int] = None,
    poll_interval: float = 0.5,
    wait: bool = True,
    progress: Optional[Callable[[SweepPoint, int, float], None]] = None,
    cohort: str = "auto",
    solver: Optional[str] = None,
) -> WorkerReport:
    """Work a campaign until it is done (or ``max_shards`` is reached).

    Parameters
    ----------
    directory:
        The campaign directory (``repro dist plan`` output), shared
        with every other worker.
    worker_id:
        Identity recorded in leases/journals; defaults to host:pid.
    max_workers:
        Process fan-out *within* each chunk, as for
        :class:`~repro.runner.BatchRunner` (``None``/1 = serial).
    lease_ttl:
        Seconds before an unrefreshed lease counts as stale. Leases
        refresh after every run, so this bounds how long a *crashed*
        worker blocks its shard, and must exceed one run's wall time.
    max_shards:
        Execute at most this many shards this session, then return.
    poll_interval:
        Seconds to sleep between scans while other workers hold all
        remaining shards.
    wait:
        When ``False``, return as soon as a scan claims nothing
        instead of waiting for other workers' shards to finish.
    progress:
        Callback ``(point, shard_index, elapsed_s)`` per completed run.
    cohort:
        Thermal-cohort grouping within each shard, as for
        :class:`~repro.runner.BatchRunner` (``"auto"`` — the default —
        shares each cohort's kernel byte-identically; ``"off"``
        restores the per-run path; ``"block"`` enables the multi-RHS
        kernel, LU-roundoff-equivalent rather than byte-identical, so
        merged campaigns lose the bitwise guarantee).
    solver:
        When set (``"exact"`` or ``"krylov"``), override every run's
        thermal-solver tier for this worker session. ``"krylov"``
        trades bitwise identity for neighbor-LU preconditioner reuse
        across thermal-parameter design points (agreement within
        :data:`repro.thermal.solver.KRYLOV_TEMPERATURE_TOLERANCE`), so
        campaigns merged from krylov workers lose the bitwise
        guarantee exactly as ``cohort="block"`` does. ``None`` (the
        default) runs each config as planned.
    """
    if solver is not None and solver not in ("exact", "krylov"):
        raise ConfigurationError(
            f"solver must be 'exact' or 'krylov', got {solver!r}"
        )
    if lease_ttl <= 0:
        raise ConfigurationError("lease_ttl must be positive")
    if max_shards is not None and max_shards < 1:
        raise ConfigurationError("max_shards must be >= 1")
    start = time.perf_counter()
    ledger = read_ledger(directory)
    spec = ledger_spec(ledger)
    aggregators = [aggregator_from_spec(s) for s in ledger.aggregator_specs]
    cache = CharacterizationCache()
    report = WorkerReport(worker_id=worker_id or default_worker_id())
    # Completeness is monotonic, so remember finished shards across
    # scans: a waiting worker must not re-parse every done journal
    # (O(campaign output)) once per poll interval.
    done: set[str] = set()

    while True:
        claimed_any = False
        all_done = True
        for shard in ledger.shards:
            if shard.shard_id in done:
                continue
            # Check the (tiny) lease file before touching the journal:
            # a validly-held shard's growing journal must not be
            # re-parsed on every poll by every waiting worker.
            lease_path = ledger.lease_path(shard)
            held = read_lease(lease_path)
            if held is not None and not held.stale(time.time()):
                all_done = False
                continue  # Validly leased by someone else.
            journal = read_shard_journal(
                ledger.shard_journal_path(shard), shard, ledger.fingerprint
            )
            if journal is not None and journal.complete:
                if held is not None:
                    # Crashed after completing but before releasing:
                    # retire the stale lease so it stops drawing scans.
                    reclaim_stale_lease(lease_path)
                done.add(shard.shard_id)
                continue
            all_done = False
            if held is not None:
                if reclaim_stale_lease(lease_path):
                    report.shards_reclaimed.append(shard.shard_id)
                else:
                    continue  # Lost the reclaim race (or it refreshed).
            lease = try_claim_lease(lease_path, report.worker_id, lease_ttl)
            if lease is None:
                continue  # Lost the claim race.
            claimed_any = True
            try:
                # Re-check under the lease: the shard may have been
                # finished between our scan and our claim.
                journal = read_shard_journal(
                    ledger.shard_journal_path(shard), shard, ledger.fingerprint
                )
                if journal is None or not journal.complete:
                    report.runs_executed += _execute_shard(
                        ledger, spec, aggregators, shard, cache,
                        report.worker_id, lease_ttl, max_workers, progress,
                        cohort, solver,
                    )
                    report.shards_executed.append(shard.shard_id)
                done.add(shard.shard_id)
            except _LeaseLost:
                pass  # The reclaimer owns the shard now; move on.
            finally:
                # Owner-checked: after _LeaseLost (or a silent expiry)
                # the lease belongs to the reclaiming worker and must
                # survive this release.
                release_lease(lease_path, worker=report.worker_id)
            if (
                max_shards is not None
                and len(report.shards_executed) >= max_shards
            ):
                report.wall_time = time.perf_counter() - start
                return report
        if all_done or (not claimed_any and not wait):
            report.wall_time = time.perf_counter() - start
            return report
        if not claimed_any:
            time.sleep(poll_interval)
