"""Distributed campaigns: shard a sweep across workers and hosts.

The execution tier above :mod:`repro.sweep` for campaigns too large
for one process — the paper's policy x flow x geometry matrices at
scale, and every multi-host fan-out after them. The flow is three
idempotent stages over a shared campaign directory:

1. :func:`plan_campaign` shards a :class:`~repro.sweep.spec.SweepSpec`'s
   lazy expansion into leased chunks and writes the work ledger
   (``repro dist plan``);
2. any number of :func:`run_worker` loops — processes, containers,
   hosts — claim shard leases, execute their runs through
   :class:`~repro.runner.BatchRunner`, and journal rows plus
   aggregator fold payloads per shard (``repro dist work``). Crashed
   workers' leases go stale and are reclaimed automatically;
3. :func:`merge_campaign` folds the shard journals in canonical
   run-index order into the standard aggregators (``repro dist
   merge``), producing aggregates, CSV, and completion JSON
   *byte-identical* to a single-host
   :class:`~repro.sweep.runner.SweepRunner` run of the same spec.

See :mod:`repro.io.dist` for the ledger/journal/lease formats and
:mod:`repro.sweep.aggregate` for the fold-payload replay that makes
the merge exact.
"""

from repro.dist.merge import (
    CampaignStatus,
    MergeResult,
    ShardState,
    campaign_status,
    merge_campaign,
)
from repro.dist.plan import DEFAULT_CHUNK_SIZE, CampaignPlan, plan_campaign
from repro.dist.worker import WorkerReport, run_worker
from repro.io.dist import Ledger, Shard, read_ledger, shard_fingerprint

__all__ = [
    "plan_campaign",
    "CampaignPlan",
    "DEFAULT_CHUNK_SIZE",
    "run_worker",
    "WorkerReport",
    "merge_campaign",
    "MergeResult",
    "campaign_status",
    "CampaignStatus",
    "ShardState",
    "Ledger",
    "Shard",
    "read_ledger",
    "shard_fingerprint",
]
