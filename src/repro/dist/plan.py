"""Campaign planning: shard a sweep spec into a leased work ledger.

The planner is pure bookkeeping — no simulation runs here. It tiles
the spec's run-index range ``[0, run_count)`` into fixed-size chunks,
derives each shard's fingerprint from the spec's SHA-256 fingerprint
plus its range, and writes the ledger (with the full spec payload
embedded) into the campaign directory. Planning the same spec into the
same directory twice is a no-op, so experiment drivers can call it
unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.io.dist import (
    DIST_VERSION,
    LEDGER_FORMAT,
    Ledger,
    Shard,
    read_ledger,
    shard_fingerprint,
    write_ledger,
)
from repro.sweep.aggregate import Aggregator, default_aggregators
from repro.sweep.spec import SweepSpec

#: Default runs per shard: small enough that a handful of workers keep
#: busy on a fig-sized campaign (tens to hundreds of runs), large
#: enough that lease/journal bookkeeping is noise against simulation.
DEFAULT_CHUNK_SIZE = 16


@dataclass
class CampaignPlan:
    """What :func:`plan_campaign` wrote (or found already written)."""

    directory: Path
    name: str
    fingerprint: str
    n_runs: int
    chunk_size: int
    shards: list[Shard]
    existing: bool = False

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def describe(self) -> str:
        """One-line human summary for the CLI."""
        label = self.name or "campaign"
        state = "already planned" if self.existing else "planned"
        return (
            f"{label}: {state} — {self.n_runs} runs in {self.n_shards} "
            f"shard(s) of <= {self.chunk_size} at {self.directory}"
        )


def plan_shards(fingerprint: str, n_runs: int, chunk_size: int) -> list[Shard]:
    """Tile ``[0, n_runs)`` into chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")
    shards = []
    for index, start in enumerate(range(0, n_runs, chunk_size)):
        stop = min(start + chunk_size, n_runs)
        shards.append(
            Shard(
                index=index,
                shard_id=shard_fingerprint(fingerprint, start, stop),
                start=start,
                stop=stop,
            )
        )
    return shards


def plan_campaign(
    spec: SweepSpec,
    directory: Union[str, Path],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    aggregators: Optional[Sequence[Aggregator]] = None,
) -> CampaignPlan:
    """Write a campaign ledger for ``spec`` into ``directory``.

    The whole expansion is validated up front (a bad axis value must
    fail at plan time, not on some worker hours later). Re-planning the
    identical campaign — same spec fingerprint, same chunking — into an
    existing directory returns the existing plan untouched; anything
    else already living there is refused.
    """
    spec.validate_all()
    directory = Path(directory)
    fingerprint = spec.fingerprint()
    aggregator_specs = [
        agg.spec()
        for agg in (default_aggregators() if aggregators is None else aggregators)
    ]
    if (directory / "ledger.jsonl").exists():
        ledger = read_ledger(directory)
        if ledger.fingerprint != fingerprint:
            raise ConfigurationError(
                f"{directory} already holds a different campaign "
                f"(fingerprint {ledger.fingerprint[:12]}... vs this "
                f"spec's {fingerprint[:12]}...); choose another directory"
            )
        if ledger.chunk_size != chunk_size:
            raise ConfigurationError(
                f"{directory} already plans this campaign with chunk_size="
                f"{ledger.chunk_size}, not {chunk_size}; workers must all "
                "see one shard layout"
            )
        if ledger.aggregator_specs != aggregator_specs:
            raise ConfigurationError(
                f"{directory} already plans this campaign with a different "
                "aggregator set; workers journal fold payloads for the "
                "planned reducers, so re-plan into a fresh directory"
            )
        return CampaignPlan(
            directory=directory,
            name=ledger.name,
            fingerprint=ledger.fingerprint,
            n_runs=ledger.n_runs,
            chunk_size=ledger.chunk_size,
            shards=ledger.shards,
            existing=True,
        )
    shards = plan_shards(fingerprint, spec.run_count, chunk_size)
    header = {
        "kind": "header",
        "format": LEDGER_FORMAT,
        "version": DIST_VERSION,
        "name": spec.name,
        "fingerprint": fingerprint,
        "n_runs": spec.run_count,
        "chunk_size": chunk_size,
        "n_shards": len(shards),
        "spec": spec.to_dict(),
        "aggregators": aggregator_specs,
    }
    write_ledger(directory, header, shards)
    return CampaignPlan(
        directory=directory,
        name=spec.name,
        fingerprint=fingerprint,
        n_runs=spec.run_count,
        chunk_size=chunk_size,
        shards=shards,
    )


def ledger_spec(ledger: Ledger) -> SweepSpec:
    """Reconstruct the campaign's spec from its ledger, verified.

    The embedded payload must round-trip to the fingerprint the ledger
    declares — a mismatch means a hand-edited or corrupted ledger, and
    executing it would silently produce a different campaign.
    """
    spec = SweepSpec.from_dict(ledger.spec_payload)
    if spec.fingerprint() != ledger.fingerprint:
        raise ConfigurationError(
            f"ledger {ledger.directory} spec payload does not match its "
            f"declared fingerprint; the ledger is corrupt"
        )
    return spec
