"""Unit conversion helpers.

The library uses SI units internally everywhere:

* lengths in metres, areas in m^2, volumes in m^3
* temperatures in degrees Celsius (differences in kelvin)
* power in watts, energy in joules
* volumetric flow rates in m^3/s
* time in seconds

The paper quotes flow rates in litres/hour (pump), litres/minute and
millilitres/minute (per cavity), and lengths in micrometres and
millimetres; these helpers convert between the paper's units and SI so
the conversion factors live in exactly one place.
"""

from __future__ import annotations

# --- length ---------------------------------------------------------------

MICROMETRE = 1.0e-6
MILLIMETRE = 1.0e-3


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * MICROMETRE


def mm(value: float) -> float:
    """Convert millimetres to metres."""
    return value * MILLIMETRE


def mm2(value: float) -> float:
    """Convert square millimetres to square metres."""
    return value * MILLIMETRE**2


def to_mm(value_m: float) -> float:
    """Convert metres to millimetres."""
    return value_m / MILLIMETRE


def to_mm2(value_m2: float) -> float:
    """Convert square metres to square millimetres."""
    return value_m2 / MILLIMETRE**2


# --- volumetric flow rate ---------------------------------------------------

LITRE = 1.0e-3  # m^3
MILLILITRE = 1.0e-6  # m^3
MINUTE = 60.0  # s
HOUR = 3600.0  # s


def litres_per_hour(value: float) -> float:
    """Convert l/h (the pump datasheet unit) to m^3/s."""
    return value * LITRE / HOUR


def litres_per_minute(value: float) -> float:
    """Convert l/min (Table I's per-cavity unit) to m^3/s."""
    return value * LITRE / MINUTE


def ml_per_minute(value: float) -> float:
    """Convert ml/min (Figure 3/5's per-cavity unit) to m^3/s."""
    return value * MILLILITRE / MINUTE


def to_litres_per_hour(value_m3s: float) -> float:
    """Convert m^3/s to l/h."""
    return value_m3s * HOUR / LITRE


def to_litres_per_minute(value_m3s: float) -> float:
    """Convert m^3/s to l/min."""
    return value_m3s * MINUTE / LITRE


def to_ml_per_minute(value_m3s: float) -> float:
    """Convert m^3/s to ml/min."""
    return value_m3s * MINUTE / MILLILITRE


# --- heat flux ---------------------------------------------------------------


def w_per_cm2(value: float) -> float:
    """Convert W/cm^2 (the paper's heat-flux unit) to W/m^2."""
    return value * 1.0e4


def to_w_per_cm2(value_w_m2: float) -> float:
    """Convert W/m^2 to W/cm^2."""
    return value_w_m2 * 1.0e-4


# --- per-area thermal resistance ---------------------------------------------


def k_mm2_per_w(value: float) -> float:
    """Convert K*mm^2/W (Table I's R_BEOL unit) to K*m^2/W."""
    return value * MILLIMETRE**2


def to_k_mm2_per_w(value_si: float) -> float:
    """Convert K*m^2/W to K*mm^2/W."""
    return value_si / MILLIMETRE**2


# --- time ---------------------------------------------------------------------


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1.0e-3


def to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds."""
    return value_s * 1.0e3
