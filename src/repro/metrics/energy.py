"""Energy accounting (Figures 6 and 8).

The figures normalize chip and pump energy "with respect to the load
balancing policy on a system with air cooling"; fan energy of the air
system is explicitly out of scope in the paper and therefore here too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Chip/pump/total energy of one run, with normalization helpers."""

    chip: float
    pump: float

    @property
    def total(self) -> float:
        """Chip + pump energy, J."""
        return self.chip + self.pump

    @classmethod
    def from_result(cls, result: SimulationResult) -> "EnergyBreakdown":
        """Extract the breakdown from a simulation result."""
        return cls(chip=result.chip_energy(), pump=result.pump_energy())

    def normalized(self, baseline: "EnergyBreakdown") -> "EnergyBreakdown":
        """Both components normalized to a baseline's *chip* energy.

        This matches the figures: the unit of the y axis is the
        baseline policy's chip energy.
        """
        if baseline.chip <= 0.0:
            raise ConfigurationError("baseline chip energy must be positive")
        return EnergyBreakdown(
            chip=self.chip / baseline.chip, pump=self.pump / baseline.chip
        )


def cooling_energy_savings(variable: EnergyBreakdown, max_flow: EnergyBreakdown) -> float:
    """Fractional pump-energy reduction of variable flow vs maximum flow."""
    if max_flow.pump <= 0.0:
        raise ConfigurationError("max-flow pump energy must be positive")
    return (max_flow.pump - variable.pump) / max_flow.pump


def total_energy_savings(variable: EnergyBreakdown, max_flow: EnergyBreakdown) -> float:
    """Fractional total (chip+pump) energy reduction vs maximum flow."""
    if max_flow.total <= 0.0:
        raise ConfigurationError("max-flow total energy must be positive")
    return (max_flow.total - variable.total) / max_flow.total
