"""Performance metric: thread throughput (Figure 8).

"Throughput is the number of threads completed per given time. As we
run the same workloads in all experiments, when a policy delays
execution of threads, the resulting throughput drops."
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult


def normalized_throughput(result: SimulationResult, baseline: SimulationResult) -> float:
    """Throughput relative to a baseline run of the same workload."""
    base = baseline.throughput()
    if base <= 0.0:
        raise ConfigurationError("baseline completed no threads")
    return result.throughput() / base


def normalized_sojourn(result: SimulationResult, baseline: SimulationResult) -> float:
    """Mean thread sojourn time relative to a baseline run.

    Values above 1 mean threads waited longer (worse). More sensitive
    than throughput: queueing delay and migration penalties appear here
    even while the completion count is unchanged.
    """
    base = baseline.mean_sojourn_time()
    mine = result.mean_sojourn_time()
    if not base > 0.0:
        raise ConfigurationError("baseline completed no threads")
    if not mine > 0.0:
        raise ConfigurationError("result completed no threads")
    return mine / base
