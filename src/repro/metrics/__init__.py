"""Evaluation metrics for Figures 6-8, plus reliability proxies."""

from repro.metrics.energy import EnergyBreakdown
from repro.metrics.performance import normalized_sojourn, normalized_throughput
from repro.metrics.reliability import (
    coffin_manson_damage,
    electromigration_acceleration,
    relative_mttf,
)
from repro.metrics.thermal_metrics import (
    count_thermal_cycles,
    hotspot_frequency,
    spatial_gradient_frequency,
    thermal_cycle_frequency,
)

__all__ = [
    "hotspot_frequency",
    "spatial_gradient_frequency",
    "thermal_cycle_frequency",
    "count_thermal_cycles",
    "EnergyBreakdown",
    "normalized_throughput",
    "normalized_sojourn",
    "coffin_manson_damage",
    "electromigration_acceleration",
    "relative_mttf",
]
