"""Thermal metrics: hot spots, spatial gradients, thermal cycles.

Definitions follow Section V:

* hot spots — percentage of sampling intervals with the maximum
  temperature above the 85 degC threshold;
* spatial gradients — "the maximum difference in temperature among all
  the units at every sampling interval", counted when above 15 degC;
* thermal cycles — per-core temperature swings; "we keep a sliding
  history window for each core, and compute the cycles with magnitude
  larger than 20 degC". Cycles are extracted from the sequence of local
  extrema (the standard simplification of rainflow counting for
  single-threshold queries).
"""

from __future__ import annotations

import numpy as np

from repro.constants import CONTROL
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult


def hotspot_frequency(
    result: SimulationResult, threshold: float = CONTROL.hotspot_threshold
) -> float:
    """Percentage of samples whose T_max exceeds the threshold."""
    return 100.0 * result.time_above(threshold)


def spatial_gradient_frequency(
    result: SimulationResult,
    threshold: float = CONTROL.spatial_gradient_threshold,
) -> float:
    """Percentage of samples with a unit-to-unit spread above threshold."""
    temps = result.unit_temperatures
    if temps.size == 0:
        return 0.0
    spread = temps.max(axis=1) - temps.min(axis=1)
    return 100.0 * float(np.mean(spread > threshold))


def _local_extrema(series: np.ndarray) -> np.ndarray:
    """Values of the series at its turning points (incl. endpoints).

    Consecutive repeats are compressed first so plateaus at a peak or
    valley do not hide the turning point.
    """
    if len(series) < 2:
        return series.copy()
    mask = np.ones(len(series), dtype=bool)
    mask[1:] = np.diff(series) != 0.0
    compressed = series[mask]
    if len(compressed) < 3:
        return compressed
    diffs = np.diff(compressed)
    keep = [0]
    for i in range(1, len(compressed) - 1):
        if np.sign(diffs[i - 1]) != np.sign(diffs[i]):
            keep.append(i)
    keep.append(len(compressed) - 1)
    return compressed[np.asarray(keep)]


def count_thermal_cycles(series: np.ndarray, threshold: float) -> int:
    """Number of temperature cycles with magnitude above the threshold.

    A cycle is a swing between consecutive local extrema; swings below
    the threshold are ignored. This is the single-threshold rainflow
    simplification: adequate for frequency-of-large-cycles reporting.
    """
    if threshold <= 0.0:
        raise ConfigurationError("cycle threshold must be positive")
    series = np.asarray(series, dtype=float)
    if len(series) < 2:
        return 0
    extrema = _local_extrema(series)
    swings = np.abs(np.diff(extrema))
    return int(np.sum(swings > threshold))


def thermal_cycle_frequency(
    result: SimulationResult,
    threshold: float = CONTROL.thermal_cycle_threshold,
    window: int = 100,
) -> float:
    """Percentage of (core, sample) pairs inside a large thermal cycle.

    For each core, cycles above the threshold are counted over sliding
    windows of ``window`` samples (the paper's "sliding history
    window"), then normalized by the total number of samples so the
    result is comparable across run lengths.
    """
    temps = result.core_temperatures
    if temps.size == 0:
        return 0.0
    n_samples, n_cores = temps.shape
    step = max(1, window // 2)
    total_cycles = 0
    total_windows = 0
    for c in range(n_cores):
        series = temps[:, c]
        for start in range(0, max(1, n_samples - window + 1), step):
            total_cycles += count_thermal_cycles(
                series[start : start + window], threshold
            )
            total_windows += 1
    if total_windows == 0:
        return 0.0
    # Express as cycles per hundred window observations.
    return 100.0 * total_cycles / (total_windows * max(1, window))
