"""Reliability proxies from the thermal history (extension).

The paper motivates both contributions with reliability: over-cooling
"may cause dynamic fluctuations in temperature, which degrade
reliability", and TALB exists to reduce "the adverse effects of
variations on reliability". This module quantifies that with the two
standard wear models the thermal-management literature uses:

* **Thermal cycling** (solder/interconnect fatigue) — a Coffin-Manson
  life model: cycles to failure scale as ``(dT)^-q``, so each observed
  cycle of magnitude dT consumes ``(dT / dT_ref)^q`` units of fatigue
  budget relative to a reference cycle.
* **Electromigration** — Black's equation: the time-to-failure at
  temperature T scales as ``exp(Ea / (k_B * T))``; the acceleration
  factor relative to a reference temperature integrates over the run.

Both return *relative* numbers (1.0 = the reference condition), which
is how policy comparisons use them; absolute MTTFs would need process
constants the paper does not give.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.thermal_metrics import _local_extrema
from repro.sim.results import SimulationResult

BOLTZMANN_EV = 8.617e-5
"""Boltzmann constant, eV/K."""


def coffin_manson_damage(
    result: SimulationResult,
    exponent: float = 3.5,
    reference_delta: float = 20.0,
    minimum_delta: float = 2.0,
) -> float:
    """Relative thermal-cycling fatigue accumulated over the run.

    Each per-core temperature swing of magnitude dT contributes
    ``(dT / reference_delta) ** exponent`` damage units; swings below
    ``minimum_delta`` are elastic and ignored. The result is normalized
    per core and per hour of simulated time so runs of different length
    compare directly.

    Parameters
    ----------
    result:
        The simulation time series.
    exponent:
        Coffin-Manson exponent q (3-5 for solder joints; default 3.5).
    reference_delta:
        The cycle magnitude defined as 1 damage unit (the paper's
        "large cycle" threshold, 20 K).
    minimum_delta:
        Swings below this are ignored, K.
    """
    if exponent <= 0.0:
        raise ConfigurationError("Coffin-Manson exponent must be positive")
    if reference_delta <= 0.0 or minimum_delta < 0.0:
        raise ConfigurationError("cycle magnitudes must be positive")
    temps = result.core_temperatures
    if temps.size == 0 or result.duration == 0.0:
        return 0.0
    damage = 0.0
    for c in range(temps.shape[1]):
        extrema = _local_extrema(temps[:, c])
        swings = np.abs(np.diff(extrema))
        swings = swings[swings >= minimum_delta]
        damage += float(np.sum((swings / reference_delta) ** exponent))
    hours = result.duration / 3600.0
    return damage / (temps.shape[1] * max(hours, 1.0e-12))


def electromigration_acceleration(
    result: SimulationResult,
    activation_energy: float = 0.7,
    reference_temperature: float = 70.0,
) -> float:
    """Mean electromigration acceleration factor over the run.

    Black's equation: MTTF ~ exp(Ea / (k_B T)), so the instantaneous
    acceleration relative to ``reference_temperature`` is
    ``exp(Ea/k_B * (1/T_ref - 1/T))`` with temperatures in kelvin.
    Values above 1 mean the run ages interconnect faster than the
    reference condition.

    Parameters
    ----------
    result:
        The simulation time series (per-core sensors are used; EM cares
        about the hottest wires, so each sample uses the hottest core).
    activation_energy:
        Ea in eV (0.7 eV is typical for Cu interconnect).
    reference_temperature:
        The 1.0x condition, degC.
    """
    if activation_energy <= 0.0:
        raise ConfigurationError("activation energy must be positive")
    temps = result.core_temperatures
    if temps.size == 0:
        return 1.0
    hottest = temps.max(axis=1) + 273.15
    t_ref = reference_temperature + 273.15
    factors = np.exp(
        (activation_energy / BOLTZMANN_EV) * (1.0 / t_ref - 1.0 / hottest)
    )
    return float(factors.mean())


def relative_mttf(
    result: SimulationResult,
    baseline: SimulationResult,
    activation_energy: float = 0.7,
) -> float:
    """Electromigration-limited MTTF of ``result`` relative to ``baseline``.

    Ratios above 1 mean the evaluated policy extends interconnect life.
    """
    mine = electromigration_acceleration(result, activation_energy)
    theirs = electromigration_acceleration(baseline, activation_energy)
    if mine <= 0.0:
        raise ConfigurationError("acceleration factor must be positive")
    return theirs / mine
