"""Visualize the thermal maps the policies act on (ASCII, no deps).

Solves the 2-layer stack's steady state in three conditions — uniform
load at low flow, uniform load at high flow, and a single hot core —
and renders each die as ASCII art. The pictures show the three effects
the paper's machinery exists for: the downstream (right-edge) warm-up
from sensible coolant heating, the overall cool-down from a higher pump
setting, and the local hot spot a single pinned thread creates.

Also measures the stack's step-response time constant, checking the
paper's timing argument (thermal tau << 250-300 ms pump transition).

Run:  python examples/thermal_map.py
"""

from repro import units
from repro.power.components import CoreState, PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.system import ThermalSystem
from repro.thermal.analysis import step_response
from repro.thermal.ascii_map import render_stack


def solve(system, model, core_util, states):
    solver = system.steady_solver(setting_index=0)
    unit_temps = None
    temps = None
    for _ in range(5):
        powers = model.unit_powers(core_util, states, 0.5, unit_temps)
        temps = solver.solve(system.grid.power_vector(powers))
        unit_temps = system.grid.unit_temperatures(temps)
    return temps


def main() -> None:
    system = ThermalSystem(2, nx=24, ny=24)
    model = PowerModel(system.stack, leakage=LeakageModel())
    cores = system.core_names

    print("### Uniform 90% load, LOWEST pump setting (208 ml/min/cavity)")
    temps = system.steady_temperatures(model, 0.9, setting_index=0)
    print(render_stack(system.grid, temps))

    print("\n### Same load, HIGHEST pump setting (1042 ml/min/cavity)")
    temps_hi = system.steady_temperatures(model, 0.9, setting_index=4)
    print(render_stack(system.grid, temps_hi))

    print("\n### One core pinned at 100%, others idle (lowest setting)")
    util = {name: 0.0 for name in cores}
    states = {name: CoreState.IDLE for name in cores}
    util["core5"] = 1.0
    states["core5"] = CoreState.ACTIVE
    temps_one = solve(system, model, util, states)
    print(render_stack(system.grid, temps_one))

    print("\n### Step-response timing (the controller's raison d'etre)")
    network = system.network(2)
    power = system.grid.power_vector({(0, name): 3.0 for name in cores[:8]})
    response = step_response(network, power, dt=0.005, max_time=2.0)
    tau = response.time_constant()
    print(f"thermal time constant   : {units.to_ms(tau):.0f} ms "
          "(paper: 'typically less than 100 ms')")
    print("pump transition         : 250-300 ms")
    print(f"=> a reactive controller is {250.0 / units.to_ms(tau):.0f}x too slow; "
          "forecasting 500 ms ahead closes the gap.")


if __name__ == "__main__":
    main()
