"""Policy/cooling comparison: a reduced Figure 6 + Figure 8 in one table.

Runs the paper's seven policy/cooling combinations on a hot and a light
workload and prints hot spots, energy (normalized to LB (Air) chip
energy), and relative throughput — the quickest way to see who wins
where.

The 14 runs execute through :class:`repro.runner.BatchRunner`: the
flow-table/weight characterizations are derived once in the parent,
then the runs fan out over worker processes (results are bit-identical
to serial execution).

Run:  python examples/policy_comparison.py [--workers N]
"""

import argparse

from repro.experiments import common
from repro.metrics.energy import EnergyBreakdown
from repro.metrics.thermal_metrics import (
    hotspot_frequency,
    spatial_gradient_frequency,
)
from repro.runner import BatchRunner
from repro.sim.config import SimulationConfig

WORKLOADS = ("Web-high", "gzip")
DURATION = 12.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=BatchRunner.suggested_workers(),
        help="worker processes for the 14-run batch (default: all cores)",
    )
    args = parser.parse_args()

    configs = [
        SimulationConfig(
            benchmark_name=workload,
            policy=policy,
            cooling=cooling,
            duration=DURATION,
        )
        for policy, cooling in common.POLICY_MATRIX
        for workload in WORKLOADS
    ]
    batch = BatchRunner(configs, max_workers=args.workers).run()
    # Key by the same combo_label the lookups below use, so the two
    # can never drift apart.
    results = {
        (common.combo_label(cfg.policy, cfg.cooling), cfg.benchmark_name): res
        for cfg, res in zip(batch.configs, batch.results)
    }

    baseline_label = common.combo_label(*common.POLICY_MATRIX[0])
    base_chip = sum(
        results[(baseline_label, w)].chip_energy() for w in WORKLOADS
    ) / len(WORKLOADS)
    base_thr = sum(
        results[(baseline_label, w)].throughput() for w in WORKLOADS
    ) / len(WORKLOADS)
    baseline = EnergyBreakdown(chip=base_chip, pump=0.0)

    rows = []
    for policy, cooling in common.POLICY_MATRIX:
        label = common.combo_label(policy, cooling)
        runs = [results[(label, w)] for w in WORKLOADS]
        chip = sum(r.chip_energy() for r in runs) / len(runs)
        pump = sum(r.pump_energy() for r in runs) / len(runs)
        thr = sum(r.throughput() for r in runs) / len(runs)
        norm = EnergyBreakdown(chip=chip, pump=pump).normalized(baseline)
        rows.append(
            {
                "policy": label,
                "hotspots_pct": sum(hotspot_frequency(r) for r in runs) / len(runs),
                "gradients_pct": sum(
                    spatial_gradient_frequency(r) for r in runs
                ) / len(runs),
                "energy_total": norm.chip + norm.pump,
                "performance": thr / base_thr,
            }
        )
    print(
        f"Workloads: {', '.join(WORKLOADS)} - {DURATION:.0f} s each "
        f"({len(batch)} runs, {batch.n_workers} worker(s), "
        f"{batch.wall_time:.1f} s)\n"
    )
    print(common.format_rows(rows))
    print(
        "\nReading: liquid cooling removes the air system's hot spots;"
        "\nTALB (Var) keeps them at zero while cutting total energy; the"
        "\nmigration policy trades energy/throughput for reaction to heat."
    )


if __name__ == "__main__":
    main()
