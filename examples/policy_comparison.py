"""Policy/cooling comparison: a reduced Figure 6 + Figure 8 in one table.

Runs the paper's seven policy/cooling combinations on a hot and a light
workload and prints hot spots, energy (normalized to LB (Air) chip
energy), and relative throughput — the quickest way to see who wins
where.

Run:  python examples/policy_comparison.py
"""

from repro.experiments import common
from repro.metrics.energy import EnergyBreakdown
from repro.metrics.thermal_metrics import (
    hotspot_frequency,
    spatial_gradient_frequency,
)

WORKLOADS = ("Web-high", "gzip")
DURATION = 12.0


def main() -> None:
    results = common.run_matrix(
        combos=common.POLICY_MATRIX,
        workloads=WORKLOADS,
        duration=DURATION,
    )
    baseline_label = common.combo_label(*common.POLICY_MATRIX[0])
    base_chip = sum(
        results[(baseline_label, w)].chip_energy() for w in WORKLOADS
    ) / len(WORKLOADS)
    base_thr = sum(
        results[(baseline_label, w)].throughput() for w in WORKLOADS
    ) / len(WORKLOADS)
    baseline = EnergyBreakdown(chip=base_chip, pump=0.0)

    rows = []
    for policy, cooling in common.POLICY_MATRIX:
        label = common.combo_label(policy, cooling)
        runs = [results[(label, w)] for w in WORKLOADS]
        chip = sum(r.chip_energy() for r in runs) / len(runs)
        pump = sum(r.pump_energy() for r in runs) / len(runs)
        thr = sum(r.throughput() for r in runs) / len(runs)
        norm = EnergyBreakdown(chip=chip, pump=pump).normalized(baseline)
        rows.append(
            {
                "policy": label,
                "hotspots_pct": sum(hotspot_frequency(r) for r in runs) / len(runs),
                "gradients_pct": sum(
                    spatial_gradient_frequency(r) for r in runs
                ) / len(runs),
                "energy_total": norm.chip + norm.pump,
                "performance": thr / base_thr,
            }
        )
    print(f"Workloads: {', '.join(WORKLOADS)} - {DURATION:.0f} s each\n")
    print(common.format_rows(rows))
    print(
        "\nReading: liquid cooling removes the air system's hot spots;"
        "\nTALB (Var) keeps them at zero while cutting total energy; the"
        "\nmigration policy trades energy/throughput for reaction to heat."
    )


if __name__ == "__main__":
    main()
