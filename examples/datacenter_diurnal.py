"""Day/night workload shift: SPRT-triggered ARMA retraining in action.

Section IV motivates the SPRT with workloads that change dramatically,
"e.g., day-time and night-time workload patterns for a server". This
example runs the ``"diurnal"`` workload model — a registered component,
so the day/night profile is plain configuration rather than a
hand-built trace — across one full square-wave cycle and reports how
the pump tracked the load and how often the forecaster re-fit itself.

Run:  python examples/datacenter_diurnal.py
"""


from repro import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import Simulator


def main() -> None:
    phase = 15.0
    config = SimulationConfig(
        benchmark_name="Web-high",  # Sets thread statistics and power labels.
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=2.0 * phase,
        workload="diurnal",
        workload_params={
            # Square wave, one cycle over the run: a Web-high-utilization
            # day half followed by a near-idle night half.
            "shape": "square",
            "peak_utilization": 0.85,
            "trough_utilization": 0.15,
        },
    )
    result = Simulator(config).run()

    day = result.times <= phase
    night = ~day
    print("=== Diurnal scenario: day (85% load) -> night (15% load) ===")
    print(f"phases                  : {phase:.0f} s each, "
          f"{len(result.times)} control intervals total")
    print(f"day   mean T_max        : {result.tmax[day].mean():.2f} degC, "
          f"mean pump setting {result.flow_setting[day].mean():.2f}")
    print(f"night mean T_max        : {result.tmax[night].mean():.2f} degC, "
          f"mean pump setting {result.flow_setting[night].mean():.2f}")
    print(f"peak temperature        : {result.peak_temperature():.2f} degC "
          f"(target 80 degC)")
    print(f"ARMA re-fits (SPRT)     : {result.retrain_count} "
          "(the day->night break should add at least one)")

    pump_day = result.pump_power[day].mean()
    pump_night = result.pump_power[night].mean()
    print(f"pump power day/night    : {pump_day:.1f} W / {pump_night:.1f} W "
          f"({100.0 * (pump_day - pump_night) / pump_day:.0f}% lower at night)")

    # A max-flow run would have drawn 21 W around the clock.
    always_max = 21.0 * config.duration
    print(f"pump energy vs max flow : {result.pump_energy():.1f} J vs "
          f"{always_max:.1f} J "
          f"({100.0 * (always_max - result.pump_energy()) / always_max:.0f}% saved)")


if __name__ == "__main__":
    main()
