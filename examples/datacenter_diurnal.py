"""Day/night workload shift: SPRT-triggered ARMA retraining in action.

Section IV motivates the SPRT with workloads that change dramatically,
"e.g., day-time and night-time workload patterns for a server". This
example glues a Web-high phase (day) to a gzip phase (night), runs the
variable-flow controller across the transition, and reports how the
pump tracked the load and how often the forecaster re-fit itself.

Run:  python examples/datacenter_diurnal.py
"""


from repro import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import Simulator
from repro.workload.benchmarks import benchmark
from repro.workload.generator import diurnal_trace


def main() -> None:
    phase = 15.0
    trace = diurnal_trace(
        day_spec=benchmark("Web-high"),
        night_spec=benchmark("gzip"),
        phase_duration=phase,
        n_cores=8,
        seed=0,
    )
    config = SimulationConfig(
        benchmark_name="Web-high",  # Day phase drives the power labels.
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=trace.duration,
    )
    result = Simulator(config, trace=trace).run()

    day = result.times <= phase
    night = ~day
    print("=== Diurnal scenario: Web-high (day) -> gzip (night) ===")
    print(f"phases                  : {phase:.0f} s each, "
          f"{len(result.times)} control intervals total")
    print(f"day   mean T_max        : {result.tmax[day].mean():.2f} degC, "
          f"mean pump setting {result.flow_setting[day].mean():.2f}")
    print(f"night mean T_max        : {result.tmax[night].mean():.2f} degC, "
          f"mean pump setting {result.flow_setting[night].mean():.2f}")
    print(f"peak temperature        : {result.peak_temperature():.2f} degC "
          f"(target 80 degC)")
    print(f"ARMA re-fits (SPRT)     : {result.retrain_count} "
          "(the day->night break should add at least one)")

    pump_day = result.pump_power[day].mean()
    pump_night = result.pump_power[night].mean()
    print(f"pump power day/night    : {pump_day:.1f} W / {pump_night:.1f} W "
          f"({100.0 * (pump_day - pump_night) / pump_day:.0f}% lower at night)")

    # A max-flow run would have drawn 21 W around the clock.
    always_max = 21.0 * trace.duration
    print(f"pump energy vs max flow : {result.pump_energy():.1f} J vs "
          f"{always_max:.1f} J "
          f"({100.0 * (always_max - result.pump_energy()) / always_max:.0f}% saved)")


if __name__ == "__main__":
    main()
