"""Trace-driven campaigns: record a utilization trace, sweep it.

The ``"trace-replay"`` workload model makes a recorded trace an
ordinary sweep axis: every run in a campaign replays the *same*
measured load while the swept components (here, the scheduling
policies) vary. This example

1. writes an mpstat-style ``second,utilization_pct`` CSV (in practice:
   the output of ``mpstat 1`` on a production box),
2. sweeps the paper's policies over it with a single-host
   :class:`repro.SweepRunner`,
3. re-runs the identical campaign as a distributed plan executed by
   two concurrent workers, and checks the merged aggregates equal the
   single-host run byte-for-byte.

Run:  python examples/trace_campaign.py
"""

import csv
import math
import tempfile
import threading
from pathlib import Path

from repro import (
    SimulationConfig,
    SweepRunner,
    SweepSpec,
    merge_campaign,
    plan_campaign,
    run_worker,
)
from repro.experiments.common import format_rows

workdir = Path(tempfile.mkdtemp(prefix="trace-campaign-"))

# --- 1. "record" a trace: a ramp with an afternoon surge ---------------
trace_path = workdir / "recorded.csv"
with open(trace_path, "w", newline="") as handle:
    writer = csv.writer(handle)
    writer.writerow(["second", "utilization_pct"])
    for second in range(12):
        util = 35.0 + 40.0 * math.sin(math.pi * second / 11.0)
        writer.writerow([second, f"{util:.1f}"])
print(f"recorded 12 s utilization trace -> {trace_path}")

# --- 2. sweep the policies over the replayed trace ---------------------
spec = SweepSpec(
    base=SimulationConfig(
        duration=6.0,
        workload="trace-replay",
        workload_params={"path": str(trace_path)},
    ),
    grid={"policy": ["TALB", "LB"]},
    name="trace-campaign",
)
reference = SweepRunner(spec).run()
print(f"single-host: {reference.folded}/{reference.n_runs} runs folded")

# --- 3. the same campaign, sharded across two workers ------------------
campaign = workdir / "campaign"
plan = plan_campaign(spec, campaign, chunk_size=1)
print(plan.describe())

threads = [
    threading.Thread(target=run_worker, args=(campaign,),
                     kwargs={"worker_id": f"local-w{i}"})
    for i in (1, 2)
]
for thread in threads:
    thread.start()
for thread in threads:
    thread.join()

merged = merge_campaign(campaign)
identical = [a.rows() for a in merged.aggregators] == [
    a.rows() for a in reference.aggregators
]
print(f"merged aggregates bit-identical to single-host run: {identical}")
print(f"merged rows identical: {merged.rows == reference.rows}\n")

print("-- per-label scalar aggregates (merged) --")
print(format_rows([
    {k: row[k] for k in ("label", "runs", "peak_temperature_mean",
                         "pump_energy_j_mean", "total_energy_j_mean")}
    for row in merged.aggregators[0].rows()
]))
