"""Facility co-simulation: close the cooling loop around the chip.

Every classic run holds the coolant inlet at a constant 60 degC and
lets the rejected heat vanish at the outlet. With
``facility="closed-loop"`` the same run co-simulates the plant that
actually produces that water — CDU plate heat exchanger, chiller with
an economizer bypass, cooling tower, facility pumps — so the inlet
temperature becomes an *output* of the room energy balance and the
result gains PUE, WUE, and total-cooling-power as first-class metrics.

Two runs of the same workload:

1. the classic fixed-inlet boundary (no plant, so no PUE), and
2. the closed loop at the paper's 60 degC hot-water setpoint, where
   the tower alone covers the load (free cooling, no chiller);

then a third run at an 18 degC chilled-water setpoint shows what the
hot-water argument saves: the chiller must run and PUE climbs.

Run:  python examples/facility_quickstart.py
"""

from repro import CoolingMode, PolicyKind, SimulationConfig, simulate

BASE = dict(
    benchmark_name="Web-med",
    policy=PolicyKind.TALB,
    cooling=CoolingMode.LIQUID_VARIABLE,
    duration=10.0,
    seed=0,
)


def report(title: str, result) -> None:
    print(f"-- {title} --")
    print(f"  chip energy        : {result.chip_energy():8.1f} J")
    if not result.has_facility:
        print("  facility           : none (fixed 60 degC inlet; "
              "no plant, so no PUE)")
        print()
        return
    print(f"  mean chip inlet    : {result.mean_inlet_temperature():8.2f} degC")
    print(f"  total cooling power: {result.total_cooling_power():8.2f} W")
    print(f"  PUE                : {result.pue():8.3f}")
    print(f"  WUE                : {result.wue():8.3f} L/kWh")
    print(f"  free cooling       : {100.0 * result.free_cooling_fraction():8.1f} %"
          " of intervals")
    print()


def main() -> None:
    fixed = simulate(SimulationConfig(**BASE))
    report("fixed inlet (classic)", fixed)

    hot_water = simulate(SimulationConfig(
        **BASE,
        facility="closed-loop",
        # The paper's operating point: 60 degC supply means the tower
        # (wet-bulb + approach) undercuts the setpoint year-round and
        # the chiller never runs.
        facility_params={"supply_setpoint_c": 60.0, "wet_bulb_c": 22.0},
    ))
    report("closed loop, 60 degC hot-water setpoint", hot_water)

    chilled = simulate(SimulationConfig(
        **BASE,
        facility="closed-loop",
        # A conventional chilled-water plant: the tower cannot reach
        # 18 degC, so the chiller carries the lift and PUE climbs.
        facility_params={"supply_setpoint_c": 18.0,
                         "chilled_water_c": 12.0,
                         "wet_bulb_c": 22.0},
    ))
    report("closed loop, 18 degC chilled-water setpoint", chilled)

    saved = chilled.cooling_energy() - hot_water.cooling_energy()
    print(f"hot-water cooling saves {saved:.1f} J of plant energy here "
          f"(PUE {chilled.pue():.3f} -> {hot_water.pue():.3f})")


if __name__ == "__main__":
    main()
