"""Cross-network design sweeps with the krylov solver tier.

A thermal design-space sweep changes the *network* at every point —
different resistance scaling, conductivity, geometry — so same-network
cohort batching cannot help and the exact tier pays a fresh sparse LU
per design point. ``solver="krylov"`` factorizes the first point it
meets and steps every neighboring point with preconditioned GMRES off
the nearest retained LU, agreeing with exact within
``KRYLOV_TEMPERATURE_TOLERANCE`` (falling back to a fresh LU if a
solve ever misses that bar).

This script runs one 8-point ``thermal_params.resistance_scale``
neighborhood at 32x32 through both tiers and prints the factorization
counts, the preconditioner hit rate, and the worst temperature
disagreement. The same switch works everywhere: ``repro simulate
--solver krylov``, a ``solver`` sweep axis, ``repro sweep run
--solver krylov``, and ``repro dist work --solver krylov``.

Run:  python examples/design_neighborhood.py
"""

import numpy as np

from repro import SimulationConfig
from repro.runner import BatchRunner
from repro.sim.cache import CharacterizationCache, clear_system_memo
from repro.sim.config import CoolingMode
from repro.thermal.rc_network import ThermalParams
from repro.thermal.solver import (
    KRYLOV_TEMPERATURE_TOLERANCE,
    clear_neighbor_cache,
    factorization_count,
    krylov_stats,
)

N_POINTS = 8


def neighborhood(solver: str) -> list[SimulationConfig]:
    """8 design points over resistance_scale: 8 distinct networks."""
    return [
        SimulationConfig(
            policy="RR",
            cooling=CoolingMode.LIQUID_MAX,
            nx=32,
            ny=32,
            duration=1.0,
            solver=solver,
            thermal_params=ThermalParams(resistance_scale=4.0 + 0.1 * i),
        )
        for i in range(N_POINTS)
    ]


def campaign(solver: str):
    """Run the neighborhood cold; return (results, factorizations)."""
    clear_system_memo()
    clear_neighbor_cache()
    before = factorization_count()
    batch = BatchRunner(
        neighborhood(solver), cohort="auto", cache=CharacterizationCache()
    )
    runs = batch.run().runs
    return [run.result for run in runs], factorization_count() - before


def main() -> int:
    exact_results, exact_f = campaign("exact")
    stats_before = krylov_stats()
    krylov_results, krylov_f = campaign("krylov")
    stats = {
        key: value - stats_before[key]
        for key, value in krylov_stats().items()
    }

    worst = max(
        float(np.abs(e.tmax - k.tmax).max())
        for e, k in zip(exact_results, krylov_results)
    )
    hits = stats["preconditioner_hits"]
    misses = stats["preconditioner_misses"]
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    print(f"design neighborhood: {N_POINTS} resistance_scale points, 32x32")
    print(f"  exact  solver: {exact_f} LU factorizations")
    print(
        f"  krylov solver: {krylov_f} LU factorizations"
        f" (preconditioner hit rate {hit_rate:.0%},"
        f" {stats['fallbacks']} fallbacks)"
    )
    print(
        f"  max |dT| vs exact: {worst:.2e} K"
        f" (documented tolerance {KRYLOV_TEMPERATURE_TOLERANCE:.0e} K)"
    )

    assert krylov_f < N_POINTS, "krylov must factorize fewer than N points"
    assert worst < KRYLOV_TEMPERATURE_TOLERANCE, "tolerance violated"
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
