"""Declarative sweeps: declare, run, interrupt, resume — bit-identically.

Declares a small inlet-temperature x workload campaign over the
variable-flow controller, streams it through :class:`repro.SweepRunner`
with checkpointing, then emulates an interruption at half way
(``stop_after``) and resumes — showing the resumed aggregates equal an
uninterrupted run's exactly.

Run:  python examples/sweep_quickstart.py
"""

import tempfile
from pathlib import Path

from repro import CoolingMode, SimulationConfig, SweepRunner, SweepSpec
from repro.experiments.common import format_rows

spec = SweepSpec(
    base=SimulationConfig(duration=5.0, cooling=CoolingMode.LIQUID_VARIABLE),
    grid={
        "benchmark": ["gzip", "Web-med"],
        "thermal_params.inlet_temperature": [52.5, 60.0],
    },
    name="inlet-quickstart",
)

workdir = Path(tempfile.mkdtemp(prefix="sweep-quickstart-"))
checkpoint = workdir / "sweep.ck.jsonl"

print(spec.describe())
print(f"checkpoint: {checkpoint}\n")

# --- an uninterrupted reference run ------------------------------------
reference = SweepRunner(spec).run()

# --- the same sweep, interrupted at 50% and resumed --------------------
first = SweepRunner(spec, checkpoint=checkpoint, stop_after=2).run()
print(f"session 1: folded {first.folded}/{first.n_runs} runs, then 'died'")

second = SweepRunner(spec, checkpoint=checkpoint).run(resume=True)
print(f"session 2: restored {second.resumed}, ran {second.folded - second.resumed}, "
      f"complete={second.complete}\n")

identical = [a.rows() for a in second.aggregators] == [
    a.rows() for a in reference.aggregators
]
print(f"resumed aggregates bit-identical to uninterrupted run: {identical}\n")

print("-- per-label scalar aggregates --")
print(format_rows([
    {k: row[k] for k in ("label", "runs", "peak_temperature_mean",
                         "pump_energy_j_mean", "total_energy_j_mean")}
    for row in second.aggregators[0].rows()
]))
