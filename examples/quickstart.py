"""Quickstart: simulate the paper's controller on one workload.

Runs the 2-layer UltraSPARC T1 stack with interlayer liquid cooling
under the joint TALB + variable-flow controller on the Web-med
workload, then prints the thermal/energy summary a user would check
first: did the 80 degC target hold, what did the pump do, and what did
proactive control save against worst-case flow?

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CONTROL,
    CoolingMode,
    PolicyKind,
    SimulationConfig,
    simulate,
)


def main() -> None:
    duration = 20.0
    variable = simulate(
        SimulationConfig(
            benchmark_name="Web-med",
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=duration,
        )
    )
    worst_case = simulate(
        SimulationConfig(
            benchmark_name="Web-med",
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_MAX,
            duration=duration,
        )
    )

    print("=== Variable-flow liquid cooling: Web-med, 2-layer stack ===")
    print(f"simulated time           : {duration:.0f} s "
          f"({len(variable.times)} control intervals)")
    print(f"peak temperature (sensor): {variable.peak_temperature():.2f} degC "
          f"(target {CONTROL.target_temperature:.0f} degC)")
    print(f"peak temperature (cell)  : {variable.tmax_cell.max():.2f} degC")
    print(f"target held              : "
          f"{variable.peak_temperature() <= CONTROL.target_temperature + 0.5}")
    print(f"ARMA re-fits (SPRT)      : {variable.retrain_count}")

    settings, counts = np.unique(
        variable.flow_setting[variable.flow_setting >= 0], return_counts=True
    )
    share = ", ".join(
        f"setting {s}: {100.0 * c / counts.sum():.0f}%"
        for s, c in zip(settings, counts)
    )
    print(f"pump settings used       : {share}")

    pump_var = variable.pump_energy()
    pump_max = worst_case.pump_energy()
    total_var = variable.total_energy()
    total_max = worst_case.total_energy()
    print(f"pump energy              : {pump_var:.1f} J vs {pump_max:.1f} J at max flow "
          f"({100.0 * (pump_max - pump_var) / pump_max:.1f}% cooling saving)")
    print(f"total energy             : {total_var:.1f} J vs {total_max:.1f} J "
          f"({100.0 * (total_max - total_var) / total_max:.1f}% overall saving)")
    print(f"throughput               : {variable.throughput():.1f} threads/s "
          f"(max flow: {worst_case.throughput():.1f})")


if __name__ == "__main__":
    main()
