"""Extending repro: register a scheduling policy, then sweep its params.

Registers a "coolest-first" policy — dispatch every arrival to the
coldest core whose sensor reads below a margin over the coolest, else
the shortest queue — entirely from user code: no engine edits, no enum
to extend. The registered key immediately works everywhere a built-in
does: ``SimulationConfig(policy="coolest-first")``, the CLI, and sweep
specs, including a dotted ``policy_params.margin`` axis, fingerprints
and all.

Run:  python examples/custom_policy.py
"""

from repro import (
    ParamSpec,
    PolicyContext,
    SimulationConfig,
    SweepRunner,
    SweepSpec,
    register_policy,
)
from repro.experiments.common import format_rows


class CoolestFirstPolicy:
    """Thermal-greedy dispatch with a load tie-break margin."""

    name = "CoolestFirst"
    migration_count = 0  # Never moves a thread after dispatch.

    def __init__(self, margin: float = 2.0) -> None:
        self.margin = margin

    def dispatch_target(self, queues, core_temperatures):
        if not core_temperatures:
            return queues.shortest()
        coolest = min(core_temperatures.values())
        # Cores within `margin` K of the coolest are thermally
        # equivalent; among them, take the shortest queue.
        lengths = queues.lengths()
        candidates = [
            core for core, t in core_temperatures.items()
            if t <= coolest + self.margin
        ]
        return min(candidates, key=lambda core: lengths[core])

    def rebalance(self, queues, core_temperatures, now):
        """Dispatch-time placement only; no rebalancing."""


@register_policy(
    "coolest-first",
    params=(
        ParamSpec("margin", "float", default=2.0, minimum=0.0,
                  doc="cores within this band of the coolest tie-break on load"),
    ),
    description="Greedy dispatch to the coolest (then shortest) core",
)
def _build_coolest_first(ctx: PolicyContext, **params) -> CoolestFirstPolicy:
    return CoolestFirstPolicy(**params)


# The new key is now a config value like any built-in — and its
# declared parameter is a sweepable axis, fingerprinted and
# checkpointable like every other config field.
spec = SweepSpec(
    base=SimulationConfig(
        benchmark_name="Web-med",
        policy="coolest-first",
        duration=5.0,
    ),
    grid={"policy_params.margin": [0.0, 2.0, 8.0]},
    name="coolest-first-margin",
)

print(spec.describe())
result = SweepRunner(spec, aggregators=()).run()

rows = [
    {
        "margin_K": row["policy_params"],
        "peak_temperature": row["peak_temperature_sensor"],
        "total_energy_j": row["total_energy_j"],
        "throughput_tps": row["throughput_tps"],
    }
    for row in result.rows
]
print(format_rows(rows))
print("\nregistered policy ran via registry key alone — see also: "
      "repro list policies")
