"""Distributed campaigns: plan, two workers, merge — byte-identically.

Shards a small inlet-temperature x workload campaign into a leased
work ledger (:func:`repro.plan_campaign`), executes it with two
concurrent local workers racing over the shared campaign directory
(:func:`repro.run_worker` — across real hosts you would instead run
``repro dist work --dir ...`` on each), then merges the shard journals
(:func:`repro.merge_campaign`) and shows the merged aggregates equal a
single-host :class:`repro.SweepRunner` run *exactly*.

Run:  python examples/dist_quickstart.py
"""

import tempfile
import threading
from pathlib import Path

from repro import (
    CoolingMode,
    SimulationConfig,
    SweepRunner,
    SweepSpec,
    campaign_status,
    merge_campaign,
    plan_campaign,
    run_worker,
)
from repro.experiments.common import format_rows

spec = SweepSpec(
    base=SimulationConfig(duration=5.0, cooling=CoolingMode.LIQUID_VARIABLE),
    grid={
        "benchmark": ["gzip", "Web-med"],
        "thermal_params.inlet_temperature": [52.5, 60.0],
    },
    name="inlet-dist-quickstart",
)

campaign = Path(tempfile.mkdtemp(prefix="dist-quickstart-")) / "campaign"

# --- 1. plan: shard the spec into a leased work ledger -----------------
plan = plan_campaign(spec, campaign, chunk_size=1)
print(plan.describe())

# --- 2. work: two workers race over the shared directory ---------------
reports = {}


def work(worker_id: str) -> None:
    reports[worker_id] = run_worker(campaign, worker_id=worker_id)


threads = [
    threading.Thread(target=work, args=(f"local-w{i}",)) for i in (1, 2)
]
for thread in threads:
    thread.start()
for thread in threads:
    thread.join()
for worker_id, report in sorted(reports.items()):
    print(
        f"{worker_id}: executed {len(report.shards_executed)} shard(s), "
        f"{report.runs_executed} run(s)"
    )

# --- 3. status + merge -------------------------------------------------
status = campaign_status(campaign)
print(f"status: {status.count('done')}/{status.n_shards} shards done\n")

merged = merge_campaign(campaign)

# --- 4. the point: the merge equals a single-host run exactly ----------
reference = SweepRunner(spec).run()
identical = [a.rows() for a in merged.aggregators] == [
    a.rows() for a in reference.aggregators
]
print(f"merged aggregates bit-identical to single-host run: {identical}")
print(f"merged rows identical: {merged.rows == reference.rows}\n")

print("-- per-label scalar aggregates (merged) --")
print(format_rows([
    {k: row[k] for k in ("label", "runs", "peak_temperature_mean",
                         "pump_energy_j_mean", "total_energy_j_mean")}
    for row in merged.aggregators[0].rows()
]))
