"""Design sweep: 2-layer vs 4-layer stacks under the same pump.

The pump's flow is split across the cavities, so the 4-layer system
gets 625 ml/min per cavity at best where the 2-layer system gets 1042
(Figure 3), while stacking doubles the heat. This example characterizes
both stacks (Figure 5's sweep) and prints the minimum pump setting each
needs across workload intensities — the feasibility analysis a designer
would run before choosing a stack height.

Run:  python examples/stack_design_sweep.py
"""

from repro import units
from repro.constants import CONTROL
from repro.experiments import common, fig5


def main() -> None:
    utils = (0.0, 0.25, 0.5, 0.75, 0.93)
    print("=== Required pump setting to hold 80 degC ===\n")
    for n_layers in (2, 4):
        rows = fig5.run(n_layers, utilizations=utils, include_continuous=False)
        print(f"--- {n_layers}-layer stack "
              f"({8 if n_layers == 2 else 16} cores, "
              f"{n_layers + 1} cavities) ---")
        print(common.format_rows(rows))
        saturated = [r for r in rows if not r["holds_target"]]
        if saturated:
            worst = saturated[-1]
            print(
                f"NOTE: at utilization {worst['utilization']:.2f} even the "
                f"maximum setting cannot hold "
                f"{CONTROL.target_temperature:.0f} degC - the stack is "
                "thermally pump-limited (Figure 5's staircase ceiling)."
            )
        print()

    max_flow_2l = units.to_ml_per_minute(
        units.litres_per_hour(375.0) * 0.5 / 3
    )
    max_flow_4l = units.to_ml_per_minute(
        units.litres_per_hour(375.0) * 0.5 / 5
    )
    print(
        "Takeaway: the same pump delivers "
        f"{max_flow_2l:.0f} ml/min per cavity to the 2-layer stack but only "
        f"{max_flow_4l:.0f} ml/min to the 4-layer stack, so the 4-layer system "
        "climbs the setting ladder earlier and saturates sooner - doubling "
        "integration density costs cooling headroom, not just pump energy."
    )


if __name__ == "__main__":
    main()
