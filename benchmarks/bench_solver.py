"""Performance microbenchmarks of the thermal substrate.

These are true pytest-benchmark timings (multiple rounds): network
assembly, factorization, steady solve, transient step, and a full
engine control interval. They track the cost claims in DESIGN.md
(cached factorization per pump setting; triangular solve per step).
"""

import numpy as np
import pytest

from repro import units
from repro.geometry.stack import CoolingKind, build_stack
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.system import ThermalSystem
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import SteadyStateSolver, TransientSolver

FLOW = units.ml_per_minute(400.0)


@pytest.fixture(scope="module")
def grid():
    return ThermalGrid(build_stack(2), nx=16, ny=16)


@pytest.fixture(scope="module")
def network(grid):
    return build_network(grid, ThermalParams(), cavity_flows=[FLOW])


@pytest.fixture(scope="module")
def power(grid):
    return grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})


def test_bench_network_assembly(benchmark, grid):
    net = benchmark(
        lambda: build_network(grid, ThermalParams(), cavity_flows=[FLOW])
    )
    assert net.n_nodes == 5 * 16 * 16


def test_bench_steady_factorization(benchmark, network):
    solver = benchmark(lambda: SteadyStateSolver(network))
    assert solver is not None


def test_bench_steady_solve(benchmark, network, power):
    solver = SteadyStateSolver(network)
    temps = benchmark(lambda: solver.solve(power))
    assert np.all(np.isfinite(temps))


def test_bench_transient_step(benchmark, network, power):
    solver = TransientSolver(network, dt=0.1)
    state = np.full(network.n_nodes, 60.0)
    out = benchmark(lambda: solver.step(state, power))
    assert np.all(np.isfinite(out))


def test_bench_steady_tmax_with_leakage_loop(benchmark):
    system = ThermalSystem(2, CoolingKind.LIQUID, nx=16, ny=16)
    model = PowerModel(system.stack, leakage=LeakageModel())
    tmax = benchmark(lambda: system.steady_tmax(model, 0.7, setting_index=2))
    assert 60.0 < tmax < 100.0


def test_bench_simulated_second(benchmark):
    """Wall-clock cost of one simulated second of the full engine."""
    config = SimulationConfig(
        benchmark_name="Web-med",
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=1.0,
    )

    def run_one_second():
        return Simulator(config).run()

    result = benchmark.pedantic(run_one_second, rounds=3, iterations=1)
    assert len(result.times) == 10
