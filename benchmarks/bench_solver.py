"""Performance microbenchmarks of the thermal substrate.

These are true pytest-benchmark timings (multiple rounds): network
assembly, factorization, steady solve, transient step, and a full
engine control interval. They track the cost claims in DESIGN.md
(cached factorization per pump setting; triangular solve per step).
"""

import numpy as np
import pytest

from repro import units
from repro.geometry.stack import CoolingKind, build_stack
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.system import ThermalSystem
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import SteadyStateSolver, TransientSolver

FLOW = units.ml_per_minute(400.0)


@pytest.fixture(scope="module")
def grid():
    return ThermalGrid(build_stack(2), nx=16, ny=16)


@pytest.fixture(scope="module")
def network(grid):
    return build_network(grid, ThermalParams(), cavity_flows=[FLOW])


@pytest.fixture(scope="module")
def power(grid):
    return grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})


def test_bench_network_assembly(benchmark, grid):
    net = benchmark(
        lambda: build_network(grid, ThermalParams(), cavity_flows=[FLOW])
    )
    assert net.n_nodes == 5 * 16 * 16


def test_bench_steady_factorization(benchmark, network):
    solver = benchmark(lambda: SteadyStateSolver(network))
    assert solver is not None


def test_bench_steady_solve(benchmark, network, power):
    solver = SteadyStateSolver(network)
    temps = benchmark(lambda: solver.solve(power))
    assert np.all(np.isfinite(temps))


def test_bench_transient_step(benchmark, network, power):
    solver = TransientSolver(network, dt=0.1)
    state = np.full(network.n_nodes, 60.0)
    out = benchmark(lambda: solver.step(state, power))
    assert np.all(np.isfinite(out))


def test_bench_steady_tmax_with_leakage_loop(benchmark):
    system = ThermalSystem(2, CoolingKind.LIQUID, nx=16, ny=16)
    model = PowerModel(system.stack, leakage=LeakageModel())
    tmax = benchmark(lambda: system.steady_tmax(model, 0.7, setting_index=2))
    assert 60.0 < tmax < 100.0


def test_bench_simulated_second(benchmark):
    """Wall-clock cost of one simulated second of the full engine."""
    config = SimulationConfig(
        benchmark_name="Web-med",
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=1.0,
    )

    def run_one_second():
        return Simulator(config).run()

    result = benchmark.pedantic(run_one_second, rounds=3, iterations=1)
    assert len(result.times) == 10


# --- paper-scale cases (PR 3: vectorized hot path) ---------------------------
#
# The paper's grid is 107x107 per slab; these cases track that the
# vectorized substrate keeps 32x32 and 64x64 routine. The full control
# interval includes per-run system setup (grid + per-setting assembly +
# factorization), exactly what every sweep run pays.


@pytest.fixture(scope="module", params=[32, 64])
def paper_grid(request):
    n = request.param
    return ThermalGrid(build_stack(2), nx=n, ny=n)


def test_bench_network_assembly_paper_scale(benchmark, paper_grid):
    net = benchmark(
        lambda: build_network(paper_grid, ThermalParams(), cavity_flows=[FLOW])
    )
    assert net.n_nodes == 5 * paper_grid.nx * paper_grid.ny


def test_bench_transient_step_paper_scale(benchmark, paper_grid):
    network = build_network(paper_grid, ThermalParams(), cavity_flows=[FLOW])
    solver = TransientSolver(network, dt=0.1)
    power = paper_grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
    state = np.full(network.n_nodes, 60.0)
    out = benchmark(lambda: solver.step(state, power))
    assert np.all(np.isfinite(out))


def test_bench_control_interval_32(benchmark):
    """Warm-cache cost of one control interval at 32x32.

    Times a fresh ``Simulator.run`` of one simulated second (10
    intervals) with a pre-warmed characterization cache — including the
    per-run grid construction, per-setting network assembly, and
    factorizations every batch/sweep run pays — and reports it per
    interval via the extra_info field.
    """
    from repro.sim.cache import CharacterizationCache

    config = SimulationConfig(
        benchmark_name="gzip",
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=1.0,
        nx=32,
        ny=32,
    )
    cache = CharacterizationCache()
    Simulator(config, cache=cache).run()  # warm characterizations

    def run_one_second():
        return Simulator(config, cache=cache).run()

    result = benchmark.pedantic(run_one_second, rounds=3, iterations=1)
    benchmark.extra_info["intervals"] = len(result.times)
    assert len(result.times) == 10


def test_bench_assembly_107_smoke(benchmark):
    """Non-gating 107x107 (paper-resolution) assembly smoke.

    No timing assertion — the artifact records the trend; correctness
    of the assembled network is asserted.
    """
    grid = ThermalGrid(build_stack(2), nx=107, ny=107)
    net = benchmark.pedantic(
        lambda: build_network(grid, ThermalParams(), cavity_flows=[FLOW]),
        rounds=2,
        iterations=1,
    )
    assert net.n_nodes == 5 * 107 * 107
    assert np.all(np.isfinite(net.capacitance))
