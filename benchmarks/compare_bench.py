"""Compare a fresh hot-path run against the committed trajectory baseline.

Usage (what CI's perf-trajectory job runs)::

    python benchmarks/bench_hotpath.py --out hotpath-timings.json
    python benchmarks/compare_bench.py hotpath-timings.json \
        --baseline BENCH_hotpath.json

Two kinds of checks, deliberately different in severity:

* **Timing regressions are non-gating.** Absolute wall-clock depends on
  the runner; a >20% median slowdown (or cohort-speedup loss) prints a
  GitHub ``::warning::`` annotation so it shows up on the PR, but the
  exit code stays 0.
* **The algorithmic counters gate.** A warm cohort campaign performing
  any LU factorization means kernel sharing broke, and a cross-network
  krylov campaign factorizing as often as it has design points means
  neighbor-LU preconditioning broke — those are properties of the
  code, not the machine, so either exits nonzero and fails CI.

Schema changes are tolerated in both directions: benchmarks present on
only one side are reported as "new" / "not measured" instead of
failing, and a missing ``cross_network`` (pre-v3), ``timing_breakdown``
(pre-v4), or ``facility`` (pre-v5) section is a note, not an error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fractional median slowdown that triggers a (non-gating) warning.
REGRESSION_THRESHOLD = 0.20


def _warn(message: str) -> None:
    print(f"::warning title=perf regression::{message}")


def _compare_cross_network(cur: dict | None, base: dict | None) -> int:
    """Non-gating cross-network comparison; returns warning count.

    Either side may lack the section: the current payload when the
    bench predates schema v3, the baseline until the first v3 payload
    is committed. Both are reported, neither is an error.
    """
    if not cur:
        print("(cross_network: not measured this run)")
        return 0
    if not base:
        print("(cross_network: new this run, no baseline yet)")
        return 0
    warnings = 0
    for key in ("krylov_speedup", "preconditioner_hit_rate"):
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            continue
        print(f"{key:32s} {b:9.2f}   {c:9.2f}")
        if c < b * (1.0 - REGRESSION_THRESHOLD):
            warnings += 1
            _warn(f"{key}: {c:.2f} vs baseline {b:.2f}")
    return warnings


def _compare_facility(cur: dict | None, base: dict | None) -> int:
    """Non-gating facility coupling comparison; returns warning count.

    Either side may lack the section (pre-v5 payloads). The coupling
    overhead is a ratio of two timings on the same machine, so unlike
    absolute wall-clock it is comparable across runners — but it still
    only warns. The convergence residual is asserted by the bench's own
    pytest entry, not here.
    """
    if not cur:
        print("(facility: not measured this run)")
        return 0
    if not base:
        print("(facility: new this run, no baseline yet)")
        return 0
    warnings = 0
    b = base.get("coupling_overhead_pct")
    c = cur.get("coupling_overhead_pct")
    if b is not None and c is not None:
        print(f"{'facility_coupling_overhead':32s} {b:8.1f}%  {c:8.1f}%")
        # Warn when closing the loop got meaningfully more expensive:
        # beyond the relative threshold AND more than one absolute
        # point, so jitter around a near-zero baseline stays quiet.
        if c > b * (1.0 + REGRESSION_THRESHOLD) and c > b + 1.0:
            warnings += 1
            _warn(
                f"facility coupling overhead: {c:.1f}% vs baseline {b:.1f}%"
            )
    return warnings


def _compare_timing_breakdown(cur: dict | None, base: dict | None) -> None:
    """Informational span-share comparison (schema v4; never gates).

    Timing shares are machine-sensitive and the section may be absent
    on either side (pre-v4 payloads), so this only prints — no
    warnings, no failures.
    """
    if not cur:
        print("(timing_breakdown: not measured this run)")
        return
    if not base:
        print("(timing_breakdown: new this run, no baseline yet)")
        return
    cur_spans = cur.get("spans", {})
    base_spans = base.get("spans", {})
    shared = sorted(set(cur_spans) & set(base_spans))
    if not shared:
        return
    print(f"{'span share of wall':32s} {'baseline':>10s} {'current':>10s}")
    for name in shared:
        print(
            f"span.{name:27s} {base_spans[name]['share_of_wall']:9.1%} "
            f"{cur_spans[name]['share_of_wall']:9.1%}"
        )


def compare(current: dict, baseline: dict) -> int:
    """Print the comparison; return the number of gating failures."""
    failures = 0
    warnings = 0

    cur_results = current.get("results", {})
    base_results = baseline.get("results", {})
    shared = sorted(set(cur_results) & set(base_results))
    skipped = sorted(set(base_results) - set(cur_results))
    # One-sided keys are informational, never fatal: a schema bump adds
    # benchmarks the old baseline lacks ("new"), and a trimmed run may
    # omit benchmarks the baseline has ("not measured this run").
    new = sorted(set(cur_results) - set(base_results))
    print(f"{'benchmark':32s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}")
    for name in shared:
        base, cur = base_results[name], cur_results[name]
        ratio = cur / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + REGRESSION_THRESHOLD:
            flag = "  <-- regressed"
            warnings += 1
            _warn(
                f"{name}: {cur * 1e3:.3f} ms vs baseline "
                f"{base * 1e3:.3f} ms ({ratio:.2f}x)"
            )
        print(
            f"{name:32s} {base * 1e3:9.3f}ms {cur * 1e3:9.3f}ms "
            f"{ratio:6.2f}x{flag}"
        )
    if skipped:
        print(f"(not measured this run: {', '.join(skipped)})")
    if new:
        print(f"(new this run, no baseline yet: {', '.join(new)})")

    cur_cohort = current.get("cohort", {})
    base_cohort = baseline.get("cohort", {})
    for key in ("cohort_exact_speedup", "cohort_block_speedup"):
        base, cur = base_cohort.get(key), cur_cohort.get(key)
        if base is None or cur is None:
            continue
        print(f"{key:32s} {base:9.2f}x  {cur:9.2f}x")
        if cur < base * (1.0 - REGRESSION_THRESHOLD):
            warnings += 1
            _warn(f"{key}: {cur:.2f}x vs baseline {base:.2f}x")

    warnings += _compare_cross_network(
        current.get("cross_network"), baseline.get("cross_network")
    )
    warnings += _compare_facility(
        current.get("facility"), baseline.get("facility")
    )
    _compare_timing_breakdown(
        current.get("timing_breakdown"), baseline.get("timing_breakdown")
    )

    refactor = cur_cohort.get("warm_refactorizations")
    if refactor is None:
        failures += 1
        print(
            "::error title=perf gate::current payload has no"
            " cohort.warm_refactorizations counter"
        )
    elif refactor != 0:
        failures += 1
        print(
            "::error title=perf gate::warm cohort campaign performed"
            f" {refactor} LU factorizations (expected 0 — the shared"
            " kernel must factorize at most once per network)"
        )
    else:
        print("warm_refactorizations               0  (gate: ok)")

    cross = current.get("cross_network")
    if cross is not None:
        factorizations = cross.get("krylov_factorizations")
        n_points = cross.get("n_points", 0)
        if factorizations is None or factorizations >= n_points:
            failures += 1
            print(
                "::error title=perf gate::cross-network krylov campaign"
                f" performed {factorizations} LU factorizations over"
                f" {n_points} design points (expected strictly fewer —"
                " neighbor-LU preconditioning must reuse factors across"
                " thermal-parameter points)"
            )
        else:
            print(
                f"krylov_factorizations   {factorizations:12d}"
                f"  (gate: ok, < {n_points} design points)"
            )

    print(
        f"\n{len(shared)} benchmarks compared, {warnings} regression"
        f" warning(s) (non-gating), {failures} gating failure(s)"
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly measured payload")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_hotpath.json",
        help="committed trajectory baseline (default: repo BENCH_hotpath.json)",
    )
    args = parser.parse_args(argv)
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    return 1 if compare(current, baseline) else 0


if __name__ == "__main__":
    sys.exit(main())
