"""The 4-layer (16-core) system — the paper's second platform.

Runs the liquid-cooling policy sweep on the 4-layer stack (5 cavities,
625 ml/min per cavity at maximum) over the moderate Table II workloads.
"""

from conftest import SWEEP_DURATION

from repro.experiments import common, fourlayer


def test_fourlayer_liquid_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: fourlayer.run(duration=SWEEP_DURATION),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_policy = {r["policy"]: r for r in rows}

    # Max flow keeps the 16-core stack free of >85 degC hot spots on
    # light workloads, and the controller holds the 80 degC target.
    assert by_policy["LB (Max)"]["hotspots_avg_pct"] == 0.0
    assert by_policy["TALB (Var)"]["target_held"]
    # On the 4-layer stack the two core tiers cool differently, so the
    # paper's weighted balancer lowers the peak temperature relative to
    # thread-count balancing — the inter-layer heterogeneity TALB was
    # designed for ("cores located at different layers ... may
    # significantly vary in their rates for heating and cooling").
    assert (
        by_policy["TALB (Max)"]["peak_temperature"]
        <= by_policy["LB (Max)"]["peak_temperature"]
    )
    # Variable flow still saves pump energy with only 625 ml/min of
    # per-cavity headroom.
    assert (
        by_policy["TALB (Var)"]["energy_pump"]
        < by_policy["TALB (Max)"]["energy_pump"]
    )
