"""Batch runner scaling — serial vs. 4-worker wall-clock on a 6-config sweep.

Times the same six-run sweep twice through
:class:`repro.runner.BatchRunner`: serially in-process and fanned out
over four worker processes, with the characterization cache pre-warmed
once and shared by both timings so the comparison isolates the run
loop. Always asserts bit-identical results; the >= 2.5x wall-clock
speedup floor is asserted only on machines with >= 4 cores and
*skipped* (not failed) below that — four workers on 1-3 logical CPUs
are core-bound, and on SMT siblings of one physical core the observed
whole-batch "speedup" physically caps near 1x, so any floor there
would test the machine, not the code.
"""

import os

import numpy as np
import pytest
from conftest import SWEEP_DURATION

from repro.experiments import common
from repro.runner import BatchRunner
from repro.sim.cache import CharacterizationCache
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig

#: Long enough per run that process startup/transport is amortized.
BATCH_DURATION = 2.0 * SWEEP_DURATION

#: The 6-config sweep: three Table II workloads x the paper's headline
#: comparison pair (variable flow vs. worst-case flow), one shared
#: 2-layer system so the warmed cache covers every run.
SWEEP: tuple[tuple[str, PolicyKind, CoolingMode], ...] = (
    ("gzip", PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
    ("gzip", PolicyKind.TALB, CoolingMode.LIQUID_MAX),
    ("Web-med", PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
    ("Web-med", PolicyKind.TALB, CoolingMode.LIQUID_MAX),
    ("Database", PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
    ("Database", PolicyKind.TALB, CoolingMode.LIQUID_MAX),
)


def _sweep_configs() -> list[SimulationConfig]:
    return [
        SimulationConfig(
            benchmark_name=workload,
            policy=policy,
            cooling=cooling,
            duration=BATCH_DURATION,
        )
        for workload, policy, cooling in SWEEP
    ]


#: Cores needed for the 4-worker speedup floor to be hardware-feasible.
SPEEDUP_MIN_CORES = 4

#: The acceptance bar on machines with >= SPEEDUP_MIN_CORES cores.
SPEEDUP_FLOOR = 2.5


def test_batch_parallel_speedup(benchmark):
    configs = _sweep_configs()
    cache = CharacterizationCache().warm(configs)

    serial = BatchRunner(configs, cache=cache, warm=False).run()
    parallel = benchmark.pedantic(
        lambda: BatchRunner(configs, max_workers=4, cache=cache, warm=False).run(),
        rounds=1,
        iterations=1,
    )

    speedup = serial.wall_time / parallel.wall_time
    # Cores this process may actually use: containers and CI runners
    # often restrict CPU affinity below os.cpu_count()'s host total.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # Non-Linux platforms.
        cpus = os.cpu_count() or 1
    rows = [
        {
            "mode": "serial",
            "workers": serial.n_workers,
            "wall_s": serial.wall_time,
            "runs": len(serial),
        },
        {
            "mode": "parallel",
            "workers": parallel.n_workers,
            "wall_s": parallel.wall_time,
            "runs": len(parallel),
        },
    ]
    print("\n" + common.format_rows(rows))
    print(f"speedup: {speedup:.2f}x on {cpus} cores "
          f"(floor {SPEEDUP_FLOOR:.2f}x asserted on >= {SPEEDUP_MIN_CORES})")

    # Fan-out must not change a single sample (asserted on any machine).
    for run_s, run_p in zip(serial.runs, parallel.runs):
        assert run_s.config == run_p.config
        assert np.array_equal(run_s.result.tmax, run_p.result.tmax)
        assert np.array_equal(
            run_s.result.completed_threads, run_p.result.completed_threads
        )
        assert run_s.result.sojourn_sum == run_p.result.sojourn_sum

    if cpus < SPEEDUP_MIN_CORES:
        pytest.skip(
            f"speedup floor needs >= {SPEEDUP_MIN_CORES} cores, "
            f"machine has {cpus} (measured {speedup:.2f}x; "
            "bit-identity was still asserted)"
        )
    assert speedup >= SPEEDUP_FLOOR
