"""Batch runner scaling — serial vs. 4-worker wall-clock on a 6-config sweep.

Times the same six-run sweep twice through
:class:`repro.runner.BatchRunner`: serially in-process and fanned out
over four worker processes, with the characterization cache pre-warmed
once and shared by both timings so the comparison isolates the run
loop. Asserts bit-identical results and, on machines with >= 4 cores,
a >= 2.5x wall-clock speedup (a scaled-down floor below that).
"""

import os

import numpy as np
from conftest import SWEEP_DURATION

from repro.experiments import common
from repro.runner import BatchRunner
from repro.sim.cache import CharacterizationCache
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig

#: Long enough per run that process startup/transport is amortized.
BATCH_DURATION = 2.0 * SWEEP_DURATION

#: The 6-config sweep: three Table II workloads x the paper's headline
#: comparison pair (variable flow vs. worst-case flow), one shared
#: 2-layer system so the warmed cache covers every run.
SWEEP: tuple[tuple[str, PolicyKind, CoolingMode], ...] = (
    ("gzip", PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
    ("gzip", PolicyKind.TALB, CoolingMode.LIQUID_MAX),
    ("Web-med", PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
    ("Web-med", PolicyKind.TALB, CoolingMode.LIQUID_MAX),
    ("Database", PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE),
    ("Database", PolicyKind.TALB, CoolingMode.LIQUID_MAX),
)


def _sweep_configs() -> list[SimulationConfig]:
    return [
        SimulationConfig(
            benchmark_name=workload,
            policy=policy,
            cooling=cooling,
            duration=BATCH_DURATION,
        )
        for workload, policy, cooling in SWEEP
    ]


def _expected_speedup() -> float:
    """The asserted floor, scaled to the machine.

    Four workers on >= 4 cores must clear the 2.5x acceptance bar. On
    1-3 logical CPUs the fan-out is core-bound (and when the logical
    CPUs are SMT siblings of one physical core, each concurrent worker
    runs at ~0.6x, so observed whole-batch speedups scatter around
    0.9-1.3x), so the floor only asserts the fan-out overhead stays
    bounded rather than a speedup the hardware cannot deliver.
    """
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        return 2.5
    if cpus >= 2:
        return 0.75
    return 0.4


def test_batch_parallel_speedup(benchmark):
    configs = _sweep_configs()
    cache = CharacterizationCache().warm(configs)

    serial = BatchRunner(configs, cache=cache, warm=False).run()
    parallel = benchmark.pedantic(
        lambda: BatchRunner(configs, max_workers=4, cache=cache, warm=False).run(),
        rounds=1,
        iterations=1,
    )

    speedup = serial.wall_time / parallel.wall_time
    rows = [
        {
            "mode": "serial",
            "workers": serial.n_workers,
            "wall_s": serial.wall_time,
            "runs": len(serial),
        },
        {
            "mode": "parallel",
            "workers": parallel.n_workers,
            "wall_s": parallel.wall_time,
            "runs": len(parallel),
        },
    ]
    print("\n" + common.format_rows(rows))
    print(f"speedup: {speedup:.2f}x on {os.cpu_count()} cores "
          f"(asserted floor {_expected_speedup():.2f}x)")

    # Fan-out must not change a single sample.
    for run_s, run_p in zip(serial.runs, parallel.runs):
        assert run_s.config == run_p.config
        assert np.array_equal(run_s.result.tmax, run_p.result.tmax)
        assert np.array_equal(
            run_s.result.completed_threads, run_p.result.completed_threads
        )
        assert run_s.result.sojourn_sum == run_p.result.sojourn_sum

    assert speedup >= _expected_speedup()
