"""Table II — the synthetic workloads match the published statistics."""

import pytest

from repro.experiments import common, table2


def test_table2_workload_characteristics(benchmark):
    rows = benchmark.pedantic(
        lambda: table2.run(duration=90.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    for row in rows:
        # The generator's offered load matches the "Avg Util" column.
        assert row["measured_util_pct"] == pytest.approx(
            row["paper_util_pct"], rel=0.3
        )
        # Thread lengths stay in the paper's measured regime.
        assert 30.0 < row["median_len_ms"] < 250.0

    # Web-high is the most memory-intensive workload (normalization
    # anchor of the crossbar power model).
    by_name = {r["benchmark"]: r for r in rows}
    assert by_name["Web-high"]["memory_intensity"] == 1.0
