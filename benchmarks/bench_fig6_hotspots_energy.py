"""Figure 6 — hot spots and energy for all seven policy/cooling combos.

Regenerates the full bar chart: average and hottest-workload hot-spot
percentages, and chip/pump energy normalized to LB (Air).
"""

from conftest import SWEEP_DURATION

from repro.experiments import common, fig6


def test_fig6_hotspots_and_energy(benchmark):
    rows = benchmark.pedantic(
        lambda: fig6.run(duration=SWEEP_DURATION),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_policy = {r["policy"]: r for r in rows}

    # Paper: liquid cooling at any flow eliminates the >85 degC hot
    # spots the air-cooled system shows.
    assert by_policy["LB (Air)"]["hotspots_avg_pct"] > 2.0
    for label in ("LB (Max)", "Mig (Max)", "TALB (Max)", "TALB (Var)"):
        assert by_policy[label]["hotspots_avg_pct"] == 0.0

    # Paper: variable flow cuts pump energy versus worst-case flow
    # while chip energy stays essentially flat.
    var = by_policy["TALB (Var)"]
    mx = by_policy["TALB (Max)"]
    assert var["energy_pump"] < 0.85 * mx["energy_pump"]
    assert abs(var["energy_chip"] - mx["energy_chip"]) < 0.05

    # Energy is normalized to LB (Air) chip energy.
    assert abs(by_policy["LB (Air)"]["energy_chip"] - 1.0) < 1e-9
    assert by_policy["LB (Air)"]["energy_pump"] == 0.0
