"""Sensitivity sweeps — robustness of the documented assumptions."""

from repro.experiments import common, sweeps


def test_inlet_temperature_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: sweeps.inlet_temperature_sweep(),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    # The operating band translates with the inlet; its width (the
    # flow rate's leverage) stays put, so the comparative results are
    # inlet-independent.
    widths = [r["band_width"] for r in rows]
    assert max(widths) - min(widths) < 2.0


def test_hysteresis_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: sweeps.hysteresis_sweep(duration=12.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_h = {r["hysteresis_K"]: r for r in rows}
    # The paper's 2 degC value holds the target; removing the guard
    # can only increase switching.
    assert by_h[2.0]["peak_temperature"] <= 80.5
    assert by_h[0.0]["setting_switches"] >= by_h[4.0]["setting_switches"]


def test_idle_power_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: sweeps.idle_power_sweep(),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    # A +/-0.5 W idle-power assumption moves low-utilization T_max by
    # a few kelvin only (DESIGN.md section 8).
    span = rows[-1]["tmax_low_util_min_flow"] - rows[0]["tmax_low_util_min_flow"]
    assert span < 8.0
