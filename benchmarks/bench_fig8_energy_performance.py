"""Figure 8 — performance and energy across cooling configurations."""

from conftest import SWEEP_DURATION

from repro.experiments import common, fig8


def test_fig8_energy_and_performance(benchmark):
    rows = benchmark.pedantic(
        lambda: fig8.run(duration=SWEEP_DURATION),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_policy = {r["policy"]: r for r in rows}

    # Paper: migration has a performance/energy overhead under air
    # cooling (temperature-triggered migrations burn extra work). At
    # these run lengths the throughput dip is within sampling noise, so
    # the robust observable is the chip-energy inflation; all policies
    # must stay within 2 % of LB's throughput.
    assert by_policy["Mig (Air)"]["energy_chip"] > by_policy["LB (Air)"]["energy_chip"]
    for label in ("Mig (Air)", "TALB (Air)", "LB (Max)", "TALB (Var)"):
        assert abs(by_policy[label]["performance"] - 1.0) < 0.02

    # Paper: TALB (Var) saves energy "without any effect on the
    # performance" relative to worst-case flow.
    assert (
        by_policy["TALB (Var)"]["energy_total"]
        < by_policy["LB (Max)"]["energy_total"]
    )
    assert by_policy["TALB (Var)"]["performance"] >= 0.99
