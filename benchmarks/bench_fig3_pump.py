"""Figure 3 — pump power and per-cavity flow rates.

Regenerates both series (2- and 4-layer per-cavity flows, pump power)
and checks them against the values read off the paper's figure.
"""

import pytest

from repro.experiments import common, fig3


def test_fig3_pump_curves(benchmark):
    rows = benchmark(fig3.run)
    print("\n" + common.format_rows(rows))

    flows_2l = [r["per_cavity_2layer_mlmin"] for r in rows]
    flows_4l = [r["per_cavity_4layer_mlmin"] for r in rows]
    powers = [r["pump_power_w"] for r in rows]

    # Paper: 2-layer series spans ~208-1042 ml/min, 4-layer 125-625.
    assert flows_2l[0] == pytest.approx(208.33, rel=1e-3)
    assert flows_2l[-1] == pytest.approx(1041.67, rel=1e-3)
    assert flows_4l[0] == pytest.approx(125.0, rel=1e-3)
    assert flows_4l[-1] == pytest.approx(625.0, rel=1e-3)
    # Paper: power rises quadratically from ~3.7 W to 21 W.
    assert powers[0] == pytest.approx(3.72, rel=0.01)
    assert powers[-1] == pytest.approx(21.0, rel=0.01)
    assert powers[-1] - powers[-2] > powers[1] - powers[0]
