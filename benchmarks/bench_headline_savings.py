"""The headline claim — cooling/total energy savings vs maximum flow.

"reducing the cooling energy by up to 30 %, and the overall energy by
up to 12 % in comparison to using the highest coolant flow rate",
while "the temperature is maintained below the target".
"""

from conftest import SWEEP_DURATION

from repro.constants import CONTROL
from repro.experiments import common, headline


def test_headline_savings(benchmark):
    rows = benchmark.pedantic(
        lambda: headline.run(duration=SWEEP_DURATION),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_workload = {r["workload"]: r for r in rows}

    # The 80 degC target holds for every workload (sensor level).
    for row in rows:
        assert row["peak_temperature"] <= CONTROL.target_temperature + 0.5

    # Savings are largest for the low-utilization workloads (the
    # paper's gzip/MPlayer observation) and exceed 30 % there.
    for light in ("gzip", "MPlayer"):
        assert by_workload[light]["cooling_savings_pct"] > 30.0
    assert (
        by_workload["gzip"]["cooling_savings_pct"]
        > by_workload["Web-high"]["cooling_savings_pct"]
    )
    # High-utilization workloads need near-worst-case flow: little to
    # save, confirming the controller is load-following, not a fixed
    # down-clock.
    assert by_workload["Web-high"]["cooling_savings_pct"] < 10.0
    assert by_workload["Web-high"]["mean_setting"] > 3.5
