"""Figure 7 — thermal variations (spatial gradients, cycles) with DPM.

Regenerates the bar chart of large spatial gradients (>15 degC) and
large thermal cycles (>20 degC) across all seven combos with DPM on.
"""

from conftest import SWEEP_DURATION

from repro.experiments import common, fig7


def test_fig7_thermal_variations(benchmark):
    rows = benchmark.pedantic(
        lambda: fig7.run(duration=SWEEP_DURATION),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_policy = {r["policy"]: r for r in rows}

    # Paper: "Our weighted load balancing technique (TALB) is able to
    # minimize both temporal and spatial thermal variations much more
    # effectively than other policies."
    assert (
        by_policy["TALB (Air)"]["spatial_gradients_pct"]
        < by_policy["LB (Air)"]["spatial_gradients_pct"]
    )
    assert (
        by_policy["TALB (Max)"]["spatial_gradients_pct"]
        < by_policy["LB (Max)"]["spatial_gradients_pct"]
    )
    assert (
        by_policy["TALB (Air)"]["thermal_cycles_pct"]
        <= by_policy["LB (Air)"]["thermal_cycles_pct"]
    )
    # Liquid cooling itself also suppresses variations vs air.
    assert (
        by_policy["LB (Max)"]["spatial_gradients_pct"]
        < by_policy["LB (Air)"]["spatial_gradients_pct"]
    )
