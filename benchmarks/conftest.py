"""Benchmark-suite configuration.

Every figure/table benchmark prints the regenerated rows (run with
``-s`` to see them) and asserts the paper's qualitative claims, so
``pytest benchmarks/ --benchmark-only`` is the full evaluation harness.
"""

#: Simulated seconds per (policy, workload) point in the figure sweeps.
#: Long enough for stationary statistics, short enough that the whole
#: suite regenerates in a few minutes.
SWEEP_DURATION = 10.0
