"""Ablations — the controller's design choices, isolated.

Extension study (DESIGN.md): proactive forecasting vs reactive control,
the 2 degC hysteresis, TALB's weight target, and grid resolution.
"""


from repro.experiments import ablations, common


def test_controller_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_controller_ablation(workload="Web-med", duration=15.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_variant = {r["variant"]: r for r in rows}
    full = by_variant["proactive+hysteresis (paper)"]
    no_hyst = by_variant["proactive, no hysteresis"]

    # Removing the hysteresis can only increase switching activity.
    assert no_hyst["setting_switches"] >= full["setting_switches"]
    # The paper's configuration keeps the target.
    assert full["peak_temperature"] <= 80.5


def test_controller_vs_prior_work(benchmark):
    """The paper's LUT+ARMA controller vs the [6] stepwise baseline."""
    rows = benchmark.pedantic(
        lambda: ablations.run_controller_comparison(duration=15.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    by_key = {(r["workload"], r["controller"]): r for r in rows}
    for workload in ("Web-med", "gzip"):
        lut = by_key[(workload, "LUT+ARMA (paper)")]
        step = by_key[(workload, "stepwise (prior work [6])")]
        # The paper's controller keeps the guarantee unconditionally.
        assert lut["peak_temperature"] <= 80.5
        # The prior-work ladder cannot dominate: wherever it spends
        # less pump energy than the LUT, it does so by under-cooling
        # (it reacts after the fact and has no characterized margin).
        if step["pump_energy"] < lut["pump_energy"] * 0.95:
            assert (
                step["peak_temperature"] > lut["peak_temperature"]
                or step["pct_above_target"] > 0.0
            )


def test_grid_resolution_convergence(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_grid_resolution_ablation(resolutions=(8, 16, 24)),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    # The flow-rate ordering (hotter at min flow) holds at every
    # resolution even though absolute values shift with the grid.
    for row in rows:
        assert row["tmax_at_min_flow"] > row["tmax_at_max_flow"]


def test_talb_weight_target_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_weight_sensitivity(workload="Web-med", duration=10.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    # All weight targets keep a modest spatial spread under max flow.
    for row in rows:
        assert row["mean_spatial_spread"] < 20.0
