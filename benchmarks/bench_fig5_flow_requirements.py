"""Figure 5 — flow rate required to cool a given T_max below 80 degC.

Regenerates the discrete staircase for the 2- and 4-layer systems and
the continuous minimum-flow curve for the 2-layer system.
"""

import numpy as np

from repro.experiments import common, fig5

UTILS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.93)


def test_fig5_staircase_2layer(benchmark):
    rows = benchmark.pedantic(
        lambda: fig5.run(2, utilizations=UTILS, include_continuous=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))

    temps = [r["tmax_at_lowest"] for r in rows]
    settings = [r["required_setting"] for r in rows]
    # Paper: the x axis spans roughly 70-90 degC...
    assert 68.0 < temps[0] < 78.0
    assert 82.0 < temps[-1] < 92.0
    # ...and the required flow climbs the whole ladder monotonically.
    assert settings == sorted(settings)
    assert settings[0] == 0
    assert settings[-1] >= 3
    assert all(r["holds_target"] for r in rows)


def test_fig5_staircase_4layer(benchmark):
    rows4 = benchmark.pedantic(
        lambda: fig5.run(4, utilizations=(0.0, 0.4, 0.8), include_continuous=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows4))
    rows2 = fig5.run(2, utilizations=(0.0, 0.4, 0.8), include_continuous=False)
    # Paper: the 4-layer system needs more flow at the same T_max
    # (its per-cavity share is lower and heat is stacked deeper).
    for r2, r4 in zip(rows2, rows4):
        assert r4["required_setting"] >= r2["required_setting"]


def test_fig5_continuous_curve(benchmark):
    rows = benchmark.pedantic(
        lambda: fig5.run(2, utilizations=(0.3, 0.6, 0.9), include_continuous=True),
        rounds=1,
        iterations=1,
    )
    print("\n" + common.format_rows(rows))
    # The continuous minimum (the circles in Figure 5) lies on or below
    # the discrete staircase, and rises with load.
    flows = []
    for row in rows:
        if np.isfinite(row["continuous_flow_mlmin"]):
            assert row["continuous_flow_mlmin"] <= row["discrete_flow_mlmin"] * 1.001
            flows.append(row["continuous_flow_mlmin"])
    assert flows == sorted(flows)
