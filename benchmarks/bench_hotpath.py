"""Machine-readable hot-path timing baseline (PR 3).

Times the thermal substrate's hot path — unit<->cell operators,
network assembly, factorization, transient steps, and a warm full
control interval — and emits a JSON document, so future PRs have a
perf trajectory to compare against::

    python benchmarks/bench_hotpath.py --out hotpath-timings.json

CI uploads the JSON as a dedicated artifact per commit. The file is
also importable as a pytest module: ``test_hotpath_baseline`` runs the
same measurements (fewer repetitions) and sanity-checks the payload,
without asserting absolute timings (they depend on the runner).

Reference numbers from the PR 3 development machine (medians; the
pre-vectorization seed in parentheses):

* ``assembly_64x64``: ~0.03-0.05 s (seed ~0.14-0.23 s)
* ``control_interval_32x32``: ~0.002 s (seed ~0.023-0.043 s) — the
  repeated-run cost every sweep/batch run pays after the first; the
  system memo shares assembled networks and factorizations across
  ``Simulator`` instances of the same configuration.

PR 7 adds a ``cohort`` section: warm throughput of a 16-run
policy-only sweep at 64x64 through the serial per-run path vs cohort
execution (exact and block modes), in runs/sec-per-core, plus the LU
factorization counters that gate the shared-kernel property. The
committed ``BENCH_hotpath.json`` at the repo root is the trajectory
baseline; ``benchmarks/compare_bench.py`` diffs a fresh run against it.

PR 8 (schema v3) adds a ``cross_network`` section: a 16-point
``thermal_params`` sweep at 64x64 where every design point is a
*different* network, run cold through both solver tiers. Exact pays a
fresh LU per point; krylov factorizes once and preconditions every
later point off the nearest retained LU, so the section records
factorization counts, the preconditioner hit rate, the worst
temperature deviation vs exact, and runs/sec-per-core for both tiers.

PR 9 (schema v4) sources every factorization and hit-rate counter from
the :mod:`repro.telemetry` metrics registry (snapshot diffs instead of
module-global reads) and adds a ``timing_breakdown`` section: the
``span.*`` timer histograms of a traced cold cohort sweep, reporting
where the wall clock goes (assembly, factorization, steady solves,
transient steps) as absolute totals and shares.

PR 10 (schema v5) adds a ``facility`` section: the warm 32x32 run
repeated with the closed-loop facility co-simulation enabled, so the
trajectory tracks the per-interval coupling overhead (the facility
advances through a pure RHS update — no refactorization — so the
overhead should stay in the low single-digit percent), plus the
closed-loop convergence residual as the algorithmic sanity value.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np
import scipy

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import units  # noqa: E402
from repro.geometry.stack import build_stack  # noqa: E402
from repro.runner import BatchRunner, CohortRunner  # noqa: E402
from repro.sim.cache import (  # noqa: E402
    CharacterizationCache,
    clear_system_memo,
)
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.thermal.grid import ThermalGrid  # noqa: E402
from repro.thermal.rc_network import ThermalParams, build_network  # noqa: E402
from repro.telemetry import metrics as telemetry_metrics  # noqa: E402
from repro.telemetry import trace as telemetry_trace  # noqa: E402
from repro.thermal.solver import (  # noqa: E402
    SteadyStateSolver,
    TransientSolver,
    clear_neighbor_cache,
)

FLOW = units.ml_per_minute(400.0)

SCHEMA_VERSION = 5


def _median_time(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _counter_delta(before: dict, after: dict, name: str) -> int:
    """A telemetry counter's movement between two registry snapshots."""
    return after["counters"].get(name, 0) - before["counters"].get(name, 0)


def _cohort_configs() -> list:
    """The cohort benchmark sweep: 16 runs (4 policies x 4 seeds) over
    one 64x64 thermal network — policy-only, so every run shares the
    same assembled/factorized kernel."""
    return [
        SimulationConfig(policy=policy, seed=seed, nx=64, ny=64, duration=0.2)
        for seed in range(4)
        for policy in ("TALB", "LB", "Mig", "RR")
    ]


def collect_cohort_metrics(repeats: int = 5) -> dict:
    """Cohort-vs-serial throughput on the 16-run policy sweep (PR 7).

    Throughput is runs/sec-per-core (everything here executes on one
    core; divide by ``max_workers`` when extrapolating to a pool). The
    ``warm_refactorizations`` counter is the algorithmic gate: a warm
    cohort campaign must perform zero LU factorizations — at most one
    factorization ever happens per (network, dt), however many runs
    step through it.
    """
    cache = CharacterizationCache()
    before = telemetry_metrics.snapshot()
    BatchRunner(_cohort_configs(), cohort="off", cache=cache).run()  # warm
    first_campaign_factorizations = _counter_delta(
        before, telemetry_metrics.snapshot(), "solver.factorizations"
    )

    def campaign_time(make) -> float:
        return _median_time(lambda: make().run(), repeats)

    serial_s = campaign_time(
        lambda: BatchRunner(_cohort_configs(), cohort="off", cache=cache)
    )
    exact_s = campaign_time(lambda: CohortRunner(_cohort_configs(), cache=cache))
    block_s = campaign_time(
        lambda: CohortRunner(_cohort_configs(), block=True, cache=cache)
    )

    before = telemetry_metrics.snapshot()
    CohortRunner(_cohort_configs(), cache=cache).run()
    warm_refactorizations = _counter_delta(
        before, telemetry_metrics.snapshot(), "solver.factorizations"
    )

    n_runs = len(_cohort_configs())
    return {
        "sweep": "16 runs (4 policies x 4 seeds), 64x64, 0.2 s simulated",
        "n_runs": n_runs,
        "serial_s": serial_s,
        "cohort_exact_s": exact_s,
        "cohort_block_s": block_s,
        "serial_runs_per_sec_per_core": n_runs / serial_s,
        "cohort_exact_runs_per_sec_per_core": n_runs / exact_s,
        "cohort_block_runs_per_sec_per_core": n_runs / block_s,
        "cohort_exact_speedup": serial_s / exact_s,
        "cohort_block_speedup": serial_s / block_s,
        "first_campaign_factorizations": first_campaign_factorizations,
        "warm_refactorizations": warm_refactorizations,
    }


def _cross_network_configs(solver: str, n_points: int = 16) -> list:
    """The cross-network benchmark sweep: ``n_points`` design points
    over a ``thermal_params`` axis at 64x64, so every run assembles a
    *different* network. RR + Max cooling keeps characterization (and
    controller quantization) out of the measurement."""
    return [
        SimulationConfig(
            policy="RR",
            cooling=CoolingMode.LIQUID_MAX,
            nx=64,
            ny=64,
            duration=0.2,
            solver=solver,
            thermal_params=ThermalParams(resistance_scale=4.0 + 0.06 * i),
        )
        for i in range(n_points)
    ]


def collect_cross_network_metrics(repeats: int = 3) -> dict:
    """Cross-network sweep throughput, exact vs krylov (PR 8).

    Every repetition runs *cold* (system memo and neighbor-LU cache
    cleared), so each sample pays the full per-point assembly and
    factorization/preconditioning cost — that is the cost a fresh
    design-space sweep pays. The algorithmic gate is the factorization
    count: exact pays steady+transient LUs per point, krylov must pay
    strictly fewer LUs than it has design points.
    """
    n_points = len(_cross_network_configs("exact"))

    def campaign(solver: str):
        clear_system_memo()
        clear_neighbor_cache()
        before = telemetry_metrics.snapshot()
        batch = BatchRunner(
            _cross_network_configs(solver),
            cohort="auto",
            cache=CharacterizationCache(),
        )
        start = time.perf_counter()
        runs = batch.run().runs
        elapsed = time.perf_counter() - start
        after = telemetry_metrics.snapshot()
        stats = {
            key: _counter_delta(before, after, "solver.krylov." + key)
            for key in ("preconditioner_hits", "preconditioner_misses", "fallbacks")
        }
        factorizations = _counter_delta(before, after, "solver.factorizations")
        return elapsed, factorizations, stats, runs

    exact_samples, krylov_samples = [], []
    max_abs_dT = 0.0
    for rep in range(max(1, repeats)):
        exact_s, exact_f, _, exact_runs = campaign("exact")
        krylov_s, krylov_f, k_stats, krylov_runs = campaign("krylov")
        exact_samples.append(exact_s)
        krylov_samples.append(krylov_s)
        if rep == 0:
            for e, k in zip(exact_runs, krylov_runs):
                max_abs_dT = max(
                    max_abs_dT,
                    float(np.abs(e.result.tmax - k.result.tmax).max()),
                )
    clear_system_memo()
    clear_neighbor_cache()

    exact_s = statistics.median(exact_samples)
    krylov_s = statistics.median(krylov_samples)
    hits = k_stats["preconditioner_hits"]
    misses = k_stats["preconditioner_misses"]
    return {
        "sweep": (
            f"{n_points} design points over thermal_params"
            " (resistance_scale), 64x64, 0.2 s simulated, cold"
        ),
        "n_points": n_points,
        "exact_s": exact_s,
        "krylov_s": krylov_s,
        "exact_runs_per_sec_per_core": n_points / exact_s,
        "krylov_runs_per_sec_per_core": n_points / krylov_s,
        "krylov_speedup": exact_s / krylov_s,
        "exact_factorizations": exact_f,
        "krylov_factorizations": krylov_f,
        "preconditioner_hit_rate": (
            hits / (hits + misses) if hits + misses else 0.0
        ),
        "krylov_fallbacks": k_stats["fallbacks"],
        "max_abs_dT_vs_exact_K": max_abs_dT,
    }


def collect_timing_breakdown() -> dict:
    """Span-derived timing shares of one cold cohort sweep (PR 9 / v4).

    Runs the 16-run cohort campaign cold with span tracing enabled and
    reports every ``span.*`` timer's count, total, and share of the
    campaign wall clock — the same breakdown ``repro telemetry
    summary`` prints for a ``--trace`` run, committed here so the
    trajectory tracks *where* the time goes, not just how much.
    """
    telemetry_trace.enable()
    clear_system_memo()
    before = telemetry_metrics.snapshot()
    start = time.perf_counter()
    BatchRunner(
        _cohort_configs(), cohort="auto", cache=CharacterizationCache()
    ).run()
    wall = time.perf_counter() - start
    delta = telemetry_metrics.snapshot_diff(before, telemetry_metrics.snapshot())
    telemetry_trace.disable()
    telemetry_trace.clear()
    spans = {}
    for key, stats in delta["timers"].items():
        if not key.startswith("span."):
            continue
        spans[key[len("span."):]] = {
            "count": stats["count"],
            "total_s": stats["total_s"],
            "share_of_wall": stats["total_s"] / wall if wall > 0 else 0.0,
        }
    return {
        "sweep": "16 runs (4 policies x 4 seeds), 64x64, 0.2 s simulated, cold",
        "wall_s": wall,
        "spans": spans,
    }


def collect_facility_metrics(repeats: int = 5) -> dict:
    """Facility co-simulation overhead and convergence (PR 10 / v5).

    Times the warm 1-simulated-second 32x32 run with and without the
    closed-loop facility. The coupling is a per-interval RHS update
    plus the plant energy balance — no extra factorizations — so the
    overhead is the honest price of closing the loop. The convergence
    residual (final inlet vs the supply setpoint after a 5 s pull-down
    with a small tank) is the algorithmic sanity value: it is a
    property of the control law, not the machine.
    """
    base_kwargs = dict(
        benchmark_name="gzip",
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=1.0,
        nx=32,
        ny=32,
    )
    fixed_config = SimulationConfig(**base_kwargs)
    loop_config = SimulationConfig(**base_kwargs, facility="closed-loop")
    cache = CharacterizationCache()
    Simulator(fixed_config, cache=cache).run()  # warm
    Simulator(loop_config, cache=cache).run()
    n = max(3, repeats // 2)
    fixed_s = _median_time(lambda: Simulator(fixed_config, cache=cache).run(), n)
    loop_s = _median_time(lambda: Simulator(loop_config, cache=cache).run(), n)

    setpoint = 55.0
    pulldown = SimulationConfig(
        **{**base_kwargs, "duration": 5.0},
        facility="closed-loop",
        facility_params={"supply_setpoint_c": setpoint, "loop_volume_l": 0.1},
    )
    result = Simulator(pulldown, cache=cache).run()
    final_inlet = float(result.facility_inlet[-1])

    return {
        "sweep": "warm 1 s simulated at 32x32, fixed inlet vs closed loop",
        "fixed_inlet_s": fixed_s,
        "closed_loop_s": loop_s,
        "coupling_overhead_pct": 100.0 * (loop_s - fixed_s) / fixed_s,
        "setpoint_c": setpoint,
        "converged_inlet_c": final_inlet,
        "inlet_error_K": abs(final_inlet - setpoint),
        "pue": result.pue(),
    }


def collect_timings(repeats: int = 5, include_107: bool = True) -> dict:
    """Run the hot-path measurements and return the JSON payload."""
    results: dict[str, float] = {}

    sizes = [16, 32, 64] + ([107] if include_107 else [])
    grids = {}
    for n in sizes:
        results[f"grid_construction_{n}x{n}"] = _median_time(
            lambda n=n: ThermalGrid(build_stack(2), nx=n, ny=n), max(3, repeats // 2)
        )
        grids[n] = ThermalGrid(build_stack(2), nx=n, ny=n)

    for n in sizes:
        results[f"assembly_{n}x{n}"] = _median_time(
            lambda n=n: build_network(grids[n], ThermalParams(), cavity_flows=[FLOW]),
            repeats if n < 107 else max(2, repeats // 2),
        )

    # Per-interval operators at 64x64.
    grid = grids[64]
    network = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
    temps = np.full(grid.n_nodes, 65.0)
    unit_powers = np.full(grid.n_units, 2.0)
    results["power_scatter_64x64"] = _median_time(
        lambda: grid.power_vector_from_array(unit_powers), repeats * 20
    )
    results["unit_gather_64x64"] = _median_time(
        lambda: grid.unit_temperature_vector(temps), repeats * 20
    )
    results["max_die_temperature_64x64"] = _median_time(
        lambda: grid.max_die_temperature(temps), repeats * 20
    )

    results["steady_factorization_32x32"] = _median_time(
        lambda: SteadyStateSolver(
            build_network(grids[32], ThermalParams(), cavity_flows=[FLOW])
        ),
        max(3, repeats // 2),
    )

    for n in (32, 64):
        net_n = build_network(grids[n], ThermalParams(), cavity_flows=[FLOW])
        solver = TransientSolver(net_n, dt=0.1)
        power = grids[n].power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
        state = np.full(net_n.n_nodes, 60.0)
        results[f"transient_step_{n}x{n}"] = _median_time(
            lambda solver=solver, state=state, power=power: solver.step(state, power),
            repeats * 4,
        )

    # Full control interval at 32x32: fresh Simulator.run of 1 simulated
    # second (10 intervals) with warm characterizations — includes the
    # per-run grid/assembly/factorization cost every sweep run pays.
    # gzip crosses one pump boundary, so two settings get assembled.
    config = SimulationConfig(
        benchmark_name="gzip",
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=1.0,
        nx=32,
        ny=32,
    )
    cache = CharacterizationCache()
    Simulator(config, cache=cache).run()  # warm
    run_1s = _median_time(
        lambda: Simulator(config, cache=cache).run(), max(3, repeats // 2)
    )
    results["simulated_second_32x32"] = run_1s
    results["control_interval_32x32"] = run_1s / 10.0

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "hotpath",
        "units": "seconds (median wall clock)",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "results": results,
        "cohort": collect_cohort_metrics(repeats=repeats),
        "cross_network": collect_cross_network_metrics(
            repeats=max(1, repeats // 2)
        ),
        "timing_breakdown": collect_timing_breakdown(),
        "facility": collect_facility_metrics(repeats=repeats),
    }


def test_hotpath_baseline(tmp_path):
    """Pytest entry: payload is well-formed; no absolute-time gates."""
    payload = collect_timings(repeats=2, include_107=False)
    out = tmp_path / "hotpath-timings.json"
    out.write_text(json.dumps(payload))
    loaded = json.loads(out.read_text())
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["results"]["assembly_64x64"] > 0.0
    assert loaded["results"]["control_interval_32x32"] > 0.0
    assert set(loaded["results"]) >= {
        "assembly_16x16",
        "assembly_32x32",
        "assembly_64x64",
        "transient_step_32x32",
        "transient_step_64x64",
        "power_scatter_64x64",
        "unit_gather_64x64",
        "simulated_second_32x32",
        "control_interval_32x32",
    }
    cohort = loaded["cohort"]
    assert cohort["n_runs"] == 16
    assert cohort["cohort_exact_speedup"] > 0.0
    assert cohort["cohort_block_speedup"] > 0.0
    # The algorithmic gate: warm cohorts never refactorize.
    assert cohort["warm_refactorizations"] == 0
    cross = loaded["cross_network"]
    assert cross["n_points"] == 16
    # The cross-network gate: krylov factorizes strictly fewer times
    # than it has design points, while exact pays steady+transient LUs
    # for every one of them.
    assert cross["exact_factorizations"] == 2 * cross["n_points"]
    assert cross["krylov_factorizations"] < cross["n_points"]
    assert cross["preconditioner_hit_rate"] > 0.0
    assert cross["max_abs_dT_vs_exact_K"] < 1.0e-6
    breakdown = loaded["timing_breakdown"]
    assert breakdown["wall_s"] > 0.0
    # The traced cold campaign must surface the core hot-path spans.
    assert {"factorize", "steady", "step"} <= set(breakdown["spans"])
    for stats in breakdown["spans"].values():
        assert stats["count"] > 0
        assert 0.0 <= stats["share_of_wall"]
    facility = loaded["facility"]
    assert facility["fixed_inlet_s"] > 0.0
    assert facility["closed_loop_s"] > 0.0
    # The convergence residual is algorithmic, not machine-dependent:
    # the 5 s pull-down must land the inlet on the setpoint.
    assert facility["inlet_error_K"] < 0.5
    assert facility["pue"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("hotpath-timings.json"),
        help="output JSON path (default: ./hotpath-timings.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="samples per measurement (median)"
    )
    parser.add_argument(
        "--skip-107",
        action="store_true",
        help="skip the paper-resolution (107x107) cases",
    )
    args = parser.parse_args(argv)
    payload = collect_timings(repeats=args.repeats, include_107=not args.skip_107)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for name, seconds in sorted(payload["results"].items()):
        print(f"{name:32s} {seconds * 1e3:10.3f} ms")
    cohort = payload["cohort"]
    print(f"\ncohort sweep: {cohort['sweep']}")
    print(
        f"  serial {cohort['serial_runs_per_sec_per_core']:.1f} runs/s"
        f"  exact {cohort['cohort_exact_runs_per_sec_per_core']:.1f}"
        f" ({cohort['cohort_exact_speedup']:.2f}x)"
        f"  block {cohort['cohort_block_runs_per_sec_per_core']:.1f}"
        f" ({cohort['cohort_block_speedup']:.2f}x)"
    )
    print(
        f"  factorizations: first campaign"
        f" {cohort['first_campaign_factorizations']},"
        f" warm {cohort['warm_refactorizations']}"
    )
    cross = payload["cross_network"]
    print(f"\ncross-network sweep: {cross['sweep']}")
    print(
        f"  exact {cross['exact_runs_per_sec_per_core']:.1f} runs/s"
        f"  krylov {cross['krylov_runs_per_sec_per_core']:.1f}"
        f" ({cross['krylov_speedup']:.2f}x)"
    )
    print(
        f"  factorizations: exact {cross['exact_factorizations']},"
        f" krylov {cross['krylov_factorizations']}"
        f" (hit rate {cross['preconditioner_hit_rate']:.0%},"
        f" {cross['krylov_fallbacks']} fallbacks,"
        f" max |dT| {cross['max_abs_dT_vs_exact_K']:.2e} K)"
    )
    breakdown = payload["timing_breakdown"]
    print(f"\ntiming breakdown: {breakdown['sweep']} ({breakdown['wall_s']:.2f}s)")
    for name, stats in sorted(
        breakdown["spans"].items(),
        key=lambda item: item[1]["total_s"],
        reverse=True,
    ):
        print(
            f"  {name:16s} count {stats['count']:>6}"
            f"  total {stats['total_s'] * 1e3:9.1f} ms"
            f"  {stats['share_of_wall']:6.1%} of wall"
        )
    facility = payload["facility"]
    print(f"\nfacility co-simulation: {facility['sweep']}")
    print(
        f"  fixed inlet {facility['fixed_inlet_s'] * 1e3:.1f} ms"
        f"  closed loop {facility['closed_loop_s'] * 1e3:.1f} ms"
        f"  (+{facility['coupling_overhead_pct']:.1f}%)"
    )
    print(
        f"  pull-down convergence: inlet {facility['converged_inlet_c']:.2f} degC"
        f" vs setpoint {facility['setpoint_c']:.1f}"
        f" (|err| {facility['inlet_error_K']:.3f} K, PUE {facility['pue']:.3f})"
    )
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
