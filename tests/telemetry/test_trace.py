"""Span tracing: null path, nesting, ring buffer, export/validate."""

import json
import time

import pytest

from repro.io.jsonl import json_line
from repro.telemetry import trace


@pytest.fixture
def tracing():
    """Enable tracing for one test, restoring the disabled default."""
    trace.enable(capacity=4096)
    trace.clear()
    yield trace
    trace.disable()
    trace.clear()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not trace.enabled()

    def test_span_returns_shared_noop_singleton(self):
        """The overhead guard: while disabled, span() allocates nothing —
        every call returns the one module-level null span."""
        a = trace.span("assemble")
        b = trace.span("factorize", n_nodes=100)
        assert a is b is trace._NULL_SPAN
        with a as s:
            s.set_attrs(anything=1)

    def test_disabled_records_no_events(self):
        with trace.span("ghost"):
            pass
        assert trace.events() == []

    def test_disabled_hot_loop_overhead_is_negligible(self):
        """200k disabled span entries must stay far under a second —
        one flag check plus a shared context manager, no allocation."""
        t0 = time.perf_counter()
        for i in range(200_000):
            with trace.span("hot", index=i):
                pass
        assert time.perf_counter() - t0 < 2.0


class TestRecording:
    def test_event_schema(self, tracing):
        with trace.span("steady", tier="krylov") as s:
            s.set_attrs(n_rhs=4)
        (event,) = trace.events()
        for key in trace.SPAN_REQUIRED_KEYS:
            assert key in event
        assert event["name"] == "steady"
        assert event["parent"] is None
        assert event["attrs"] == {"tier": "krylov", "n_rhs": 4}

    def test_nesting_assigns_parent_ids(self, tracing):
        with trace.span("outer"):
            with trace.span("middle"):
                with trace.span("inner"):
                    pass
        inner, middle, outer = trace.events()  # children exit first
        assert inner["parent"] == middle["span"]
        assert middle["parent"] == outer["span"]
        assert outer["parent"] is None
        assert len({e["span"] for e in (inner, middle, outer)}) == 3

    def test_siblings_share_parent(self, tracing):
        with trace.span("parent"):
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        a, b, parent = trace.events()
        assert a["parent"] == b["parent"] == parent["span"]

    def test_attrs_become_jsonable(self, tracing):
        import numpy as np

        with trace.span("assemble", grid=(4, 8), n=np.int64(3)):
            pass
        (event,) = trace.events()
        assert event["attrs"] == {"grid": [4, 8], "n": 3}
        json.dumps(event)

    def test_ring_buffer_drops_oldest(self):
        trace.enable(capacity=4)
        trace.clear()
        try:
            for i in range(10):
                with trace.span("s", index=i):
                    pass
            kept = [e["attrs"]["index"] for e in trace.events()]
            assert kept == [6, 7, 8, 9]
        finally:
            trace.disable()
            trace.clear()

    def test_spans_feed_timer_histograms(self, tracing):
        from repro.telemetry import metrics

        before = metrics.timer("span.fold").stats() or {"count": 0}
        with trace.span("fold"):
            pass
        after = metrics.timer("span.fold").stats()
        assert after["count"] == before["count"] + 1


class TestTraceContext:
    def test_disabled_context_is_none(self):
        assert trace.trace_context() is None
        trace.install_trace_context(None)  # no-op
        assert not trace.enabled()

    def test_context_roundtrip(self, tracing):
        context = trace.trace_context()
        assert context["enabled"] is True
        trace.disable()
        trace.install_trace_context(context)
        assert trace.enabled()


class TestExportValidate:
    def test_roundtrip_validates(self, tracing, tmp_path):
        with trace.span("steady"):
            with trace.span("factorize", kind="steady"):
                pass
        path = trace.export_trace(tmp_path / "trace.jsonl")
        report = trace.validate_trace(path)
        assert report.ok, report.errors
        assert report.n_spans == 2
        assert report.span_totals["factorize"]["count"] == 1
        assert report.metrics is not None

    def test_export_is_overwrite_safe(self, tracing, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace.span("a"):
            pass
        trace.export_trace(path)
        trace.export_trace(path)
        assert trace.validate_trace(path).ok

    def test_validate_flags_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json_line({"kind": "span"}) + "\n")
        report = trace.validate_trace(path)
        assert any("header" in e for e in report.errors)

    def test_validate_flags_missing_keys_and_duplicates(self, tmp_path):
        header = {
            "kind": "header", "format": trace.TRACE_FORMAT,
            "version": trace.TRACE_VERSION,
        }
        span = {
            "kind": "span", "name": "x", "span": 1, "parent": None,
            "t_start": 0.0, "duration_s": 1.0, "pid": 1, "thread": 1,
        }
        bad = dict(span)
        del bad["duration_s"]
        path = tmp_path / "bad.jsonl"
        path.write_text(
            "".join(json_line(p) + "\n" for p in (header, span, span, bad))
        )
        report = trace.validate_trace(path)
        assert any("duplicate span id" in e for e in report.errors)
        assert any("missing keys" in e for e in report.errors)

    def test_validate_flags_misnested_child(self, tmp_path):
        header = {
            "kind": "header", "format": trace.TRACE_FORMAT,
            "version": trace.TRACE_VERSION,
        }
        parent = {
            "kind": "span", "name": "p", "span": 1, "parent": None,
            "t_start": 0.0, "duration_s": 1.0, "pid": 1, "thread": 1,
        }
        child = {
            "kind": "span", "name": "c", "span": 2, "parent": 1,
            "t_start": 0.5, "duration_s": 5.0, "pid": 1, "thread": 1,
        }
        path = tmp_path / "bad.jsonl"
        path.write_text(
            "".join(json_line(p) + "\n" for p in (header, parent, child))
        )
        report = trace.validate_trace(path)
        assert any("not nested" in e for e in report.errors)

    def test_validate_tolerates_ring_evicted_parent(self, tmp_path):
        """A parent older than the buffer (lower id, absent) is fine; a
        parent that could never have been exported (>= own id) is not."""
        header = {
            "kind": "header", "format": trace.TRACE_FORMAT,
            "version": trace.TRACE_VERSION,
        }
        evicted_ok = {
            "kind": "span", "name": "c", "span": 10, "parent": 2,
            "t_start": 0.0, "duration_s": 1.0, "pid": 1, "thread": 1,
        }
        impossible = {
            "kind": "span", "name": "d", "span": 11, "parent": 99,
            "t_start": 0.0, "duration_s": 1.0, "pid": 1, "thread": 1,
        }
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json_line(p) + "\n" for p in (header, evicted_ok, impossible))
        )
        report = trace.validate_trace(path)
        assert report.errors == ["span 11: dangling parent 99"]
