"""Metrics registry: counters, gauges, timers, snapshot/diff/merge."""

import json
import threading

import pytest

from repro.telemetry.metrics import (
    MetricsRegistry,
    TIMER_BUCKET_BOUNDS,
    series_key,
    snapshot_diff,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSeriesKey:
    def test_no_labels_is_bare_name(self):
        assert series_key("solver.factorizations", {}) == "solver.factorizations"

    def test_labels_sorted_deterministically(self):
        a = series_key("runs", {"tier": "krylov", "mode": "block"})
        b = series_key("runs", {"mode": "block", "tier": "krylov"})
        assert a == b == "runs{mode=block,tier=krylov}"


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("runs")
        assert c.value() == 0
        c.inc()
        c.inc(5)
        assert c.value() == 6

    def test_labeled_series_are_independent(self, registry):
        c = registry.counter("runs")
        c.inc(tier="exact")
        c.inc(2, tier="krylov")
        assert c.value(tier="exact") == 1
        assert c.value(tier="krylov") == 2
        assert c.value() == 0

    def test_total_sums_all_series(self, registry):
        c = registry.counter("runs")
        c.inc(3)
        c.inc(2, tier="krylov")
        assert c.total() == 5

    def test_handles_are_cached(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_thread_safe_increments(self, registry):
        c = registry.counter("contended")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestGauge:
    def test_last_write_wins(self, registry):
        g = registry.gauge("cache.systems")
        g.set(3)
        g.set(4)
        assert g.value() == 4.0


class TestTimer:
    def test_observe_and_stats(self, registry):
        t = registry.timer("span.step")
        t.observe(0.002)
        t.observe(0.2)
        stats = t.stats()
        assert stats["count"] == 2
        assert stats["total_s"] == pytest.approx(0.202)
        assert stats["min_s"] == pytest.approx(0.002)
        assert stats["max_s"] == pytest.approx(0.2)

    def test_buckets_are_cumulative_free_log_bins(self, registry):
        t = registry.timer("t")
        t.observe(1.0e-6)  # first bucket
        t.observe(50.0)  # <= 100 bucket
        t.observe(1000.0)  # +inf bucket
        buckets = t.stats()["buckets"]
        assert buckets[f"{TIMER_BUCKET_BOUNDS[0]:g}"] == 1
        assert buckets["100"] == 1
        assert buckets["+inf"] == 1

    def test_time_context_manager(self, registry):
        t = registry.timer("block")
        with t.time():
            pass
        assert t.stats()["count"] == 1

    def test_unobserved_series_is_none(self, registry):
        assert registry.timer("never").stats() is None


class TestSnapshot:
    def test_snapshots_of_same_state_are_byte_identical(self, registry):
        registry.counter("b").inc()
        registry.counter("a").inc(2, z="1", a="2")
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.1)
        one = json.dumps(registry.snapshot(), sort_keys=False)
        two = json.dumps(registry.snapshot(), sort_keys=False)
        assert one == two

    def test_snapshot_is_a_copy(self, registry):
        registry.counter("a").inc()
        snap = registry.snapshot()
        snap["counters"]["a"] = 999
        assert registry.counter("a").value() == 1

    def test_keys_sorted(self, registry):
        registry.counter("z").inc()
        registry.counter("a").inc()
        assert list(registry.snapshot()["counters"]) == ["a", "z"]


class TestSnapshotDiff:
    def test_counters_subtract_and_zero_deltas_drop(self, registry):
        registry.counter("a").inc(2)
        registry.counter("b").inc(1)
        before = registry.snapshot()
        registry.counter("a").inc(3)
        diff = snapshot_diff(before, registry.snapshot())
        assert diff["counters"] == {"a": 3}

    def test_new_series_appear_whole(self, registry):
        before = registry.snapshot()
        registry.counter("fresh").inc(7)
        diff = snapshot_diff(before, registry.snapshot())
        assert diff["counters"] == {"fresh": 7}

    def test_timer_histograms_subtract(self, registry):
        registry.timer("t").observe(0.5)
        before = registry.snapshot()
        registry.timer("t").observe(0.25)
        registry.timer("t").observe(0.75)
        diff = snapshot_diff(before, registry.snapshot())
        stats = diff["timers"]["t"]
        assert stats["count"] == 2
        assert stats["total_s"] == pytest.approx(1.0)

    def test_gauges_take_after_value(self, registry):
        registry.gauge("g").set(1.0)
        before = registry.snapshot()
        registry.gauge("g").set(4.0)
        diff = snapshot_diff(before, registry.snapshot())
        assert diff["gauges"] == {"g": 4.0}


class TestMerge:
    def test_merging_diff_reproduces_activity(self, registry):
        registry.counter("c").inc(2)
        registry.timer("t").observe(0.1)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.timer("t").observe(0.2)
        diff = snapshot_diff(before, registry.snapshot())

        other = MetricsRegistry()
        other.counter("c").inc(10)
        other.merge(diff)
        assert other.counter("c").value() == 13
        assert other.timer("t").stats()["count"] == 1
        assert other.timer("t").stats()["total_s"] == pytest.approx(0.2)

    def test_merge_sums_are_associative_for_shards(self):
        """Per-shard deltas merged in any order give one campaign total."""
        deltas = [
            {"counters": {"solver.factorizations": 3}, "gauges": {}, "timers": {}},
            {"counters": {"solver.factorizations": 5}, "gauges": {}, "timers": {}},
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for d in deltas:
            forward.merge(d)
        for d in reversed(deltas):
            backward.merge(d)
        assert (
            forward.counter("solver.factorizations").value()
            == backward.counter("solver.factorizations").value()
            == 8
        )

    def test_reset_zeroes_everything(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.timer("t").observe(0.1)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "timers": {}}
