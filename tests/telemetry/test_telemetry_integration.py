"""Telemetry across the stack: shims, byte-identity, campaign rollup.

The acceptance properties of the telemetry subsystem:

* the legacy ``factorization_count()`` / ``krylov_stats()`` APIs are
  byte-compatible shims over the registry (and ``krylov_stats`` returns
  a snapshot copy, never a live mutable view);
* tracing never changes results — sweep exports are byte-identical
  with tracing on or off, and telemetry-off shard journals carry no
  telemetry lines at all;
* a campaign worked by telemetry-enabled workers merges into one
  aggregated metrics report whose ``solver.factorizations`` matches
  the legacy counter's delta exactly.
"""

import time

import pytest

from repro.dist import (
    campaign_status,
    merge_campaign,
    plan_campaign,
    read_ledger,
    run_worker,
)
from repro.io.dist import read_shard_journal, try_claim_lease
from repro.io.jsonl import read_jsonl
from repro.sim.config import SimulationConfig
from repro.sweep import SweepRunner, SweepSpec
from repro.telemetry import metrics, trace
from repro.thermal.solver import factorization_count, krylov_stats


def small_spec(name, duration=1.0):
    return SweepSpec(
        base=SimulationConfig(duration=duration),
        grid={"benchmark_name": ["gzip", "Web-med"], "cooling": ["Var", "Max"]},
        name=name,
    )


@pytest.fixture
def tracing():
    trace.enable(capacity=8192)
    trace.clear()
    yield trace
    trace.disable()
    trace.clear()


class TestLegacyShims:
    def test_factorization_count_is_the_registry_counter(self):
        assert (
            factorization_count()
            == metrics.counter("solver.factorizations").value()
        )

    def test_krylov_stats_is_the_registry_counters(self):
        stats = krylov_stats()
        for key, value in stats.items():
            assert value == metrics.counter("solver.krylov." + key).value()

    def test_krylov_stats_returns_snapshot_copy(self):
        """Mutating a returned stats dict must never leak back."""
        stats = krylov_stats()
        original = dict(stats)
        stats["iterations"] += 1000
        stats["fallbacks"] = -1
        assert krylov_stats() == original


class TestByteIdentity:
    def test_sweep_outputs_identical_with_tracing_on(self, tmp_path):
        spec = small_spec("telemetry-identity")
        off = SweepRunner(spec, csv_path=tmp_path / "off.csv").run()
        off.save_json(tmp_path / "off.json")
        trace.enable()
        try:
            on = SweepRunner(spec, csv_path=tmp_path / "on.csv").run()
            on.save_json(tmp_path / "on.json")
        finally:
            trace.disable()
            trace.clear()
        assert (tmp_path / "on.csv").read_bytes() == (
            tmp_path / "off.csv"
        ).read_bytes()
        assert (tmp_path / "on.json").read_bytes() == (
            tmp_path / "off.json"
        ).read_bytes()

    def test_untraced_shard_journals_carry_no_telemetry_lines(self, tmp_path):
        """Tracing off (the default) leaves the journal format exactly
        as it was before telemetry existed."""
        spec = small_spec("telemetry-off-journal")
        plan_campaign(spec, tmp_path, chunk_size=2)
        assert not trace.enabled()
        run_worker(tmp_path, worker_id="w", wait=False)
        ledger = read_ledger(tmp_path)
        for shard in ledger.shards:
            entries = read_jsonl(ledger.shard_journal_path(shard)).entries
            assert all(e.get("kind") != "telemetry" for e in entries)
            journal = read_shard_journal(
                ledger.shard_journal_path(shard), shard, ledger.fingerprint
            )
            assert journal.telemetry is None
        assert merge_campaign(tmp_path).telemetry is None


class TestCampaignAggregation:
    def test_merged_factorizations_match_legacy_counter(self, tmp_path, tracing):
        """Two telemetry-enabled workers -> one campaign-wide metrics
        report whose solver.factorizations equals the legacy counter's
        delta over the same work, exactly."""
        from repro.sim.cache import clear_system_memo

        spec = small_spec("telemetry-campaign")
        plan_campaign(spec, tmp_path, chunk_size=2)
        # Drop memoized systems so the campaign factorizes afresh —
        # otherwise earlier tests' warm memo makes both deltas zero and
        # the equality below trivially weak.
        clear_system_memo()
        before = factorization_count()
        run_worker(tmp_path, worker_id="w1", max_shards=1, wait=False)
        run_worker(tmp_path, worker_id="w2", wait=False)
        legacy_delta = factorization_count() - before

        merged = merge_campaign(tmp_path)
        assert merged.complete
        assert merged.telemetry is not None
        assert legacy_delta > 0
        assert (
            merged.telemetry["counters"]["solver.factorizations"]
            == legacy_delta
        )
        # The per-shard deltas carry the span-derived timers too.
        assert any(
            key.startswith("span.") for key in merged.telemetry["timers"]
        )

    def test_shard_journal_telemetry_is_per_shard_delta(self, tmp_path, tracing):
        """Each shard journals only its own activity — the deltas sum
        to the whole, with no double counting across shards."""
        spec = small_spec("telemetry-per-shard")
        plan_campaign(spec, tmp_path, chunk_size=2)
        before = factorization_count()
        run_worker(tmp_path, worker_id="w", wait=False)
        total = factorization_count() - before
        ledger = read_ledger(tmp_path)
        per_shard = []
        for shard in ledger.shards:
            journal = read_shard_journal(
                ledger.shard_journal_path(shard), shard, ledger.fingerprint
            )
            per_shard.append(
                journal.telemetry["counters"].get("solver.factorizations", 0)
            )
        assert sum(per_shard) == total


class TestStatusHeartbeat:
    def test_running_shard_reports_fresh_heartbeat(self, tmp_path):
        spec = small_spec("telemetry-heartbeat")
        plan_campaign(spec, tmp_path, chunk_size=2)
        ledger = read_ledger(tmp_path)
        try_claim_lease(ledger.lease_path(ledger.shards[0]), "w1", ttl=60.0)
        state = campaign_status(tmp_path).shards[0]
        assert state.state == "running"
        assert state.worker == "w1"
        assert 0.0 <= state.heartbeat_age_s < 30.0

    def test_stale_shard_reports_heartbeat_older_than_ttl(self, tmp_path):
        spec = small_spec("telemetry-stale")
        plan_campaign(spec, tmp_path, chunk_size=2)
        ledger = read_ledger(tmp_path)
        # A lease claimed 100 s ago with a 30 s ttl: long past deadline.
        try_claim_lease(
            ledger.lease_path(ledger.shards[1]), "w2", ttl=30.0,
            now=time.time() - 100.0,
        )
        state = campaign_status(tmp_path).shards[1]
        assert state.state == "stale"
        assert state.heartbeat_age_s >= 99.0
        assert state.heartbeat_age_s > 30.0

    def test_pending_and_done_shards_have_no_heartbeat(self, tmp_path):
        spec = small_spec("telemetry-no-heartbeat")
        plan_campaign(spec, tmp_path, chunk_size=2)
        state = campaign_status(tmp_path).shards[0]
        assert state.state == "pending"
        assert state.heartbeat_age_s is None


class TestHotPathInstrumentation:
    def test_simulation_emits_expected_span_tree(self, tracing):
        from repro.sim.cache import clear_system_memo
        from repro.sim.engine import simulate

        # Assembly/factorization spans only fire on memo misses.
        clear_system_memo()
        simulate(SimulationConfig(duration=1.0))
        names = {e["name"] for e in trace.events()}
        assert {"assemble", "factorize", "steady", "step"} <= names
        # step_begin/step_finish nest inside their step span.
        events = trace.events()
        by_id = {e["span"]: e for e in events}
        begins = [e for e in events if e["name"] == "step_begin"]
        assert begins
        assert all(
            by_id[e["parent"]]["name"] == "step" for e in begins if e["parent"]
        )

    def test_system_memo_counters_track_hits_and_misses(self):
        from repro.sim.cache import clear_system_memo, system_for

        hits = metrics.counter("cache.system.hits")
        misses = metrics.counter("cache.system.misses")
        clear_system_memo()
        config = SimulationConfig(duration=1.0)
        h0, m0 = hits.value(), misses.value()
        system_for(config)
        assert misses.value() == m0 + 1
        assert hits.value() == h0
        system_for(config)
        assert hits.value() == h0 + 1
