"""The Laing DDC pump model (Figure 3) and its runtime state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import ConfigurationError, ModelError
from repro.pump.laing_ddc import (
    LAING_DDC_SETTINGS_LH,
    PumpModel,
    PumpState,
    laing_ddc,
)


class TestFigure3Values:
    def test_five_settings(self):
        assert LAING_DDC_SETTINGS_LH == (75.0, 150.0, 225.0, 300.0, 375.0)

    def test_per_cavity_flows_2layer(self):
        """Figure 3's 2-layer series: ~208 to ~1042 ml/min per cavity."""
        pump = laing_ddc(n_cavities=3)
        flows = [units.to_ml_per_minute(f) for f in pump.per_cavity_flows()]
        assert flows[0] == pytest.approx(208.33, rel=1e-3)
        assert flows[-1] == pytest.approx(1041.67, rel=1e-3)

    def test_per_cavity_flows_4layer(self):
        """Figure 3's 4-layer series: ~125 to ~625 ml/min per cavity."""
        pump = laing_ddc(n_cavities=5)
        flows = [units.to_ml_per_minute(f) for f in pump.per_cavity_flows()]
        assert flows[0] == pytest.approx(125.0, rel=1e-3)
        assert flows[-1] == pytest.approx(625.0, rel=1e-3)

    def test_per_cavity_range_spans_table1(self):
        """Table I gives 0.1-1 l/min per cavity; the 2-layer ladder
        covers within 2x of both ends."""
        pump = laing_ddc(n_cavities=3)
        lo = units.to_litres_per_minute(pump.min_setting.per_cavity_flow)
        hi = units.to_litres_per_minute(pump.max_setting.per_cavity_flow)
        assert 0.1 <= lo * 2
        assert hi <= 1.1

    def test_power_endpoints(self):
        """Figure 3's right axis: ~3.7 W lowest, 21 W highest."""
        pump = laing_ddc(n_cavities=3)
        assert pump.min_setting.power == pytest.approx(3.72, rel=1e-3)
        assert pump.max_setting.power == pytest.approx(21.0, rel=1e-3)

    def test_power_quadratic_in_flow(self):
        """'The pump power increases quadratically with the increase in
        flow rate': second differences of P(f^2) vanish."""
        pump = laing_ddc(n_cavities=3)
        flows = [s.pump_flow for s in pump.settings]
        powers = pump.powers()
        # P = a + b*f^2: check P against the exact quadratic form.
        f_max = flows[-1]
        for f, p in zip(flows, powers):
            assert p == pytest.approx(3.0 + 18.0 * (f / f_max) ** 2, rel=1e-9)

    def test_power_strictly_increasing(self):
        powers = laing_ddc(3).powers()
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_efficiency_derating_50pct(self):
        """'a global reduction in the flow rate by 50%'."""
        pump = laing_ddc(n_cavities=3)
        nominal = pump.settings[0].pump_flow / 3
        assert pump.settings[0].per_cavity_flow == pytest.approx(nominal * 0.5)


class TestPumpModelValidation:
    def test_rejects_unsorted_settings(self):
        with pytest.raises(ConfigurationError):
            PumpModel(settings_lh=(150.0, 75.0))

    def test_rejects_empty_settings(self):
        with pytest.raises(ConfigurationError):
            PumpModel(settings_lh=())

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            PumpModel(efficiency=0.0)
        with pytest.raises(ConfigurationError):
            PumpModel(efficiency=1.5)

    def test_rejects_bad_cavities(self):
        with pytest.raises(ConfigurationError):
            PumpModel(n_cavities=0)

    def test_setting_index_bounds(self):
        pump = laing_ddc(3)
        with pytest.raises(ConfigurationError):
            pump.setting(5)
        with pytest.raises(ConfigurationError):
            pump.setting(-1)


class TestMinSettingReaching:
    def test_exact_match(self):
        pump = laing_ddc(3)
        for s in pump.settings:
            assert pump.min_setting_reaching(s.per_cavity_flow).index == s.index

    def test_between_settings_rounds_up(self):
        pump = laing_ddc(3)
        need = 0.5 * (
            pump.settings[1].per_cavity_flow + pump.settings[2].per_cavity_flow
        )
        assert pump.min_setting_reaching(need).index == 2

    def test_unreachable_raises(self):
        pump = laing_ddc(3)
        with pytest.raises(ModelError):
            pump.min_setting_reaching(pump.max_setting.per_cavity_flow * 2)

    @given(st.floats(min_value=1e-7, max_value=1.7e-5))
    def test_returned_setting_suffices(self, need):
        pump = laing_ddc(3)
        if need > pump.max_setting.per_cavity_flow:
            return
        setting = pump.min_setting_reaching(need)
        assert setting.per_cavity_flow >= need * (1 - 1e-12)
        if setting.index > 0:
            assert pump.settings[setting.index - 1].per_cavity_flow < need


class TestPumpState:
    def test_transition_delay(self):
        """A commanded change only takes effect after 300 ms."""
        state = PumpState(laing_ddc(3), current_index=0)
        state.command(3, now=1.0)
        state.advance(1.1)
        assert state.current_index == 0  # Still transitioning.
        assert state.commanded_index == 3
        state.advance(1.31)
        assert state.current_index == 3

    def test_power_follows_command_immediately(self):
        state = PumpState(laing_ddc(3), current_index=0)
        state.command(4, now=0.0)
        assert state.electrical_power() == pytest.approx(21.0, rel=1e-3)

    def test_same_command_is_noop(self):
        state = PumpState(laing_ddc(3), current_index=2)
        state.command(2, now=0.0)
        state.advance(10.0)
        assert state.current_index == 2

    def test_recommand_during_transition(self):
        state = PumpState(laing_ddc(3), current_index=0)
        state.command(4, now=0.0)
        state.command(1, now=0.1)  # Changed mind mid-transition.
        state.advance(0.41)
        assert state.current_index == 1

    def test_effective_setting(self):
        state = PumpState(laing_ddc(3), current_index=2)
        assert state.effective_setting().index == 2

    def test_rejects_bad_initial(self):
        with pytest.raises(ConfigurationError):
            PumpState(laing_ddc(3), current_index=9)

    def test_rejects_bad_command(self):
        state = PumpState(laing_ddc(3))
        with pytest.raises(ConfigurationError):
            state.command(7, now=0.0)
