"""Throttled progress reporting (rate limit, quiet, final summary)."""

import io

from repro.progress import ProgressReporter


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(total=100, quiet=False, min_interval=0.25, label="sweep"):
    stream = io.StringIO()
    clock = FakeClock()
    reporter = ProgressReporter(
        total, label=label, stream=stream, min_interval=min_interval,
        quiet=quiet, clock=clock,
    )
    return reporter, stream, clock


class TestThrottling:
    def test_first_update_prints(self):
        reporter, stream, _ = make()
        reporter.update(1, "run 1")
        assert "sweep: 1/100 (1%)" in stream.getvalue()
        assert "run 1" in stream.getvalue()

    def test_updates_inside_interval_are_swallowed(self):
        reporter, stream, clock = make(min_interval=0.25)
        for i in range(50):
            reporter.update(i + 1)
            clock.advance(0.001)  # 1000 folds/s — must not print 1000 lines
        assert reporter.lines_printed == 1

    def test_updates_past_interval_print(self):
        reporter, _, clock = make(min_interval=0.25)
        reporter.update(1)
        clock.advance(0.3)
        reporter.update(2)
        clock.advance(0.1)
        reporter.update(3)  # throttled
        assert reporter.lines_printed == 2

    def test_finish_bypasses_rate_limit(self):
        """The stream must never end on a stale intermediate count."""
        reporter, stream, clock = make(min_interval=10.0)
        reporter.update(1)
        reporter.finish(100)
        assert "100/100 (100%)" in stream.getvalue()

    def test_finish_reports_elapsed(self):
        reporter, stream, clock = make()
        clock.advance(3.0)
        reporter.finish(100)
        assert "3.0s" in stream.getvalue()


class TestQuiet:
    def test_quiet_silences_updates_and_finish(self):
        """Quiet mode is fully silent on the progress stream — the CLI
        commands print their own stdout summary instead."""
        reporter, stream, _ = make(quiet=True)
        for i in range(10):
            reporter.update(i + 1)
        reporter.finish(10)
        assert stream.getvalue() == ""


class TestFormatting:
    def test_unknown_total_omits_percentage(self):
        reporter, stream, _ = make(total=0, label="dist")
        reporter.update(7, "shard 3")
        text = stream.getvalue()
        assert "dist: 7" in text
        assert "%" not in text

    def test_no_label(self):
        reporter, stream, _ = make(label="")
        reporter.update(5)
        assert stream.getvalue().strip().startswith("5/100")
