"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* valid configuration, not just the
paper's: RC-network passivity, scheduler conservation laws, LUT
monotonicity on arbitrary monotone characterizations.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import units
from repro.control.flow_table import CharacterizationResult, FlowRateTable
from repro.geometry.stack import build_stack
from repro.sched.base import CoreQueues
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import SteadyStateSolver
from repro.workload.threads import Thread

slow_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestNetworkPassivity:
    @slow_settings
    @given(
        nx=st.integers(min_value=4, max_value=12),
        flow_mlmin=st.floats(min_value=50.0, max_value=1100.0),
        scale=st.floats(min_value=1.0, max_value=8.0),
    )
    def test_steady_state_bounded_by_inlet_and_power(self, nx, flow_mlmin, scale):
        """Passivity: with non-negative power every node sits at or
        above the inlet temperature, and with zero power exactly at it,
        for any grid resolution, flow, and calibration scale."""
        grid = ThermalGrid(build_stack(2), nx=nx, ny=nx)
        params = ThermalParams(resistance_scale=scale)
        net = build_network(
            grid, params, cavity_flows=[units.ml_per_minute(flow_mlmin)]
        )
        solver = SteadyStateSolver(net)
        zero = solver.solve(np.zeros(net.n_nodes))
        assert np.allclose(zero, params.inlet_temperature, atol=1e-6)
        p = grid.power_vector({(0, "core0"): 2.0, (1, "l2_1"): 1.0})
        temps = solver.solve(p)
        assert np.all(temps >= params.inlet_temperature - 1e-9)

    @slow_settings
    @given(
        watts=st.floats(min_value=0.1, max_value=10.0),
        flow_mlmin=st.floats(min_value=100.0, max_value=1000.0),
    )
    def test_energy_leaves_through_coolant(self, watts, flow_mlmin):
        """Steady-state residual G T - b - P vanishes: all injected
        power is carried away by the boundaries."""
        grid = ThermalGrid(build_stack(2), nx=6, ny=6)
        net = build_network(
            grid, ThermalParams(), cavity_flows=[units.ml_per_minute(flow_mlmin)]
        )
        p = grid.power_vector({(0, "core3"): watts})
        temps = SteadyStateSolver(net).solve(p)
        residual = net.conductance @ temps - net.boundary - p
        assert np.abs(residual).max() < 1e-8


class TestQueueConservation:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["enqueue", "move", "migrate"]),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=60,
        )
    )
    def test_thread_count_conserved_under_any_op_sequence(self, ops):
        cores = [f"c{i}" for i in range(4)]
        queues = CoreQueues(cores)
        created = 0
        for op, a, b in ops:
            if op == "enqueue":
                queues.enqueue(cores[a], Thread(created, arrival=0.0, length=0.1))
                created += 1
            elif op == "move":
                queues.move_waiting(cores[a], cores[b], 1)
            else:
                queues.migrate_running(cores[a], cores[b])
            assert queues.total_threads() == created

    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=10), min_size=3, max_size=3
        )
    )
    def test_load_balancer_always_terminates_balanced(self, counts):
        from repro.sched.load_balancer import LoadBalancer

        cores = ["a", "b", "c"]
        queues = CoreQueues(cores)
        tid = 0
        for core, n in zip(cores, counts):
            for _ in range(n):
                queues.enqueue(core, Thread(tid, arrival=0.0, length=0.1))
                tid += 1
        LoadBalancer(threshold=1).rebalance(queues, {}, 0.0)
        lengths = list(queues.lengths().values())
        # Within threshold, except queues pinned by their running head.
        assert max(lengths) - min(lengths) <= max(1, counts.count(0) and 1)
        assert sum(lengths) == sum(counts)


class TestLutMonotonicity:
    @given(
        base=st.floats(min_value=60.0, max_value=75.0),
        load_gain=st.floats(min_value=5.0, max_value=40.0),
        cooling_gain=st.floats(min_value=0.5, max_value=6.0),
    )
    def test_required_setting_monotone_for_any_monotone_physics(
        self, base, load_gain, cooling_gain
    ):
        """For any linear-monotone characterization the LUT's required
        setting is non-decreasing in the predicted temperature."""
        utils = np.linspace(0.0, 1.0, 9)
        tmax = np.array(
            [
                [base + load_gain * u - cooling_gain * k for u in utils]
                for k in range(4)
            ]
        )
        table = FlowRateTable(
            CharacterizationResult(
                utilizations=utils,
                tmax=tmax,
                per_cavity_flows=(1.0, 2.0, 3.0, 4.0),
                target=80.0,
            )
        )
        temps = np.linspace(base - 5.0, base + load_gain + 5.0, 25)
        for observed in range(4):
            settings_seq = [table.required_setting(t, observed) for t in temps]
            assert settings_seq == sorted(settings_seq)
