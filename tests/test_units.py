"""Unit conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units

finite_positive = st.floats(
    min_value=1.0e-9, max_value=1.0e9, allow_nan=False, allow_infinity=False
)


class TestLength:
    def test_um(self):
        assert units.um(50) == pytest.approx(50.0e-6)

    def test_mm(self):
        assert units.mm(0.15) == pytest.approx(1.5e-4)

    def test_mm2(self):
        assert units.mm2(115) == pytest.approx(1.15e-4)

    @given(finite_positive)
    def test_mm_round_trip(self, value):
        assert units.to_mm(units.mm(value)) == pytest.approx(value)

    @given(finite_positive)
    def test_mm2_round_trip(self, value):
        assert units.to_mm2(units.mm2(value)) == pytest.approx(value)


class TestFlow:
    def test_litres_per_hour(self):
        # 375 l/h (the pump maximum) in m^3/s.
        assert units.litres_per_hour(375) == pytest.approx(1.0417e-4, rel=1e-3)

    def test_litres_per_minute(self):
        # Table I's 1 l/min per cavity.
        assert units.litres_per_minute(1.0) == pytest.approx(1.6667e-5, rel=1e-3)

    def test_ml_per_minute_equals_milli_litres_per_minute(self):
        assert units.ml_per_minute(1000.0) == pytest.approx(
            units.litres_per_minute(1.0)
        )

    def test_lh_to_mlmin_consistency(self):
        # 75 l/h = 1250 ml/min.
        flow = units.litres_per_hour(75)
        assert units.to_ml_per_minute(flow) == pytest.approx(1250.0)

    @given(finite_positive)
    def test_lh_round_trip(self, value):
        assert units.to_litres_per_hour(units.litres_per_hour(value)) == pytest.approx(
            value
        )

    @given(finite_positive)
    def test_lmin_round_trip(self, value):
        assert units.to_litres_per_minute(
            units.litres_per_minute(value)
        ) == pytest.approx(value)

    @given(finite_positive)
    def test_mlmin_round_trip(self, value):
        assert units.to_ml_per_minute(units.ml_per_minute(value)) == pytest.approx(
            value
        )


class TestHeatFlux:
    def test_w_per_cm2(self):
        # The paper's 200 W/cm^2 heat-removal figure.
        assert units.w_per_cm2(200) == pytest.approx(2.0e6)

    @given(finite_positive)
    def test_round_trip(self, value):
        assert units.to_w_per_cm2(units.w_per_cm2(value)) == pytest.approx(value)


class TestResistance:
    def test_k_mm2_per_w(self):
        assert units.k_mm2_per_w(5.333) == pytest.approx(5.333e-6)

    @given(finite_positive)
    def test_round_trip(self, value):
        assert units.to_k_mm2_per_w(units.k_mm2_per_w(value)) == pytest.approx(value)


class TestTime:
    def test_ms(self):
        assert units.ms(100) == pytest.approx(0.1)

    @given(finite_positive)
    def test_round_trip(self, value):
        assert units.to_ms(units.ms(value)) == pytest.approx(value)
