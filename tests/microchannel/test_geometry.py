"""Channel array geometry (Figure 2 cross-section)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import GeometryError
from repro.microchannel.geometry import ChannelGeometry


class TestDefaults:
    def test_table1_dimensions(self):
        geom = ChannelGeometry()
        assert geom.width == pytest.approx(units.um(50))
        assert geom.height == pytest.approx(units.um(100))
        assert geom.wall == pytest.approx(units.um(50))
        assert geom.pitch == pytest.approx(units.um(100))
        assert geom.count == 65

    def test_cross_section(self):
        assert ChannelGeometry().cross_section == pytest.approx(5.0e-9)

    def test_wetted_perimeter(self):
        # 2 * (50 + 100) um = 300 um.
        assert ChannelGeometry().wetted_perimeter == pytest.approx(3.0e-4)

    def test_hydraulic_diameter(self):
        # D_h = 4A/P = 4*5e-9/3e-4 = 66.7 um.
        assert ChannelGeometry().hydraulic_diameter == pytest.approx(
            66.67e-6, rel=1e-3
        )


class TestEffectivePitch:
    def test_uniform_distribution_over_die(self):
        geom = ChannelGeometry()
        die_height = 10.7238e-3
        # 65 channels over 10.72 mm -> ~165 um pitch.
        assert geom.effective_pitch(die_height) == pytest.approx(164.98e-6, rel=1e-3)

    def test_fin_area_factor_eq7(self):
        geom = ChannelGeometry()
        die_height = 10.7238e-3
        expected = geom.wetted_perimeter / geom.effective_pitch(die_height)
        assert geom.fin_area_factor(die_height) == pytest.approx(expected)

    def test_rejects_bad_die_height(self):
        with pytest.raises(GeometryError):
            ChannelGeometry().effective_pitch(0.0)


class TestFlowSplit:
    def test_channel_flow_split(self):
        geom = ChannelGeometry()
        cavity = units.litres_per_minute(1.0)
        assert geom.channel_flow(cavity) == pytest.approx(cavity / 65)

    def test_mean_velocity(self):
        geom = ChannelGeometry()
        cavity = units.litres_per_minute(1.0)
        v = geom.mean_velocity(cavity)
        # ~51 m/s at the Table I maximum (the paper's high-rate regime).
        assert v == pytest.approx(51.3, rel=0.01)

    def test_rejects_negative_flow(self):
        with pytest.raises(GeometryError):
            ChannelGeometry().channel_flow(-1.0)

    @given(st.floats(min_value=1e-7, max_value=1e-4))
    def test_velocity_scales_linearly(self, flow):
        geom = ChannelGeometry()
        assert geom.mean_velocity(2 * flow) == pytest.approx(
            2 * geom.mean_velocity(flow), rel=1e-9
        )


class TestValidation:
    def test_rejects_non_positive_dimension(self):
        with pytest.raises(GeometryError):
            ChannelGeometry(width=0.0)

    def test_rejects_zero_count(self):
        with pytest.raises(GeometryError):
            ChannelGeometry(count=0)

    def test_rejects_pitch_smaller_than_width(self):
        with pytest.raises(GeometryError):
            ChannelGeometry(width=units.um(120), pitch=units.um(100))
