"""Microchannel heat-transfer model (Eqs. 4-7 + developing-flow h)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.constants import MICROCHANNEL
from repro.errors import ModelError
from repro.microchannel.model import (
    MicrochannelModel,
    nusselt_developing,
    reynolds_number,
)

FLOWS = st.floats(min_value=1.0e-6, max_value=MICROCHANNEL.flow_rate_max)


@pytest.fixture
def model():
    return MicrochannelModel()


class TestDimensionlessNumbers:
    def test_reynolds_laminar_at_min_flow(self, model):
        re = reynolds_number(model.geometry, model.coolant, MICROCHANNEL.flow_rate_min)
        assert 100 < re < 2300  # Laminar at the Table I minimum.

    def test_reynolds_scales_linearly(self, model):
        r1 = reynolds_number(model.geometry, model.coolant, 1.0e-5)
        r2 = reynolds_number(model.geometry, model.coolant, 2.0e-5)
        assert r2 == pytest.approx(2 * r1)

    def test_nusselt_floor_is_fully_developed(self):
        assert nusselt_developing(0.0) == pytest.approx(3.66)

    def test_nusselt_monotone_in_graetz(self):
        values = [nusselt_developing(g) for g in (0.0, 1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values)

    def test_nusselt_rejects_negative(self):
        with pytest.raises(ModelError):
            nusselt_developing(-1.0)


class TestHeatTransferCoefficient:
    def test_anchored_at_table1_value(self, model):
        # h(max flow) == the paper's 37132 W/(m^2 K) by construction.
        h = model.heat_transfer_coefficient(MICROCHANNEL.flow_rate_max)
        assert h == pytest.approx(MICROCHANNEL.heat_transfer_coefficient, rel=1e-9)

    def test_h_falls_below_anchor_flow(self, model):
        h_min = model.heat_transfer_coefficient(MICROCHANNEL.flow_rate_min)
        h_max = model.heat_transfer_coefficient(MICROCHANNEL.flow_rate_max)
        assert h_min < h_max
        assert h_min > 0.2 * h_max  # Bounded by the Nu floor.

    @given(FLOWS, FLOWS)
    def test_h_monotone_in_flow(self, f1, f2):
        model = MicrochannelModel()
        lo, hi = sorted((f1, f2))
        assert model.heat_transfer_coefficient(lo) <= model.heat_transfer_coefficient(
            hi
        ) * (1 + 1e-9)

    def test_h_rejects_negative_flow(self, model):
        with pytest.raises(ModelError):
            model.heat_transfer_coefficient(-1.0)


class TestEffectiveH:
    def test_eq7_fin_factor(self, model):
        flow = MICROCHANNEL.flow_rate_max
        h = model.heat_transfer_coefficient(flow)
        factor = model.geometry.fin_area_factor(model.die_height)
        assert model.effective_h(flow) == pytest.approx(h * factor)

    def test_convective_resistance_inverse(self, model):
        flow = MICROCHANNEL.flow_rate_max
        assert model.convective_resistance_area(flow) == pytest.approx(
            1.0 / model.effective_h(flow)
        )


class TestRHeat:
    def test_eq5_value(self, model):
        # R_th-heat = A / (c_p * rho * Vdot); for 1 cm^2 at 1 l/min.
        area = 1.0e-4
        flow = units.litres_per_minute(1.0)
        expected = area / (4183.0 * 998.0 * flow)
        assert model.r_heat(area, flow) == pytest.approx(expected)

    def test_r_heat_halves_when_flow_doubles(self, model):
        area = 1.0e-4
        assert model.r_heat(area, 2.0e-5) == pytest.approx(
            model.r_heat(area, 1.0e-5) / 2
        )

    def test_rejects_zero_flow(self, model):
        with pytest.raises(ModelError):
            model.r_heat(1.0e-4, 0.0)

    def test_rejects_bad_area(self, model):
        with pytest.raises(ModelError):
            model.r_heat(0.0, 1.0e-5)


class TestCapacityRate:
    def test_capacity_rate(self, model):
        flow = units.litres_per_minute(1.0)
        # m_dot * c_p = rho * Vdot * c_p.
        assert model.cavity_heat_capacity_rate(flow) == pytest.approx(
            998.0 * flow * 4183.0
        )

    @given(FLOWS)
    def test_capacity_rate_linear(self, flow):
        model = MicrochannelModel()
        assert model.cavity_heat_capacity_rate(2 * flow) == pytest.approx(
            2 * model.cavity_heat_capacity_rate(flow), rel=1e-9
        )
