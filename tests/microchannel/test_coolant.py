"""Coolant property model."""

import pytest

from repro.errors import ModelError
from repro.microchannel.coolant import WATER, Coolant


class TestWater:
    def test_table1_properties(self):
        assert WATER.density == 998.0
        assert WATER.heat_capacity == 4183.0

    def test_volumetric_heat_capacity(self):
        assert WATER.volumetric_heat_capacity() == pytest.approx(998.0 * 4183.0)

    def test_mass_flow(self):
        # 1 l/min of water is ~16.63 g/s.
        assert WATER.mass_flow(1.6667e-5) == pytest.approx(0.016634, rel=1e-3)

    def test_mass_flow_rejects_negative(self):
        with pytest.raises(ModelError):
            WATER.mass_flow(-1.0)


class TestCoolantValidation:
    @pytest.mark.parametrize(
        "field", ["density", "heat_capacity", "conductivity", "viscosity", "prandtl"]
    )
    def test_rejects_non_positive(self, field):
        values = dict(
            name="bad",
            density=1000.0,
            heat_capacity=4000.0,
            conductivity=0.6,
            viscosity=1.0e-3,
            prandtl=7.0,
        )
        values[field] = 0.0
        with pytest.raises(ModelError):
            Coolant(**values)

    def test_custom_coolant(self):
        glycol = Coolant("glycol", 1100.0, 2400.0, 0.25, 2.0e-2, 150.0)
        assert glycol.volumetric_heat_capacity() == pytest.approx(1100 * 2400)
