"""The flow-rate look-up table and its characterization (Figure 5)."""

import math

import numpy as np
import pytest

from repro.control.flow_table import CharacterizationResult, FlowRateTable
from repro.errors import ControlError

FLOWS = (1.0, 2.0, 3.0, 4.0, 5.0)


def toy_steady_tmax(setting: int, utilization: float) -> float:
    """An analytic monotone stand-in for the thermal model: hotter with
    load, cooler with higher settings."""
    return 65.0 + 30.0 * utilization - 4.0 * setting


@pytest.fixture
def table():
    return FlowRateTable.characterize(
        steady_tmax=toy_steady_tmax,
        n_settings=5,
        per_cavity_flows=FLOWS,
        utilizations=np.linspace(0.0, 1.0, 11),
        target=80.0,
    )


class TestCharacterize:
    def test_matrix_shape(self, table):
        assert table.char.tmax.shape == (5, 11)

    def test_monotone_validation_rejects_bad_matrix(self):
        bad = CharacterizationResult(
            utilizations=np.array([0.0, 1.0]),
            tmax=np.array([[70.0, 60.0], [65.0, 75.0]]),  # Falls with load.
            per_cavity_flows=(1.0, 2.0),
            target=80.0,
        )
        with pytest.raises(ControlError):
            FlowRateTable(bad)

    def test_rejects_inverted_setting_order(self):
        bad = CharacterizationResult(
            utilizations=np.array([0.0, 1.0]),
            tmax=np.array([[60.0, 70.0], [65.0, 75.0]]),  # Hotter at higher setting.
            per_cavity_flows=(1.0, 2.0),
            target=80.0,
        )
        with pytest.raises(ControlError):
            FlowRateTable(bad)

    def test_rejects_too_few_points(self):
        with pytest.raises(ControlError):
            FlowRateTable.characterize(
                steady_tmax=toy_steady_tmax,
                n_settings=2,
                per_cavity_flows=(1.0, 2.0),
                utilizations=(0.5,),
            )


class TestInversion:
    def test_utilization_round_trip(self, table):
        for setting in range(5):
            for u in (0.1, 0.5, 0.9):
                t = toy_steady_tmax(setting, u)
                assert table.utilization_from_temperature(t, setting) == pytest.approx(
                    u, abs=1e-9
                )

    def test_extrapolates_above_range(self, table):
        u = table.utilization_from_temperature(120.0, 0)
        assert u > 1.0

    def test_clamps_below_zero(self, table):
        assert table.utilization_from_temperature(0.0, 0) == 0.0

    def test_bad_setting_rejected(self, table):
        with pytest.raises(ControlError):
            table.utilization_from_temperature(70.0, 9)


class TestRequiredSetting:
    def test_caps_match_analytic_solution(self, table):
        # Setting k holds u iff 65 + 30u - 4k <= 80, i.e. u <= (15+4k)/30.
        for k in range(5):
            expected = (15.0 + 4.0 * k) / 30.0
            cap = table.utilization_cap(k)
            if expected >= 1.0:
                assert math.isinf(cap)
            else:
                assert cap == pytest.approx(expected, abs=1e-9)

    def test_required_setting_monotone_in_temperature(self, table):
        temps = np.linspace(60.0, 100.0, 50)
        settings = [table.required_setting(t, 0) for t in temps]
        assert settings == sorted(settings)

    def test_required_setting_saturates(self, table):
        assert table.required_setting(200.0, 0) == 4

    def test_consistent_across_observed_setting(self, table):
        """The same workload observed at different pump settings must
        map to the same required setting."""
        u = 0.7
        for observed in range(5):
            t_observed = toy_steady_tmax(observed, u)
            assert table.required_setting(t_observed, observed) == (
                table.required_setting_for_utilization(u)
            )

    def test_sufficient_setting_holds_target(self, table):
        for u in np.linspace(0.0, 1.0, 21):
            k = table.required_setting_for_utilization(float(u))
            if table.utilization_cap(k) >= u:  # Not saturated.
                assert toy_steady_tmax(k, float(u)) <= 80.0 + 1e-9


class TestBoundaries:
    def test_boundaries_ascend(self, table):
        bounds = table.boundaries(0)
        finite = [b for b in bounds if math.isfinite(b)]
        assert finite == sorted(finite)

    def test_boundary_semantics(self, table):
        """Just below boundary m the required setting is <= m; just
        above it is m+1 (the paper's LUT 'lines')."""
        bounds = table.boundaries(0)
        for m, b in enumerate(bounds):
            if not math.isfinite(b):
                continue
            assert table.required_setting(b - 0.01, 0) <= m
            assert table.required_setting(b + 0.01, 0) == m + 1


class TestFig5Rows:
    def test_staircase_monotone(self, table):
        rows = table.fig5_rows()
        settings = [r["required_setting"] for r in rows]
        assert settings == sorted(settings)
        flows = [r["per_cavity_flow"] for r in rows]
        assert flows == sorted(flows)

    def test_x_axis_is_lowest_setting_temperature(self, table):
        rows = table.fig5_rows()
        for row in rows:
            assert row["tmax_at_lowest"] == pytest.approx(
                toy_steady_tmax(0, row["utilization"]), abs=1e-9
            )
