"""SPRT divergence detection on prediction residuals."""

import numpy as np
import pytest

from repro.control.sprt import SprtDetector
from repro.errors import ControlError


class TestDetection:
    def test_false_alarm_rate_tracks_alpha(self):
        """The restart rule makes this a repeated SPRT: expected false
        alarms ~ (completed tests) * alpha, so over 3000 null samples
        at alpha=1% a handful of alarms is correct — and tightening
        alpha by 10x must reduce them accordingly."""
        rng = np.random.default_rng(0)
        det = SprtDetector(sigma=1.0, shift=2.0, alpha=0.01, beta=0.01)
        alarms = sum(det.update(float(r)) for r in rng.normal(0, 1, 3000))
        assert alarms <= 10

        rng = np.random.default_rng(0)
        strict = SprtDetector(sigma=1.0, shift=3.0, alpha=0.001, beta=0.001)
        strict_alarms = sum(
            strict.update(float(r)) for r in rng.normal(0, 1, 3000)
        )
        assert strict_alarms <= 1

    def test_alarms_on_positive_shift(self):
        rng = np.random.default_rng(1)
        det = SprtDetector(sigma=1.0, shift=2.0)
        alarmed = False
        for r in rng.normal(3.0, 1.0, 100):
            if det.update(float(r)):
                alarmed = True
                break
        assert alarmed

    def test_alarms_on_negative_shift(self):
        rng = np.random.default_rng(2)
        det = SprtDetector(sigma=1.0, shift=2.0)
        alarmed = any(det.update(float(r)) for r in rng.normal(-3.0, 1.0, 100))
        assert alarmed

    def test_detection_is_fast(self):
        """A 3-sigma shift should be flagged within a handful of
        samples (the paper needs fast, cheap detection)."""
        rng = np.random.default_rng(3)
        det = SprtDetector(sigma=1.0, shift=2.0)
        count = 0
        for r in rng.normal(3.0, 1.0, 1000):
            count += 1
            if det.update(float(r)):
                break
        assert count <= 10

    def test_alarm_resets_state(self):
        det = SprtDetector(sigma=1.0, shift=2.0)
        for _ in range(100):
            if det.update(5.0):
                break
        assert det.alarm_count == 1
        # After the alarm the test restarted: small residuals are fine.
        assert not det.update(0.0)

    def test_accepting_h0_restarts(self):
        det = SprtDetector(sigma=1.0, shift=2.0)
        lower, upper = det.thresholds
        assert lower < 0 < upper
        for _ in range(50):
            det.update(-0.001)  # Consistently near zero: accept H0.
        assert det.alarm_count == 0


class TestValidation:
    def test_rejects_bad_sigma(self):
        with pytest.raises(ControlError):
            SprtDetector(sigma=0.0)

    def test_rejects_bad_shift(self):
        with pytest.raises(ControlError):
            SprtDetector(sigma=1.0, shift=0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ControlError):
            SprtDetector(sigma=1.0, alpha=1.5)

    def test_rejects_non_finite_residual(self):
        det = SprtDetector(sigma=1.0)
        with pytest.raises(ControlError):
            det.update(float("nan"))
